// Ablation bench (not a paper figure): the defenses the paper's Related Work
// compares OASIS against, measured head-to-head on the same pipeline.
//
//  1. DP-SGD Gaussian mechanism: PSNR of RTF reconstructions AND federated
//     model accuracy as the noise multiplier grows — reproducing the paper's
//     argument that the noise needed to blind gradient inversion destroys
//     utility, while OASIS blinds the attack at full utility.
//  2. Gradient pruning (Zhu et al.): even heavy sparsification leaves RTF
//     reconstructions recognizable.
//  3. Implant detection: RTF's imprint module is structurally conspicuous
//     (identical rows, bias ladder) while CAH's trap weights evade screening
//     — the reason "detect the malicious model" is not a general defense.
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "attack/cah.h"
#include "attack/detection.h"
#include "attack/rtf.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/baselines.h"
#include "core/oasis.h"
#include "fl/simulation.h"
#include "metrics/accuracy.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

/// Small federated training run returning final global test accuracy.
///
/// Trains the SAME architecture the attack targets (the attack host with its
/// wide first FC layer, honestly initialized): per-entry signal-to-noise of
/// a DP mechanism depends on the parameter count, so privacy and utility
/// must be measured on one model for the trade-off to be meaningful.
real federated_accuracy(const data::SynthDataset& dataset, index_t neurons,
                        fl::PreprocessorPtr preprocessor,
                        fl::PostprocessorPtr postprocessor, index_t rounds) {
  const auto& shape = dataset.train.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  common::Rng init_rng(7);
  const index_t classes = dataset.train.num_classes();
  const fl::ModelFactory factory = [&] {
    return nn::make_attack_host(spec, neurons, classes, init_rng);
  };
  auto server = std::make_unique<fl::Server>(factory(), 0.15);
  auto* server_ptr = server.get();
  const auto shards = dataset.train.shard(4);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, 16, preprocessor, common::Rng(500 + i)));
    if (postprocessor) clients.back()->set_update_postprocessor(postprocessor);
  }
  fl::Simulation sim(std::move(server), std::move(clients),
                     fl::SimulationConfig{0, 3});
  sim.run(rounds);
  return metrics::accuracy(server_ptr->global_model(), dataset.test);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("ablation_baselines",
                        "DP / pruning / detection baselines vs OASIS");
  cli.add_bool("full", "more rounds and batches");
  cli.add_flag("seed", "experiment seed", "777");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Ablation", "baseline defenses (Related Work) vs OASIS");
  common::Stopwatch total;

  const index_t num_batches = full ? 8 : 3;
  // One matched setting for privacy AND utility: 24×24 inputs, n=300
  // attacked neurons, the same attack-host architecture throughout.
  const index_t neurons = 300;
  data::SynthConfig d_cfg = data::synth_imagenet_config();
  d_cfg.height = d_cfg.width = 24;
  d_cfg.train_per_class = 24;
  d_cfg.test_per_class = 8;
  const data::SynthDataset train_data = data::generate(d_cfg);
  d_cfg.seed ^= 0xABBA;
  d_cfg.test_per_class = 0;
  const data::InMemoryDataset aux = data::generate(d_cfg).train;
  const index_t rounds = full ? 400 : 200;

  std::cout << "\n--- privacy vs utility: RTF (B=8, n=" << neurons
            << ") reconstruction PSNR and federated accuracy on the SAME "
               "model ---\n"
            << std::left << std::setw(26) << "defense" << std::right
            << std::setw(16) << "mean PSNR (dB)" << std::setw(16)
            << "fed accuracy(%)" << "\n";

  const auto report = [&](const std::string& label,
                          std::vector<augment::TransformKind> transforms,
                          fl::PostprocessorPtr postprocessor) {
    core::AttackExperimentConfig cfg;
    cfg.attack = core::AttackKind::kRtf;
    cfg.batch_size = 8;
    cfg.neurons = neurons;
    cfg.num_batches = num_batches;
    cfg.classes = train_data.train.num_classes();
    cfg.transforms = transforms;
    cfg.postprocessor = postprocessor;
    cfg.seed = seed;
    const auto result =
        core::run_attack_experiment(train_data.train, aux, cfg);
    const real acc = federated_accuracy(
        train_data, neurons, core::make_preprocessor(transforms),
        postprocessor, rounds);
    std::cout << std::left << std::setw(26) << label << std::right
              << std::setw(16) << std::fixed << std::setprecision(1)
              << result.mean_psnr() << std::setw(16) << acc * 100.0 << "\n";
  };

  report("undefended", {}, nullptr);
  report("OASIS (MR)", {augment::TransformKind::kMajorRotation}, nullptr);
  for (const real sigma : {1e-4, 1e-3, 1e-2}) {
    std::ostringstream label;
    label << "DP (C=1, sigma=" << sigma << ")";
    report(label.str(), {},
           std::make_shared<core::DpGaussianMechanism>(1.0, sigma));
  }

  // 1b. Replay averaging: the dishonest server re-dispatches the SAME
  // malicious model for T rounds; a victim whose whole local dataset fits in
  // one batch recomputes the SAME gradients each round, so averaging the T
  // uploads shrinks the DP noise by √T and the reconstruction returns. OASIS
  // has no such failure mode — its protection is structural, not stochastic.
  std::cout << "\n--- active replay averaging defeats DP noise "
               "(DP C=1 sigma=0.001, RTF, victim batch = full local data) "
               "---\n"
            << std::left << std::setw(20) << "averaged rounds" << std::right
            << std::setw(16) << "mean PSNR (dB)" << "\n";
  {
    const auto& shape = train_data.train.image_shape();
    const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
    const index_t classes = train_data.train.num_classes();
    // Victim holds exactly 8 images (its full batch every round).
    std::vector<index_t> few{0, 25, 50, 75, 100, 125, 150, 175};
    const data::InMemoryDataset local = train_data.train.subset(few);

    attack::RtfAttack rtf(spec, neurons, aux);
    common::Rng model_rng(seed ^ 0x99);
    const fl::ModelFactory factory = [&] {
      return nn::make_attack_host(spec, neurons, classes, model_rng);
    };
    auto server = std::make_unique<fl::MaliciousServer>(
        factory(), 1e-6, rtf.manipulator());  // ~frozen model across rounds
    auto* server_ptr = server.get();
    std::vector<std::unique_ptr<fl::Client>> clients;
    clients.push_back(std::make_unique<fl::Client>(
        0, local, factory, /*batch_size=*/8,
        std::make_shared<fl::IdentityPreprocessor>(),
        common::Rng(seed ^ 0x55)));
    clients.front()->set_update_postprocessor(
        std::make_shared<core::DpGaussianMechanism>(1.0, 1e-3));
    fl::Simulation sim(std::move(server), std::move(clients),
                       fl::SimulationConfig{1, seed});

    const index_t max_rounds = full ? 1024 : 256;
    std::vector<tensor::Tensor> sum;
    index_t done = 0;
    const auto originals = [&] {
      std::vector<index_t> all{0, 1, 2, 3, 4, 5, 6, 7};
      return data::unstack_images(data::gather(local, all).images);
    }();
    for (index_t target : {index_t{1}, index_t{16}, max_rounds}) {
      while (done < target) {
        sim.run_round();
        auto grads = tensor::deserialize_tensors(
            server_ptr->captured().back().gradients);
        if (sum.empty()) {
          sum = std::move(grads);
        } else {
          for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += grads[i];
        }
        ++done;
      }
      auto averaged = sum;
      for (auto& t : averaged) t /= static_cast<real>(done);
      const auto scores =
          attack::best_match_psnr(rtf.reconstruct(averaged), originals);
      real mean = 0.0;
      for (const auto& s : scores) mean += s.best_psnr;
      mean /= static_cast<real>(scores.size());
      std::cout << std::left << std::setw(20) << done << std::right
                << std::setw(16) << std::fixed << std::setprecision(1)
                << mean << "\n";
    }
  }

  std::cout << "\n--- gradient pruning vs CAH (the per-neuron inversion the "
               "paper's citation evaluates): PSNR vs kept fraction ---\n"
            << metrics::box_row_header("keep fraction") << "\n";
  for (const real keep : {1.0, 0.5, 0.1, 0.01}) {
    core::AttackExperimentConfig cfg;
    cfg.attack = core::AttackKind::kCah;
    cfg.batch_size = 8;
    cfg.neurons = 100;
    cfg.num_batches = num_batches;
    cfg.classes = train_data.train.num_classes();
    cfg.seed = seed;
    if (keep < 1.0) {
      cfg.postprocessor = std::make_shared<core::TopKPruning>(keep);
    }
    const auto result =
        core::run_attack_experiment(train_data.train, aux, cfg);
    std::cout << metrics::format_box_row(
                     "keep=" + std::to_string(keep).substr(0, 4),
                     metrics::box_stats(result.per_image_psnr))
              << "\n";
  }

  std::cout << "\n--- implant detection (first-Dense inspection) ---\n"
            << std::left << std::setw(16) << "model" << std::right
            << std::setw(18) << "row duplication" << std::setw(18)
            << "bias monotonic" << std::setw(14) << "suspicious" << "\n";
  {
    const auto& shape = train_data.train.image_shape();
    const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
    common::Rng rng(seed);
    const auto show = [&](const std::string& label, nn::Sequential& model) {
      const auto rep = attack::inspect_first_dense(model);
      std::cout << std::left << std::setw(16) << label << std::right
                << std::setw(18) << std::setprecision(3) << rep.row_duplication
                << std::setw(18) << rep.bias_monotonicity << std::setw(14)
                << (rep.suspicious() ? "YES" : "no") << "\n";
    };
    auto honest = nn::make_attack_host(spec, 300, train_data.train.num_classes(), rng);
    show("honest", *honest);
    attack::RtfAttack rtf(spec, 300, aux);
    auto rtf_host = nn::make_attack_host(spec, 300, train_data.train.num_classes(), rng);
    rtf.implant(*rtf_host);
    show("RTF implant", *rtf_host);
    attack::CahAttack cah(spec, 300, 0.125, aux);
    auto cah_host = nn::make_attack_host(spec, 300, train_data.train.num_classes(), rng);
    cah.implant(*cah_host);
    show("CAH implant", *cah_host);
  }

  std::cout << "\n[ablation_baselines] total " << total.seconds() << " s\n";
  return 0;
}
