// Ablation bench (not a paper figure): secure aggregation, its circumvention
// by a dishonest server, and OASIS's role.
//
// The paper's threat model cites Pasquini et al. (CCS 2022): secure
// aggregation does not save FL from an actively dishonest server. This bench
// makes that concrete on our stack:
//
//   1. no SecAgg, single victim            → verbatim reconstruction;
//   2. SecAgg, consistent malicious model  → the server only gets the cohort
//      aggregate, which behaves like one big batch: many images (from every
//      client!) still reconstruct — dilution, not protection;
//   3. SecAgg + model inconsistency        → only the target received a live
//      malicious layer, everyone else's implant gradients are exactly zero,
//      so the aggregate isolates the victim again;
//   4. (3) + OASIS on the clients          → reconstructions collapse to
//      unrecognizable overlaps. The defense lives in the gradients, not in
//      who can read them.
//
// --defense / --aggregator / --audit layer the PR-10 robustness surface on
// top of every row: a composable gradient defense stack on the clients, a
// robust server aggregation rule, and the model-audit gate (with the gate
// armed, clients REFUSE the implanted dispatch outright — the reconstruction
// signal disappears because no victim update is ever produced).
#include <iostream>
#include <memory>

#include "attack/audit.h"
#include "attack/rtf.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/oasis.h"
#include "fl/client.h"
#include "fl/defense.h"
#include "fl/inconsistent_server.h"
#include "fl/secure_agg.h"
#include "metrics/stats.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

struct RoundOutcome {
  std::vector<real> victim_psnr;  // best-match PSNR per victim image
  index_t refused = 0;            // audit-gate refusals across all rounds
};

/// PR-10 robustness knobs shared by every ablation row.
struct RobustnessOptions {
  fl::DefenseStackPtr defense;   // empty stack = no gradient defenses
  fl::AggregatorConfig aggregator;
  bool audit = false;            // arm the model-audit gate on every client
};

/// Runs `rounds` attack rounds over a 4-client cohort and scores the
/// reconstruction of the victim's (client 0) batches.
RoundOutcome run_cohort(const data::InMemoryDataset& pool,
                        const data::InMemoryDataset& aux, index_t neurons,
                        bool use_secagg, bool inconsistent, bool oasis,
                        index_t rounds, std::uint64_t seed,
                        const RobustnessOptions& robust) {
  const auto& shape = pool.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  const index_t classes = pool.num_classes();
  const index_t cohort_size = 4;

  attack::RtfAttack atk(spec, neurons, aux);
  common::Rng model_rng(seed ^ 0x31337);
  const fl::ModelFactory factory = [&] {
    return nn::make_attack_host(spec, neurons, classes, model_rng);
  };

  std::unique_ptr<fl::MaliciousServer> server;
  if (inconsistent) {
    server = std::make_unique<fl::InconsistentMaliciousServer>(
        factory(), 1e-3, atk.manipulator(), /*target=*/0);
  } else {
    server = std::make_unique<fl::MaliciousServer>(factory(), 1e-3,
                                                   atk.manipulator());
  }

  const auto preprocessor = core::make_preprocessor(
      oasis ? std::vector<augment::TransformKind>{
                  augment::TransformKind::kMajorRotation}
            : std::vector<augment::TransformKind>{});
  const auto shards = pool.shard(cohort_size);
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::uint64_t> cohort_ids;
  if (robust.aggregator.kind != fl::AggregatorKind::kFedAvg) {
    server->set_aggregator(robust.aggregator);
  }
  for (index_t i = 0; i < cohort_size; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/8, preprocessor,
        common::Rng(seed + 17 * i)));
    if (robust.audit) {
      clients[i]->set_model_auditor(attack::make_model_auditor());
    }
    cohort_ids.push_back(i);
  }

  RoundOutcome outcome;
  for (index_t round = 0; round < rounds; ++round) {
    server->begin_round();
    fl::SecureAggregationSession session(cohort_ids, seed ^ round);
    std::vector<fl::ClientUpdateMessage> updates;
    bool victim_refused = false;
    for (index_t i = 0; i < cohort_size; ++i) {
      fl::ClientUpdateMessage update;
      try {
        update = clients[i]->handle_round(server->dispatch_to(i));
      } catch (const AuditError&) {
        // The audit gate spotted the implant: this client sits the round
        // out, exactly as in the round engines.
        ++outcome.refused;
        if (i == 0) victim_refused = true;
        continue;
      }
      if (robust.defense && !robust.defense->empty()) {
        robust.defense->apply(update, cohort_ids);
      }
      if (use_secagg) session.mask_update(update);
      updates.push_back(std::move(update));
    }

    // What the server can invert: the single victim update without SecAgg,
    // otherwise only the cohort SUM (masks cancel there). A refused victim
    // leaves nothing to invert at all.
    std::vector<tensor::Tensor> grads;
    if (!use_secagg) {
      if (!victim_refused && !updates.empty()) {
        grads = tensor::deserialize_tensors(updates[0].gradients);
      }
    } else {
      for (const auto& update : updates) {
        auto tensors = tensor::deserialize_tensors(update.gradients);
        if (grads.empty()) {
          grads = std::move(tensors);
        } else {
          for (std::size_t i = 0; i < grads.size(); ++i) {
            grads[i] += tensors[i];
          }
        }
      }
    }

    if (!grads.empty() && !victim_refused) {
      const auto candidates = atk.reconstruct(grads);
      const auto originals =
          data::unstack_images(clients[0]->last_raw_batch().images);
      for (const auto& s : attack::best_match_psnr(candidates, originals)) {
        outcome.victim_psnr.push_back(s.best_psnr);
      }
    }
    // A fully vigilant cohort can refuse the whole round; the round engines
    // commit a skipped round in that case, and so do we.
    if (!updates.empty()) server->finish_round(updates);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "ablation_secagg",
      "secure aggregation, model inconsistency, and OASIS");
  cli.add_bool("full", "more rounds");
  cli.add_flag("seed", "experiment seed", "888");
  cli.add_flag("defense", "client defense stack, e.g. clip:10,noise:0.01",
               "none");
  cli.add_flag("aggregator", "fedavg|median|trimmed[:f]|normbound[:b]",
               "fedavg");
  cli.add_bool("audit", "arm the model-audit gate on every client");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const index_t rounds = cli.get_bool("full") ? 8 : 3;

  RobustnessOptions robust;
  robust.defense = fl::parse_defense_stack(cli.get("defense"));
  robust.aggregator = fl::parse_aggregator(cli.get("aggregator"));
  robust.audit = cli.get_bool("audit");

  print_banner("Ablation",
               "secure aggregation vs the dishonest server (RTF, B=8, "
               "4-client cohort)");
  common::Stopwatch total;

  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 32;
  cfg.train_per_class = 16;
  cfg.test_per_class = 0;
  const auto pool = data::generate(cfg).train;
  cfg.seed ^= 0x5EC;
  const auto aux = data::generate(cfg).train;
  // Few bins relative to the cohort's total samples, so honest aggregation
  // genuinely dilutes (32 samples in 100 bins collide); inconsistency then
  // shows its value by emptying the bins of everyone but the target.
  const index_t neurons = 48;

  std::cout << "\nvictim-image reconstruction quality (PSNR dB):\n"
            << metrics::box_row_header("setting") << "\n";
  const struct {
    const char* label;
    bool secagg, inconsistent, oasis;
  } rows[] = {
      {"no SecAgg", false, false, false},
      {"SecAgg, consistent", true, false, false},
      {"SecAgg + inconsistency", true, true, false},
      {"  ... + OASIS(MR)", true, true, true},
  };
  index_t total_refused = 0;
  for (const auto& row : rows) {
    const auto outcome =
        run_cohort(pool, aux, neurons, row.secagg, row.inconsistent,
                   row.oasis, rounds, seed, robust);
    total_refused += outcome.refused;
    if (outcome.victim_psnr.empty()) {
      // The audit gate refused every dispatch: there is no reconstruction
      // to score, which IS the result.
      std::cout << row.label << ": no victim update produced ("
                << outcome.refused << " refusals)\n";
    } else {
      std::cout << metrics::format_box_row(
                       row.label, metrics::box_stats(outcome.victim_psnr))
                << "\n";
    }
  }
  if (robust.audit) {
    std::cout << "audit gate: " << total_refused
              << " dispatches refused across all rows (refused rounds "
                 "produce no victim update to reconstruct)\n";
  }
  std::cout << "\n[ablation_secagg] total " << total.seconds() << " s\n";
  return 0;
}
