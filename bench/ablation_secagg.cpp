// Ablation bench (not a paper figure): secure aggregation, its circumvention
// by a dishonest server, and OASIS's role.
//
// The paper's threat model cites Pasquini et al. (CCS 2022): secure
// aggregation does not save FL from an actively dishonest server. This bench
// makes that concrete on our stack:
//
//   1. no SecAgg, single victim            → verbatim reconstruction;
//   2. SecAgg, consistent malicious model  → the server only gets the cohort
//      aggregate, which behaves like one big batch: many images (from every
//      client!) still reconstruct — dilution, not protection;
//   3. SecAgg + model inconsistency        → only the target received a live
//      malicious layer, everyone else's implant gradients are exactly zero,
//      so the aggregate isolates the victim again;
//   4. (3) + OASIS on the clients          → reconstructions collapse to
//      unrecognizable overlaps. The defense lives in the gradients, not in
//      who can read them.
#include <iostream>
#include <memory>

#include "attack/rtf.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/oasis.h"
#include "fl/client.h"
#include "fl/inconsistent_server.h"
#include "fl/secure_agg.h"
#include "metrics/stats.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

struct RoundOutcome {
  std::vector<real> victim_psnr;  // best-match PSNR per victim image
};

/// Runs `rounds` attack rounds over a 4-client cohort and scores the
/// reconstruction of the victim's (client 0) batches.
RoundOutcome run_cohort(const data::InMemoryDataset& pool,
                        const data::InMemoryDataset& aux, index_t neurons,
                        bool use_secagg, bool inconsistent, bool oasis,
                        index_t rounds, std::uint64_t seed) {
  const auto& shape = pool.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  const index_t classes = pool.num_classes();
  const index_t cohort_size = 4;

  attack::RtfAttack atk(spec, neurons, aux);
  common::Rng model_rng(seed ^ 0x31337);
  const fl::ModelFactory factory = [&] {
    return nn::make_attack_host(spec, neurons, classes, model_rng);
  };

  std::unique_ptr<fl::MaliciousServer> server;
  if (inconsistent) {
    server = std::make_unique<fl::InconsistentMaliciousServer>(
        factory(), 1e-3, atk.manipulator(), /*target=*/0);
  } else {
    server = std::make_unique<fl::MaliciousServer>(factory(), 1e-3,
                                                   atk.manipulator());
  }

  const auto preprocessor = core::make_preprocessor(
      oasis ? std::vector<augment::TransformKind>{
                  augment::TransformKind::kMajorRotation}
            : std::vector<augment::TransformKind>{});
  const auto shards = pool.shard(cohort_size);
  std::vector<std::unique_ptr<fl::Client>> clients;
  std::vector<std::uint64_t> cohort_ids;
  for (index_t i = 0; i < cohort_size; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/8, preprocessor,
        common::Rng(seed + 17 * i)));
    cohort_ids.push_back(i);
  }

  RoundOutcome outcome;
  for (index_t round = 0; round < rounds; ++round) {
    server->begin_round();
    fl::SecureAggregationSession session(cohort_ids, seed ^ round);
    std::vector<fl::ClientUpdateMessage> updates;
    for (index_t i = 0; i < cohort_size; ++i) {
      auto update = clients[i]->handle_round(server->dispatch_to(i));
      if (use_secagg) session.mask_update(update);
      updates.push_back(std::move(update));
    }

    // What the server can invert: the single victim update without SecAgg,
    // otherwise only the cohort SUM (masks cancel there).
    std::vector<tensor::Tensor> grads;
    if (!use_secagg) {
      grads = tensor::deserialize_tensors(updates[0].gradients);
    } else {
      for (const auto& update : updates) {
        auto tensors = tensor::deserialize_tensors(update.gradients);
        if (grads.empty()) {
          grads = std::move(tensors);
        } else {
          for (std::size_t i = 0; i < grads.size(); ++i) {
            grads[i] += tensors[i];
          }
        }
      }
    }

    const auto candidates = atk.reconstruct(grads);
    const auto originals =
        data::unstack_images(clients[0]->last_raw_batch().images);
    for (const auto& s : attack::best_match_psnr(candidates, originals)) {
      outcome.victim_psnr.push_back(s.best_psnr);
    }
    server->finish_round(updates);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "ablation_secagg",
      "secure aggregation, model inconsistency, and OASIS");
  cli.add_bool("full", "more rounds");
  cli.add_flag("seed", "experiment seed", "888");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const index_t rounds = cli.get_bool("full") ? 8 : 3;

  print_banner("Ablation",
               "secure aggregation vs the dishonest server (RTF, B=8, "
               "4-client cohort)");
  common::Stopwatch total;

  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 32;
  cfg.train_per_class = 16;
  cfg.test_per_class = 0;
  const auto pool = data::generate(cfg).train;
  cfg.seed ^= 0x5EC;
  const auto aux = data::generate(cfg).train;
  // Few bins relative to the cohort's total samples, so honest aggregation
  // genuinely dilutes (32 samples in 100 bins collide); inconsistency then
  // shows its value by emptying the bins of everyone but the target.
  const index_t neurons = 48;

  std::cout << "\nvictim-image reconstruction quality (PSNR dB):\n"
            << metrics::box_row_header("setting") << "\n";
  const struct {
    const char* label;
    bool secagg, inconsistent, oasis;
  } rows[] = {
      {"no SecAgg", false, false, false},
      {"SecAgg, consistent", true, false, false},
      {"SecAgg + inconsistency", true, true, false},
      {"  ... + OASIS(MR)", true, true, true},
  };
  for (const auto& row : rows) {
    const auto outcome =
        run_cohort(pool, aux, neurons, row.secagg, row.inconsistent,
                   row.oasis, rounds, seed);
    std::cout << metrics::format_box_row(
                     row.label, metrics::box_stats(outcome.victim_psnr))
              << "\n";
  }
  std::cout << "\n[ablation_secagg] total " << total.seconds() << " s\n";
  return 0;
}
