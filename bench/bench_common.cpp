#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/cifar_io.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::bench {

AttackData make_imagenet_data(bool full, index_t override_classes) {
  data::SynthConfig cfg = data::synth_imagenet_config();
  if (override_classes != 0) cfg.num_classes = override_classes;
  cfg.train_per_class =
      std::max<index_t>(full ? 24 : 12, (full ? 256 : 128) / cfg.num_classes);
  cfg.test_per_class = 0;
  AttackData data{data::generate(cfg).train, {0, {}}, cfg.num_classes,
                  "ImageNet"};
  cfg.seed ^= 0xA0A0A0;
  cfg.train_per_class = std::max<index_t>(
      full ? 32 : 16, (full ? 400 : 200) / cfg.num_classes);
  data.aux = data::generate(cfg).train;
  return data;
}

AttackData make_cifar_data(bool full) {
  if (const char* dir = std::getenv("OASIS_CIFAR100_DIR")) {
    // Victim data from the train split, attacker calibration from the test
    // split (disjoint, as in the paper's setting).
    auto real_data = data::try_load_cifar100(dir, full ? 2000 : 400,
                                             full ? 500 : 300);
    if (real_data.has_value()) {
      return AttackData{std::move(real_data->train),
                        std::move(real_data->test), 100, "CIFAR100(real)"};
    }
    OASIS_LOG_WARN << "OASIS_CIFAR100_DIR set but train.bin/test.bin not "
                      "found; using the synthetic stand-in";
  }
  data::SynthConfig cfg = data::synth_cifar100_config();
  cfg.train_per_class = full ? 4 : 2;  // 100 classes → 200/400 images
  cfg.test_per_class = 0;
  AttackData data{data::generate(cfg).train, {0, {}}, cfg.num_classes,
                  "CIFAR100"};
  cfg.seed ^= 0xB1B1B1;
  cfg.train_per_class = full ? 5 : 3;
  data.aux = data::generate(cfg).train;
  return data;
}

std::vector<TransformRow> rtf_transform_rows() {
  using augment::TransformKind;
  return {
      {"WO", {}},
      {"MR", {TransformKind::kMajorRotation}},
      {"mR", {TransformKind::kMinorRotation}},
      {"SH", {TransformKind::kShear}},
      {"HFlip", {TransformKind::kHorizontalFlip}},
      {"VFlip", {TransformKind::kVerticalFlip}},
  };
}

std::vector<TransformRow> cah_transform_rows() {
  using augment::TransformKind;
  return {
      {"WO", {}},
      {"SH", {TransformKind::kShear}},
      {"MR", {TransformKind::kMajorRotation}},
      {"MR+SH", {TransformKind::kMajorRotation, TransformKind::kShear}},
  };
}

std::vector<real> run_and_print_rows(const AttackData& data,
                                     core::AttackKind attack,
                                     index_t batch_size, index_t neurons,
                                     index_t num_batches,
                                     const std::vector<TransformRow>& rows,
                                     std::uint64_t seed,
                                     metrics::ExperimentReport* report) {
  std::cout << metrics::box_row_header("transform") << "\n";
  std::vector<real> means;
  for (const auto& row : rows) {
    common::Stopwatch sw;
    core::AttackExperimentConfig cfg;
    cfg.attack = attack;
    cfg.batch_size = batch_size;
    cfg.neurons = neurons;
    cfg.num_batches = num_batches;
    cfg.transforms = row.transforms;
    cfg.classes = data.classes;
    cfg.seed = seed;
    const auto result = core::run_attack_experiment(data.victim, data.aux,
                                                    cfg);
    const auto stats = metrics::box_stats(result.per_image_psnr);
    std::cout << metrics::format_box_row(row.label, stats) << "   ("
              << static_cast<int>(sw.seconds() * 1000) << " ms)\n";
    if (report) report->add_box_row(row.label, stats);
    means.push_back(stats.mean);
  }
  return means;
}

void flush_report(const metrics::ExperimentReport& report) {
  const std::string base = ensure_output_dir() + "/" + report.experiment();
  report.write_csv(base + ".csv");
  report.write_json(base + ".json");
  std::cout << "\n[report] " << base << ".csv / .json (" << report.rows()
            << " rows)\n";
}

void add_metrics_flag(common::CliParser& cli) {
  cli.add_flag("metrics-out",
               "write obs metrics/trace JSON to this file on exit", "");
}

MetricsExport::MetricsExport(const common::CliParser& cli)
    : path_(cli.get("metrics-out")) {}

MetricsExport::MetricsExport(std::string path) : path_(std::move(path)) {}

MetricsExport::~MetricsExport() {
  if (path_.empty()) return;
  try {
    obs::dump(path_);
    std::cout << "[metrics] " << path_ << "\n";
  } catch (const Error& e) {
    std::cerr << "[metrics] dump failed: " << e.what() << "\n";
  }
}

void print_banner(const std::string& figure, const std::string& description) {
  std::cout << "\n=================================================="
               "==============================\n"
            << figure << " — " << description << "\n"
            << "(PSNR in dB; >=130 dB means verbatim copy; mean column is "
               "the paper's green triangle)\n"
            << "===================================================="
               "============================\n";
}

std::string ensure_output_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<ThreadSweepRow> run_thread_sweep(
    const std::string& name, const std::vector<index_t>& thread_counts,
    const std::function<void()>& fn, int reps) {
  std::vector<ThreadSweepRow> rows;
  std::printf("  %-24s threads   seconds   speedup\n", name.c_str());
  for (const index_t t : thread_counts) {
    runtime::set_num_threads(t);
    fn();  // warm-up: first touch of caches and the (re)built pool
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      common::Stopwatch sw;
      fn();
      const double s = sw.seconds();
      if (r == 0 || s < best) best = s;
    }
    ThreadSweepRow row;
    row.threads = t;
    row.seconds = best;
    row.speedup = rows.empty() ? 1.0 : rows.front().seconds / best;
    std::printf("  %-24s %7zu %9.5f %8.2fx\n", "", static_cast<size_t>(t),
                row.seconds, row.speedup);
    rows.push_back(row);
  }
  runtime::set_num_threads(0);  // back to --threads/env/auto default
  return rows;
}

void write_thread_sweep_json(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<ThreadSweepRow>>>&
        sweeps) {
  std::ofstream out(path);
  out << "{\n  \"kernels\": [\n";
  for (std::size_t k = 0; k < sweeps.size(); ++k) {
    out << "    {\"kernel\": \"" << sweeps[k].first << "\", \"rows\": [";
    const auto& rows = sweeps[k].second;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << (i ? ", " : "") << "{\"threads\": " << rows[i].threads
          << ", \"seconds\": " << rows[i].seconds
          << ", \"speedup\": " << rows[i].speedup << "}";
    }
    out << "]}" << (k + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[report] " << path << "\n";
}

}  // namespace oasis::bench
