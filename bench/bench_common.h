// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary runs with NO arguments at a "quick" scale whose rows
// reproduce the paper's qualitative shape in seconds-to-minutes on one CPU
// core, and accepts --full for a configuration closer to the paper's scale.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "augment/transforms.h"
#include "common/cli.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "metrics/report.h"
#include "metrics/stats.h"

namespace oasis::bench {

/// Victim-side local data and attacker-side aux calibration data, drawn from
/// the same synthetic distribution with different seeds (the attacker never
/// sees the victim's images).
struct AttackData {
  data::InMemoryDataset victim;
  data::InMemoryDataset aux;
  index_t classes = 0;
  std::string name;  // "ImageNet" / "CIFAR100" (the substituted stand-ins)
};

/// The ImageNet (Imagenette) stand-in: 10 classes, 64×64 RGB.
/// `override_classes` lets the Fig. 13 linear-model bench request a variant
/// with more classes (unique-label batches of 64 need ≥64 classes).
AttackData make_imagenet_data(bool full, index_t override_classes = 0);

/// The CIFAR100 stand-in: 100 classes, 32×32 RGB. When the environment
/// variable OASIS_CIFAR100_DIR points at a directory holding the real
/// train.bin/test.bin (cifar-100-binary), the REAL dataset is used (victim =
/// train split, attacker aux = test split) instead of the synthetic
/// stand-in.
AttackData make_cifar_data(bool full);

/// One box of a PSNR box-plot figure.
struct TransformRow {
  std::string label;  // WO, MR, mR, SH, HFlip, VFlip, MR+SH
  std::vector<augment::TransformKind> transforms;
};

/// The five single transforms plus the undefended baseline (Fig. 3 / 13).
std::vector<TransformRow> rtf_transform_rows();

/// The Fig. 4 rows: WO, SH, MR, MR+SH.
std::vector<TransformRow> cah_transform_rows();

/// Runs one attack configuration for every row and prints a box-stats table
/// (one line per row, matching one box of the figure). Returns the rows'
/// mean PSNRs in order. When `report` is non-null, every row is also
/// appended to it (with whatever context the caller set).
std::vector<real> run_and_print_rows(
    const AttackData& data, core::AttackKind attack, index_t batch_size,
    index_t neurons, index_t num_batches,
    const std::vector<TransformRow>& rows, std::uint64_t seed,
    metrics::ExperimentReport* report = nullptr);

/// Writes `report` as both CSV and JSON under bench_out/ and prints where.
void flush_report(const metrics::ExperimentReport& report);

/// Registers the standard `--metrics-out <file>` flag (empty = disabled).
void add_metrics_flag(common::CliParser& cli);

/// Dumps the global obs registry to the file `--metrics-out` named (no-op
/// when the flag is empty). Declared as an RAII guard so every exit path of
/// a bench main flushes:
///
///   bench::add_metrics_flag(cli);
///   cli.parse(argc, argv);
///   const bench::MetricsExport metrics(cli);   // dumps on scope exit
class MetricsExport {
 public:
  explicit MetricsExport(const common::CliParser& cli);
  explicit MetricsExport(std::string path);  // direct path, "" = disabled
  ~MetricsExport();

  MetricsExport(const MetricsExport&) = delete;
  MetricsExport& operator=(const MetricsExport&) = delete;

 private:
  std::string path_;
};

/// Prints the standard figure banner.
void print_banner(const std::string& figure, const std::string& description);

/// Ensures ./bench_out exists and returns its path.
std::string ensure_output_dir();

/// One row of a serial-vs-parallel thread sweep.
struct ThreadSweepRow {
  index_t threads = 1;
  double seconds = 0.0;  // best-of-reps wall time of one fn() call
  double speedup = 1.0;  // serial seconds / this row's seconds
};

/// Times `fn` once per rep at every thread count (via
/// runtime::set_num_threads, restored to automatic afterwards), keeps the
/// best rep, and prints a table. Speedups are relative to the first row,
/// which should be threads=1.
std::vector<ThreadSweepRow> run_thread_sweep(
    const std::string& name, const std::vector<index_t>& thread_counts,
    const std::function<void()>& fn, int reps = 3);

/// Writes named sweeps as JSON to `path` (e.g. bench_out/..._threads.json).
void write_thread_sweep_json(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<ThreadSweepRow>>>&
        sweeps);

}  // namespace oasis::bench
