// Checkpoint subsystem throughput: encode / durable-save / load+restore
// rates for a real federation snapshot, at three model scales. The encode
// and restore rows bound the per-checkpoint stall a training loop pays; the
// save row adds the fsync-twice durability cost, which dominates and is why
// checkpoint cadence (--checkpoint-every) is the knob that matters, not
// snapshot size.
#include <chrono>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "ckpt/io.h"
#include "ckpt/manager.h"
#include "data/synthetic.h"
#include "fl/preprocessor.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;

fl::Simulation make_simulation(index_t image_hw, index_t conv_channels) {
  data::SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.height = cfg.width = image_hw;
  cfg.train_per_class = 8;
  cfg.test_per_class = 0;
  cfg.seed = 4242;
  const data::SynthDataset dataset = data::generate(cfg);
  const auto shards = dataset.train.shard(4);

  const nn::ImageSpec spec{3, image_hw, image_hw};
  common::Rng init_rng(7);
  const fl::ModelFactory factory = [&spec, &init_rng, conv_channels]() {
    return nn::make_mini_convnet(spec, 10, init_rng, conv_channels);
  };
  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/8,
        std::make_shared<fl::IdentityPreprocessor>(), common::Rng(1000 + i)));
  }
  return fl::Simulation(std::move(server), std::move(clients),
                        fl::SimulationConfig{/*clients_per_round=*/4,
                                             /*seed=*/3});
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void bench_scale(const std::string& label, index_t image_hw,
                 index_t conv_channels, index_t iters) {
  obs::Registry::global().reset();
  fl::Simulation sim = make_simulation(image_hw, conv_channels);
  sim.run_round();  // populate optimizer-side and obs state realistically

  const tensor::ByteBuffer snapshot = sim.encode_checkpoint();
  const double mib =
      static_cast<double>(snapshot.size()) / (1024.0 * 1024.0);

  auto t0 = std::chrono::steady_clock::now();
  for (index_t i = 0; i < iters; ++i) (void)sim.encode_checkpoint();
  const double encode_s = seconds_since(t0) / static_cast<double>(iters);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "oasis_ckpt_bench";
  std::filesystem::remove_all(dir);
  ckpt::CheckpointManager manager(dir.string(), /*keep=*/2);
  t0 = std::chrono::steady_clock::now();
  for (index_t i = 0; i < iters; ++i) {
    (void)manager.save(static_cast<std::uint64_t>(i + 1), snapshot);
  }
  const double save_s = seconds_since(t0) / static_cast<double>(iters);

  t0 = std::chrono::steady_clock::now();
  for (index_t i = 0; i < iters; ++i) {
    const ckpt::CheckpointManager::Loaded loaded = manager.load_latest_valid();
    sim.restore_checkpoint(
        ckpt::read_file(manager.path_for(loaded.generation)));
  }
  const double restore_s = seconds_since(t0) / static_cast<double>(iters);
  std::filesystem::remove_all(dir);

  std::cout << std::left << std::setw(10) << label << std::right
            << std::setw(10) << std::fixed << std::setprecision(2) << mib
            << std::setw(12) << std::setprecision(1) << (mib / encode_s)
            << std::setw(12) << (mib / save_s) << std::setw(12)
            << (mib / restore_s) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("ckpt_roundtrip",
                        "Checkpoint encode/save/restore throughput");
  cli.add_bool("full", "run more iterations per row");
  runtime::add_cli_flag(cli);
  cli.parse(argc, argv);
  runtime::apply_cli_flag(cli);
  const index_t iters = cli.get_bool("full") ? 50 : 10;

  std::cout << "checkpoint round-trip throughput (MiB/s, " << iters
            << " iters/row; save = atomic write incl. fsync)\n";
  std::cout << std::left << std::setw(10) << "scale" << std::right
            << std::setw(10) << "size MiB" << std::setw(12) << "encode"
            << std::setw(12) << "save" << std::setw(12) << "restore" << "\n";
  bench_scale("small", /*image_hw=*/16, /*conv_channels=*/4, iters);
  bench_scale("medium", /*image_hw=*/24, /*conv_channels=*/8, iters);
  bench_scale("large", /*image_hw=*/32, /*conv_channels=*/16, iters);
  return 0;
}
