// Defense matrix (PR-10 robustness surface, not a paper figure): the
// {none, RTF, CAH} attack axis crossed with composable defense stacks.
//
// Every cell answers two questions at once:
//
//   PSNR     — how well does the dishonest server reconstruct the victim's
//              batch through this defense stack? (the privacy axis; absent
//              for the honest "none" attack, which reconstructs nothing)
//   accuracy — what does the SAME stack cost an honest federation's global
//              model? (the utility axis, measured once per stack since
//              honest training never sees the implant)
//
// The paper's qualitative shape: OASIS collapses reconstructions at a small
// accuracy cost; clip+noise (the DP composition) also degrades PSNR but
// charges utility directly through the gradients. The grid lands in
// bench_out/ as CSV + JSON via the standard ExperimentReport path.
#include <iomanip>
#include <iostream>
#include <memory>

#include "attack/cah.h"
#include "attack/recon_eval.h"
#include "attack/rtf.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/oasis.h"
#include "fl/client.h"
#include "fl/defense.h"
#include "fl/simulation.h"
#include "metrics/accuracy.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

constexpr index_t kNeurons = 48;
constexpr index_t kBatch = 8;

/// A parsed stack plus the preprocessor honoring its "oasis" token.
struct DefenseRow {
  std::string spec;
  std::shared_ptr<fl::DefenseStack> stack;
  fl::PreprocessorPtr preprocessor;
};

DefenseRow make_defense_row(const std::string& spec) {
  DefenseRow row;
  row.spec = spec;
  row.stack = fl::parse_defense_stack(spec);
  row.preprocessor = core::make_preprocessor(
      row.stack->augmentation_requested()
          ? std::vector<augment::TransformKind>{
                augment::TransformKind::kMajorRotation}
          : std::vector<augment::TransformKind>{});
  return row;
}

/// Reconstruction quality through one defense stack: a dishonest server
/// implants `atk` into the dispatched model, the single victim trains one
/// batch per round, and the stack defends the update before the server ever
/// sees it — exactly where fl::Simulation applies it.
std::vector<real> attack_psnr(attack::ActiveAttack& atk,
                              const fl::ModelFactory& factory,
                              const data::InMemoryDataset& victim_pool,
                              const DefenseRow& defense, index_t rounds,
                              std::uint64_t seed) {
  fl::MaliciousServer server(factory(), 1e-3, atk.manipulator());
  fl::Client victim(0, victim_pool, factory, kBatch, defense.preprocessor,
                    common::Rng(seed));
  const std::vector<std::uint64_t> cohort{0};

  std::vector<real> psnr;
  for (index_t round = 0; round < rounds; ++round) {
    server.begin_round();
    auto update = victim.handle_round(server.dispatch_to(0));
    defense.stack->apply(update, cohort);
    const auto candidates =
        atk.reconstruct(tensor::deserialize_tensors(update.gradients));
    const auto originals =
        data::unstack_images(victim.last_raw_batch().images);
    for (const auto& s : attack::best_match_psnr(candidates, originals)) {
      psnr.push_back(s.best_psnr);
    }
    std::vector<fl::ClientUpdateMessage> updates;
    updates.push_back(std::move(update));
    server.finish_round(updates);
  }
  return psnr;
}

/// Utility cost of one defense stack: an honest 4-client federation trains
/// with the stack installed (clip/noise land on every uploaded update, the
/// oasis token becomes the clients' preprocessor) and the global model is
/// scored on the held-out test split.
real honest_accuracy(const fl::ModelFactory& factory,
                     const data::InMemoryDataset& train,
                     const data::InMemoryDataset& test,
                     const DefenseRow& defense, index_t rounds,
                     std::uint64_t seed) {
  const index_t num_clients = 4;
  const auto shards = train.shard(num_clients);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < num_clients; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/16, defense.preprocessor,
        common::Rng(seed + 31 * i)));
  }
  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.1);
  fl::SimulationConfig config;
  config.seed = seed ^ 0xACC;
  fl::Simulation sim(std::move(server), std::move(clients), config);
  sim.set_defense_stack(defense.stack);
  sim.run(rounds);
  return metrics::accuracy(sim.server().global_model(), test);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("defense_matrix",
                        "{none, RTF, CAH} attack x defense-stack grid "
                        "(PSNR + honest accuracy)");
  cli.add_bool("full", "more rounds and attack batches");
  cli.add_flag("seed", "experiment seed", "424");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const index_t attack_rounds = full ? 6 : 2;
  const index_t train_rounds = full ? 150 : 50;

  print_banner("Defense matrix",
               "attack x defense-stack grid: reconstruction PSNR vs honest "
               "global-model accuracy");
  common::Stopwatch total;

  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 16;
  cfg.num_classes = 6;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  const auto ds = data::generate(cfg);
  cfg.seed ^= 0xA0;
  cfg.test_per_class = 0;
  const auto aux = data::generate(cfg).train;

  const auto& shape = ds.train.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  common::Rng model_rng(seed ^ 0x90DE1);
  const fl::ModelFactory factory = [&] {
    return nn::make_attack_host(spec, kNeurons, cfg.num_classes, model_rng);
  };

  const char* kStacks[] = {
      "none",
      "clip:5",
      "clip:5,noise:0.01",
      "oasis",
      "clip:5,noise:0.01,oasis",
  };

  metrics::ExperimentReport report("defense_matrix");
  std::cout << "\n"
            << std::left << std::setw(26) << "defense stack" << std::right
            << std::setw(14) << "accuracy(%)" << std::setw(14) << "RTF PSNR"
            << std::setw(14) << "CAH PSNR" << "\n";
  for (const char* spec_str : kStacks) {
    const auto defense = make_defense_row(spec_str);

    // The honest ("none" attack) cell: utility only.
    const real acc =
        honest_accuracy(factory, ds.train, ds.test, defense, train_rounds,
                        seed);
    report.begin_row();
    report.add("attack", std::string("none"));
    report.add("defense", defense.spec);
    report.add("accuracy", acc);

    // The attacked cells: same stack, dishonest server.
    real mean_psnr[2] = {0.0, 0.0};
    {
      attack::RtfAttack rtf(spec, kNeurons, aux);
      const auto psnr = attack_psnr(rtf, factory, ds.train, defense,
                                    attack_rounds, seed + 1);
      const auto stats = metrics::box_stats(psnr);
      mean_psnr[0] = stats.mean;
      report.begin_row();
      report.add("attack", std::string("rtf"));
      report.add("defense", defense.spec);
      report.add("mean_psnr", stats.mean);
      report.add("median_psnr", stats.median);
      report.add("max_psnr", stats.max);
      report.add("accuracy", acc);
    }
    {
      attack::CahAttack cah(spec, kNeurons, 1.0 / kBatch, aux,
                            seed ^ 0xCA11);
      const auto psnr = attack_psnr(cah, factory, ds.train, defense,
                                    attack_rounds, seed + 2);
      const auto stats = metrics::box_stats(psnr);
      mean_psnr[1] = stats.mean;
      report.begin_row();
      report.add("attack", std::string("cah"));
      report.add("defense", defense.spec);
      report.add("mean_psnr", stats.mean);
      report.add("median_psnr", stats.median);
      report.add("max_psnr", stats.max);
      report.add("accuracy", acc);
    }

    std::cout << std::left << std::setw(26) << defense.spec << std::right
              << std::fixed << std::setw(14) << std::setprecision(1)
              << acc * 100.0 << std::setw(14) << std::setprecision(2)
              << mean_psnr[0] << std::setw(14) << mean_psnr[1] << "\n";
  }
  flush_report(report);
  std::cout << "\n[defense_matrix] total " << total.seconds() << " s\n";
  return 0;
}
