// Round-engine fault-tolerance overhead: FedAvg round throughput with the
// fault machinery off (legacy path) and at dropout rates {0, 0.1, 0.3} with
// a 0.5 quorum. The dropout-0 row exercises the full fault-tolerant path
// (virtual clock, deadlines, model snapshot) on an all-honest cohort and
// should sit within noise of the legacy baseline — the machinery is free
// until faults actually occur.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "data/synthetic.h"
#include "fl/fault.h"
#include "fl/preprocessor.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;

struct RoundBenchResult {
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  std::uint64_t aborted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t clients_lost = 0;
};

fl::Simulation make_simulation(const data::SynthDataset& dataset,
                               index_t n_clients, real dropout, real quorum) {
  const auto shards = dataset.train.shard(n_clients);
  const nn::ImageSpec spec{3, 12, 12};
  common::Rng init_rng(7);
  const index_t classes = dataset.train.num_classes();
  const fl::ModelFactory factory = [&spec, &init_rng, classes]() {
    return nn::make_mini_convnet(spec, classes, init_rng, 4);
  };
  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/8,
        std::make_shared<fl::IdentityPreprocessor>(), common::Rng(1000 + i)));
  }
  fl::SimulationConfig cfg{/*clients_per_round=*/4, /*seed=*/3};
  cfg.quorum_fraction = quorum;
  fl::Simulation sim(std::move(server), std::move(clients), cfg);
  if (dropout > 0.0 || quorum > 0.0) {
    fl::FaultConfig faults;
    faults.dropout_prob = dropout;
    faults.seed = 677200;
    if (faults.any()) sim.set_fault_plan(fl::FaultPlan(faults));
  }
  return sim;
}

RoundBenchResult run_rounds(const data::SynthDataset& dataset,
                            index_t n_clients, index_t rounds, real dropout,
                            real quorum) {
  obs::Registry::global().reset();
  fl::Simulation sim = make_simulation(dataset, n_clients, dropout, quorum);
  const auto t0 = std::chrono::steady_clock::now();
  for (index_t r = 0; r < rounds; ++r) {
    try {
      sim.run_round();
    } catch (const QuorumError&) {
      // Rolled back bit-exactly by the engine; keep going.
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  RoundBenchResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.rounds_per_sec = static_cast<double>(rounds) / out.seconds;
  out.aborted = obs::counter("fl.rounds_aborted").value();
  out.rejected = obs::counter("fl.validate.rejected").value();
  out.clients_lost = obs::counter("fl.clients_lost").value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("fault_rounds",
                        "FL round throughput under injected client faults");
  cli.add_flag("rounds", "rounds per configuration", "40");
  cli.add_flag("clients", "number of clients N", "8");
  cli.add_flag("reps", "repetitions (best-of)", "3");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);

  const auto rounds = static_cast<index_t>(cli.get_int("rounds"));
  const auto n_clients = static_cast<index_t>(cli.get_int("clients"));
  const auto reps = static_cast<int>(cli.get_int("reps"));

  print_banner("fault_rounds",
               "Round throughput: legacy engine vs fault-tolerant engine at "
               "dropout {0, 0.1, 0.3}, quorum 0.5");

  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 12;
  cfg.train_per_class = 8;
  cfg.test_per_class = 2;
  const data::SynthDataset dataset = data::generate(cfg);

  struct Row {
    const char* label;
    real dropout;
    real quorum;
  };
  const Row rows[] = {
      {"legacy (no fault machinery)", 0.0, 0.0},
      {"fault-tolerant, dropout 0.0", 0.0, 0.5},
      {"fault-tolerant, dropout 0.1", 0.1, 0.5},
      {"fault-tolerant, dropout 0.3", 0.3, 0.5},
  };

  std::cout << std::left << std::setw(30) << "configuration" << std::right
            << std::setw(10) << "rounds/s" << std::setw(10) << "overhead"
            << std::setw(9) << "aborted" << std::setw(9) << "rejected"
            << std::setw(7) << "lost" << "\n";

  double baseline_rps = 0.0;
  for (const Row& row : rows) {
    RoundBenchResult best;
    for (int rep = 0; rep < reps; ++rep) {
      RoundBenchResult r =
          run_rounds(dataset, n_clients, rounds, row.dropout, row.quorum);
      if (rep == 0 || r.seconds < best.seconds) best = r;
    }
    if (baseline_rps == 0.0) baseline_rps = best.rounds_per_sec;
    const double overhead = baseline_rps / best.rounds_per_sec - 1.0;
    std::cout << std::left << std::setw(30) << row.label << std::right
              << std::fixed << std::setprecision(1) << std::setw(10)
              << best.rounds_per_sec << std::setprecision(1) << std::setw(9)
              << overhead * 100.0 << "%" << std::setw(9) << best.aborted
              << std::setw(9) << best.rejected << std::setw(7)
              << best.clients_lost << "\n";
    obs::gauge(std::string("bench.fault_rounds.rps.dropout_") +
               std::to_string(row.dropout).substr(0, 3) +
               (row.quorum > 0.0 ? "" : ".legacy"))
        .set(best.rounds_per_sec);
  }
  return 0;
}
