// Figure 2 — visual intuition for PSNR values: the same image reconstructed
// by RTF without OASIS (verbatim, ~130+ dB) and with OASIS (unrecognizable
// overlap, ~15 dB). Writes original/recon PPM panels to bench_out/ and
// prints the PSNR of each.
#include <iostream>

#include "bench_common.h"
#include "data/image.h"
#include "metrics/psnr.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("fig02_psnr_visual",
                        "Reproduces Figure 2 (PSNR visual representation)");
  cli.add_flag("seed", "experiment seed", "202");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figure 2", "visual representation of PSNR values");
  const std::string dir = ensure_output_dir();
  const AttackData data = make_imagenet_data(false);

  core::AttackExperimentConfig cfg;
  cfg.attack = core::AttackKind::kRtf;
  cfg.batch_size = 8;
  cfg.neurons = 900;
  cfg.num_batches = 1;
  cfg.classes = data.classes;
  cfg.seed = seed;
  cfg.collect_visuals = true;

  const auto undefended = core::run_attack_experiment(data.victim, data.aux,
                                                      cfg);
  cfg.transforms = {augment::TransformKind::kMajorRotation};
  const auto defended = core::run_attack_experiment(data.victim, data.aux,
                                                    cfg);

  // Pick the image whose undefended reconstruction is best (the paper shows
  // a verbatim copy next to a destroyed one).
  index_t pick = 0;
  for (index_t i = 0; i < undefended.per_image_psnr.size(); ++i) {
    if (undefended.per_image_psnr[i] > undefended.per_image_psnr[pick]) {
      pick = i;
    }
  }
  const auto& original = undefended.visual_originals[pick];
  const auto& recon_wo = undefended.visual_reconstructions[pick];
  const auto& recon_oasis = defended.visual_reconstructions[pick];

  data::write_pnm(original, dir + "/fig02_original.ppm");
  data::write_pnm(recon_wo, dir + "/fig02_recon_without_oasis.ppm");
  data::write_pnm(recon_oasis, dir + "/fig02_recon_with_oasis.ppm");
  data::write_pnm(data::tile_images({original, recon_wo, recon_oasis}, 3),
                  dir + "/fig02_panel.ppm");

  std::cout << "original image                : " << dir
            << "/fig02_original.ppm\n"
            << "reconstruction without OASIS  : "
            << metrics::psnr(recon_wo, original) << " dB\n"
            << "reconstruction with OASIS(MR) : "
            << metrics::psnr(recon_oasis, original) << " dB\n"
            << "side-by-side panel written to " << dir << "/fig02_panel.ppm\n";
  return 0;
}
