// Figure 3 — PSNR of images reconstructed by the RTF attack under each OASIS
// transform, for {ImageNet, CIFAR100} × batch size {8, 64}.
//
// Paper shape to reproduce: WO boxes sit at 90-150 dB (verbatim copies);
// every transform collapses them, with Major Rotation strongest (~15-20 dB);
// flips are the weakest defenses.
//
// The optimal attacked-neuron counts per (dataset, batch) come from the
// Fig. 9 sweep, as in the paper: ImageNet 900/800, CIFAR100 500/600.
#include <iostream>

#include "attack/rtf.h"
#include "augment/affine.h"
#include "augment/policy.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "metrics/psnr.h"
#include "nn/conv2d.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "nn/pooling.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

struct Setting {
  index_t batch;
  index_t neurons_imagenet;
  index_t neurons_cifar;
  index_t batches_quick;
  index_t batches_full;
};

void run_ablations(const AttackData& data, index_t batch, index_t neurons,
                   index_t num_batches) {
  // Ablation (a): score the MR reconstruction against the *transformed*
  // copies too — quantifies how much content a rotated-copy leak would
  // reveal if the attacker matched against rotations (the caveat the paper
  // discusses for flips).
  std::cout << "\n[ablation] MR defense scored against originals "
               "∪ their rotations (attacker tries rotated matching):\n";
  core::AttackExperimentConfig cfg;
  cfg.attack = core::AttackKind::kRtf;
  cfg.batch_size = batch;
  cfg.neurons = neurons;
  cfg.num_batches = num_batches;
  cfg.classes = data.classes;
  cfg.transforms = {augment::TransformKind::kMajorRotation};
  cfg.collect_visuals = true;
  const auto result = core::run_attack_experiment(data.victim, data.aux, cfg);

  std::vector<real> vs_rotations;
  auto policy = augment::make_policy({augment::TransformKind::kMajorRotation});
  common::Rng rng(4242);
  for (index_t i = 0; i < result.visual_originals.size(); ++i) {
    real best = metrics::psnr(result.visual_reconstructions[i],
                              result.visual_originals[i]);
    for (const auto& variant :
         policy.variants(result.visual_originals[i], rng)) {
      best = std::max(best,
                      metrics::psnr(result.visual_reconstructions[i], variant));
    }
    vs_rotations.push_back(best);
  }
  std::cout << metrics::box_row_header("matching") << "\n"
            << metrics::format_box_row(
                   "orig-only", metrics::box_stats(result.per_image_psnr))
            << "\n"
            << metrics::format_box_row("orig+rot",
                                       metrics::box_stats(vs_rotations))
            << "\n";

  // Ablation (b): an ADAPTIVE attacker who anticipates OASIS and calibrates
  // its bins on an augmented aux distribution (aux images plus their
  // rotations). Rotations preserve the brightness measurement, so the
  // calibration distribution is unchanged and the defense holds — the
  // "robust regardless of attack strategy" property of Proposition 1.
  std::cout << "\n[ablation] adaptive RTF calibrated on rotation-augmented "
               "aux data, vs OASIS(MR):\n";
  data::InMemoryDataset augmented_aux(data.aux.num_classes(),
                                      data.aux.image_shape());
  for (index_t i = 0; i < data.aux.size(); ++i) {
    const auto& e = data.aux.at(i);
    augmented_aux.push_back(e);
    augmented_aux.push_back({augment::rotate90(e.image), e.label});
    augmented_aux.push_back({augment::rotate180(e.image), e.label});
    augmented_aux.push_back({augment::rotate270(e.image), e.label});
  }
  core::AttackExperimentConfig adaptive = cfg;
  adaptive.collect_visuals = false;
  const auto adaptive_result =
      core::run_attack_experiment(data.victim, augmented_aux, adaptive);
  std::cout << metrics::box_row_header("attacker") << "\n"
            << metrics::format_box_row(
                   "standard", metrics::box_stats(result.per_image_psnr))
            << "\n"
            << metrics::format_box_row(
                   "adaptive",
                   metrics::box_stats(adaptive_result.per_image_psnr))
            << "\n";

  // Ablation (c): malicious-layer placement depth. The threat model places
  // the implant directly after the input — the strongest position. Here the
  // implant sits behind an honest (random) conv layer instead: inverting its
  // gradients recovers conv FEATURE maps, not pixels, so reconstruction
  // quality collapses even without any defense.
  std::cout << "\n[ablation] implant placement depth (no defense):\n";
  {
    const auto& shape = data.victim.image_shape();
    const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
    common::Rng rng(777);
    auto host = std::make_unique<nn::Sequential>();
    host->emplace<nn::Conv2d>(spec.channels, spec.channels, 3, 1, 1, rng);
    host->emplace<nn::ReLU>();
    host->emplace<nn::Flatten>();
    host->emplace<nn::Dense>(spec.pixels(), neurons, rng);  // malicious slot
    host->emplace<nn::ReLU>();
    host->emplace<nn::Dense>(neurons, data.classes, rng);

    attack::RtfAttack deep_attack(spec, neurons, data.aux);
    deep_attack.implant(*host);

    std::vector<real> psnrs;
    common::Rng batch_rng(778);
    nn::SoftmaxCrossEntropy loss_fn;
    for (index_t round = 0; round < num_batches; ++round) {
      const auto indices =
          batch_rng.sample_without_replacement(data.victim.size(), batch);
      const data::Batch b = data::gather(data.victim, indices);
      host->zero_grad();
      const auto logits = host->forward(b.images, true);
      host->backward(loss_fn.compute(logits, b.labels).grad_logits);
      const auto scores = attack::best_match_psnr(
          deep_attack.reconstruct(nn::snapshot_gradients(*host)),
          data::unstack_images(b.images));
      for (const auto& s : scores) psnrs.push_back(s.best_psnr);
    }
    std::cout << metrics::box_row_header("placement") << "\n"
              << metrics::format_box_row("after-conv (deep)",
                                         metrics::box_stats(psnrs))
              << "   (vs ~verbatim for input-adjacent, see WO row above)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("fig03_rtf_defense",
                        "Reproduces Figure 3 (RTF vs OASIS transforms)");
  cli.add_bool("full", "paper-scale batches/datasets");
  cli.add_bool("ablations", "run the extra ablation studies");
  cli.add_flag("seed", "experiment seed", "303");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figure 3",
               "RTF attack: PSNR per transform, per dataset, per batch size");
  common::Stopwatch total;
  metrics::ExperimentReport report("fig03_rtf_defense");

  const Setting settings[] = {
      {8, 900, 500, 6, 16},
      {64, 800, 600, 2, 4},
  };

  for (const bool imagenet : {true, false}) {
    const AttackData data =
        imagenet ? make_imagenet_data(full) : make_cifar_data(full);
    for (const auto& s : settings) {
      const index_t n = imagenet ? s.neurons_imagenet : s.neurons_cifar;
      const index_t batches = full ? s.batches_full : s.batches_quick;
      std::cout << "\n--- dataset=" << data.name << "  B=" << s.batch
                << "  attacked-neurons n=" << n
                << "  (box over " << batches * s.batch << " images) ---\n";
      report.set_context("dataset", data.name);
      report.set_context("batch", static_cast<real>(s.batch));
      report.set_context("neurons", static_cast<real>(n));
      run_and_print_rows(data, core::AttackKind::kRtf, s.batch, n, batches,
                         rtf_transform_rows(), seed + s.batch, &report);
      if (cli.get_bool("ablations") && s.batch == 8) {
        run_ablations(data, s.batch, n, batches);
      }
    }
  }
  flush_report(report);
  std::cout << "\n[fig03] total " << total.seconds() << " s\n";
  return 0;
}
