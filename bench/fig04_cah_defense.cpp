// Figure 4 — PSNR of images reconstructed by the CAH attack under OASIS for
// {WO, SH, MR, MR+SH} × {ImageNet, CIFAR100} × batch {8, 64}.
//
// Paper shape: at B=64 major rotation alone keeps PSNR low; at B=8 single
// transforms fail to protect several images (high whiskers/outliers) and the
// MR+SH integration is required to keep every reconstruction unrecognizable.
//
// Optimal neuron counts from the Fig. 10 sweep: ImageNet 100 (B=8) / 700
// (B=64); CIFAR100 300 (B=8) / 600 (B=64).
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("fig04_cah_defense",
                        "Reproduces Figure 4 (CAH vs OASIS transforms)");
  cli.add_bool("full", "paper-scale batches/datasets");
  cli.add_flag("seed", "experiment seed", "404");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figure 4",
               "CAH attack: PSNR per transform, per dataset, per batch size");
  common::Stopwatch total;
  metrics::ExperimentReport report("fig04_cah_defense");

  struct Setting {
    index_t batch;
    index_t neurons_imagenet;
    index_t neurons_cifar;
    index_t batches_quick;
    index_t batches_full;
  };
  const Setting settings[] = {
      {8, 100, 300, 8, 16},
      {64, 700, 600, 2, 4},
  };

  for (const bool imagenet : {true, false}) {
    const AttackData data =
        imagenet ? make_imagenet_data(full) : make_cifar_data(full);
    for (const auto& s : settings) {
      const index_t n = imagenet ? s.neurons_imagenet : s.neurons_cifar;
      const index_t batches = full ? s.batches_full : s.batches_quick;
      std::cout << "\n--- dataset=" << data.name << "  B=" << s.batch
                << "  attacked-neurons n=" << n
                << "  (box over " << batches * s.batch << " images) ---\n";
      report.set_context("dataset", data.name);
      report.set_context("batch", static_cast<real>(s.batch));
      report.set_context("neurons", static_cast<real>(n));
      run_and_print_rows(data, core::AttackKind::kCah, s.batch, n, batches,
                         cah_transform_rows(), seed + s.batch, &report);
    }
  }
  flush_report(report);
  std::cout << "\n[fig04] total " << total.seconds() << " s\n";
  return 0;
}
