// Figures 5-8 — visual reconstructions under OASIS:
//   Fig. 5: RTF + major rotation      (unrecognizable overlap)
//   Fig. 6: RTF + minor rotation      (blurred overlap, higher PSNR)
//   Fig. 7: RTF + shearing            (original overlapped with its shear)
//   Fig. 8: CAH + major rotation+shear (unrecognizable)
// Writes left/right panels (raw inputs | reconstructions) as PPMs and prints
// per-image PSNR.
#include <iostream>

#include "bench_common.h"
#include "data/image.h"
#include "metrics/stats.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

void run_panel(const std::string& figure, const AttackData& data,
               core::AttackKind attack, index_t neurons,
               const std::vector<augment::TransformKind>& transforms,
               const std::string& label, std::uint64_t seed,
               const std::string& dir) {
  core::AttackExperimentConfig cfg;
  cfg.attack = attack;
  cfg.batch_size = 8;
  cfg.neurons = neurons;
  cfg.num_batches = 1;
  cfg.classes = data.classes;
  cfg.transforms = transforms;
  cfg.seed = seed;
  cfg.collect_visuals = true;
  const auto result = core::run_attack_experiment(data.victim, data.aux, cfg);

  const std::string left = dir + "/" + figure + "_inputs.ppm";
  const std::string right = dir + "/" + figure + "_reconstructions.ppm";
  data::write_pnm(data::tile_images(result.visual_originals, 4), left);
  data::write_pnm(data::tile_images(result.visual_reconstructions, 4), right);

  std::cout << "\n" << figure << " (" << core::to_string(attack) << " + "
            << label << "):\n  inputs          -> " << left
            << "\n  reconstructions -> " << right << "\n  "
            << metrics::format_box_row(
                   label, metrics::box_stats(result.per_image_psnr))
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using augment::TransformKind;

  common::CliParser cli("fig05_08_visuals",
                        "Reproduces Figures 5-8 (visual reconstructions)");
  cli.add_flag("seed", "experiment seed", "508");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figures 5-8", "visual reconstructions under OASIS");
  std::cout << metrics::box_row_header("transform") << "\n";
  const std::string dir = ensure_output_dir();
  const AttackData data = make_imagenet_data(false);

  run_panel("fig05", data, core::AttackKind::kRtf, 900,
            {TransformKind::kMajorRotation}, "MR", seed, dir);
  run_panel("fig06", data, core::AttackKind::kRtf, 900,
            {TransformKind::kMinorRotation}, "mR", seed + 1, dir);
  run_panel("fig07", data, core::AttackKind::kRtf, 900,
            {TransformKind::kShear}, "SH", seed + 2, dir);
  run_panel("fig08", data, core::AttackKind::kCah, 100,
            {TransformKind::kMajorRotation, TransformKind::kShear}, "MR+SH",
            seed + 3, dir);
  return 0;
}
