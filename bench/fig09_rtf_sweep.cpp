// Figure 9 — average PSNR of RTF reconstructions vs batch size and number of
// attacked neurons, on both datasets (no defense). This is the preliminary
// experiment that picks the optimal n per (dataset, batch) for Figure 3.
//
// Paper shape: PSNR decreases with batch size and increases with n; the
// paper's optima are ImageNet {B8: n=900, B64: n=800} and CIFAR100
// {B8: n=500, B64: n=600}.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("fig09_rtf_sweep",
                        "Reproduces Figure 9 (RTF batch × neurons sweep)");
  cli.add_bool("full", "paper-scale grid");
  cli.add_flag("seed", "experiment seed", "909");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figure 9", "RTF average PSNR vs (batch size, #neurons)");
  common::Stopwatch total;
  metrics::ExperimentReport report("fig09_rtf_sweep");

  const std::vector<index_t> batches =
      full ? std::vector<index_t>{8, 16, 32, 64}
           : std::vector<index_t>{8, 32, 64};
  const std::vector<index_t> neuron_grid =
      full ? std::vector<index_t>{100, 200, 300, 400, 500, 600, 700, 800, 900}
           : std::vector<index_t>{100, 300, 500, 700, 900};
  const index_t rounds = full ? 4 : 2;

  for (const bool imagenet : {true, false}) {
    const AttackData data =
        imagenet ? make_imagenet_data(full) : make_cifar_data(full);
    std::cout << "\n--- dataset=" << data.name
              << " (cells: mean PSNR dB over " << rounds
              << " victim batches) ---\n"
              << std::setw(8) << "B\\n";
    for (const auto n : neuron_grid) std::cout << std::setw(9) << n;
    std::cout << "\n";
    for (const auto b : batches) {
      std::cout << std::setw(8) << b;
      for (const auto n : neuron_grid) {
        core::AttackExperimentConfig cfg;
        cfg.attack = core::AttackKind::kRtf;
        cfg.batch_size = b;
        cfg.neurons = n;
        cfg.num_batches = rounds;
        cfg.classes = data.classes;
        cfg.seed = seed + b * 1000 + n;
        const auto result =
            core::run_attack_experiment(data.victim, data.aux, cfg);
        std::cout << std::setw(9) << std::fixed << std::setprecision(1)
                  << result.mean_psnr() << std::flush;
        report.begin_row();
        report.add("dataset", data.name);
        report.add("batch", static_cast<real>(b));
        report.add("neurons", static_cast<real>(n));
        report.add("mean_psnr", result.mean_psnr());
      }
      std::cout << "\n";
    }
  }
  flush_report(report);
  std::cout << "\n[fig09] total " << total.seconds() << " s\n";
  return 0;
}
