// Figures 11-12 — visual reconstructions with flips (Appendix D): a linear
// combination of an image and its mirror still reveals the original as a
// reflection, so flips alone are the weakest OASIS transforms.
#include <iostream>

#include "bench_common.h"
#include "data/image.h"
#include "metrics/stats.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;
  using augment::TransformKind;

  common::CliParser cli("fig11_12_flip_visuals",
                        "Reproduces Figures 11-12 (flip reconstructions)");
  cli.add_flag("seed", "experiment seed", "1112");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figures 11-12",
               "RTF reconstructions with horizontal / vertical flips");
  std::cout << metrics::box_row_header("transform") << "\n";
  const std::string dir = ensure_output_dir();
  const AttackData data = make_imagenet_data(false);

  const struct {
    const char* figure;
    TransformKind kind;
    const char* label;
  } panels[] = {
      {"fig11", TransformKind::kHorizontalFlip, "HFlip"},
      {"fig12", TransformKind::kVerticalFlip, "VFlip"},
  };

  for (const auto& p : panels) {
    core::AttackExperimentConfig cfg;
    cfg.attack = core::AttackKind::kRtf;
    cfg.batch_size = 8;
    cfg.neurons = 900;
    cfg.num_batches = 1;
    cfg.classes = data.classes;
    cfg.transforms = {p.kind};
    cfg.seed = seed;
    cfg.collect_visuals = true;
    const auto result =
        core::run_attack_experiment(data.victim, data.aux, cfg);
    const std::string left = std::string(dir) + "/" + p.figure + "_inputs.ppm";
    const std::string right =
        std::string(dir) + "/" + p.figure + "_reconstructions.ppm";
    data::write_pnm(data::tile_images(result.visual_originals, 4), left);
    data::write_pnm(data::tile_images(result.visual_reconstructions, 4),
                    right);
    std::cout << "\n" << p.figure << " (RTF + " << p.label
              << "):\n  inputs          -> " << left
              << "\n  reconstructions -> " << right << "\n  "
              << metrics::format_box_row(
                     p.label, metrics::box_stats(result.per_image_psnr))
              << "\n";
  }
  return 0;
}
