// Figure 13 (Appendix D) — gradient inversion on linear models: a
// single-layer logistic-regression model whose per-class gradient rows are
// inverted directly, on batches with unique labels.
//
// Paper shape: all five transforms yield low-PSNR reconstructions on both
// datasets and both batch sizes; rotation and shearing beat flipping.
//
// Note: unique-label batches of size 64 need ≥64 classes, so the ImageNet
// stand-in for this bench uses a 100-class variant of the generator (the
// paper's ImageNet has 1000 classes; see EXPERIMENTS.md).
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("fig13_linear_model",
                        "Reproduces Figure 13 (linear-model inversion)");
  cli.add_bool("full", "paper-scale batches");
  cli.add_flag("seed", "experiment seed", "1313");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Figure 13",
               "linear-model gradient inversion: PSNR per transform");
  common::Stopwatch total;
  metrics::ExperimentReport report("fig13_linear_model");

  for (const bool imagenet : {true, false}) {
    const AttackData data = imagenet
                                ? make_imagenet_data(full, /*classes=*/100)
                                : make_cifar_data(full);
    for (const index_t batch : {index_t{8}, index_t{64}}) {
      const index_t batches = full ? (batch == 8 ? 12 : 4)
                                   : (batch == 8 ? 4 : 2);
      std::cout << "\n--- dataset=" << data.name << " (" << data.classes
                << "-class linear model)  B=" << batch << "  (box over "
                << batches * batch << " images) ---\n";
      report.set_context("dataset", data.name);
      report.set_context("batch", static_cast<real>(batch));
      run_and_print_rows(data, core::AttackKind::kLinear, batch,
                         /*neurons=*/0, batches, rtf_transform_rows(),
                         seed + batch, &report);
    }
  }
  flush_report(report);
  std::cout << "\n[fig13] total " << total.seconds() << " s\n";
  return 0;
}
