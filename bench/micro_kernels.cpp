// Micro-benchmarks (google-benchmark) for the numeric kernels the
// experiments lean on: matmul variants, im2col, affine warps, PSNR, and the
// attack implant/reconstruct paths. Not a paper figure — an engineering
// baseline for regressions.
//
// Before the google-benchmark suite runs, a serial-vs-parallel thread sweep
// times the pool-dispatched kernels (GEMM, conv forward/backward) at several
// thread counts and writes the speedup table to
// bench_out/micro_kernels_threads.json. `--threads N` selects the pool size
// for the benchmark suite itself and is swept as the top count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "attack/cah.h"
#include "attack/rtf.h"
#include "augment/affine.h"
#include "bench_common.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metrics/psnr.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "tensor/gemm/gemm.h"
#include "tensor/ops.h"

namespace {

using namespace oasis;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  common::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  common::Rng rng(2);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
  }
}
BENCHMARK(BM_MatmulTn)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  common::Rng rng(3);
  const tensor::Tensor img = tensor::Tensor::randn({16, 32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::im2col(img, 3, 3, 1, 1));
  }
}
BENCHMARK(BM_Im2Col);

void BM_WarpRotate(benchmark::State& state) {
  common::Rng rng(4);
  const tensor::Tensor img = tensor::Tensor::rand({3, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(augment::rotate(img, 0.5));
  }
}
BENCHMARK(BM_WarpRotate);

void BM_ExactRotate90(benchmark::State& state) {
  common::Rng rng(5);
  const tensor::Tensor img = tensor::Tensor::rand({3, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(augment::rotate90(img));
  }
}
BENCHMARK(BM_ExactRotate90);

void BM_Psnr(benchmark::State& state) {
  common::Rng rng(6);
  const tensor::Tensor a = tensor::Tensor::rand({3, 64, 64}, rng);
  const tensor::Tensor b = tensor::Tensor::rand({3, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::psnr(a, b));
  }
}
BENCHMARK(BM_Psnr);

data::InMemoryDataset micro_aux() {
  data::SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.height = cfg.width = 32;
  cfg.train_per_class = 8;
  cfg.test_per_class = 0;
  cfg.seed = 77;
  return data::generate(cfg).train;
}

void BM_RtfImplant(benchmark::State& state) {
  const auto aux = micro_aux();
  const nn::ImageSpec spec{3, 32, 32};
  attack::RtfAttack atk(spec, 256, aux);
  common::Rng rng(7);
  auto host = nn::make_attack_host(spec, 256, 10, rng);
  for (auto _ : state) {
    atk.implant(*host);
  }
}
BENCHMARK(BM_RtfImplant);

void BM_RtfReconstruct(benchmark::State& state) {
  const auto aux = micro_aux();
  const nn::ImageSpec spec{3, 32, 32};
  const index_t n = 256;
  attack::RtfAttack atk(spec, n, aux);
  common::Rng rng(8);
  auto host = nn::make_attack_host(spec, n, 10, rng);
  atk.implant(*host);
  // One real gradient computation to invert.
  std::vector<index_t> idx{0, 1, 2, 3};
  const data::Batch b = data::gather(aux, idx);
  host->zero_grad();
  nn::SoftmaxCrossEntropy loss_fn;
  const auto logits = host->forward(b.images, true);
  host->backward(loss_fn.compute(logits, b.labels).grad_logits);
  const auto grads = nn::snapshot_gradients(*host);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atk.reconstruct(grads));
  }
}
BENCHMARK(BM_RtfReconstruct);

void BM_CahCalibration(benchmark::State& state) {
  const auto aux = micro_aux();
  const nn::ImageSpec spec{3, 32, 32};
  for (auto _ : state) {
    attack::CahAttack atk(spec, 64, 0.125, aux);
    benchmark::DoNotOptimize(&atk);
  }
}
BENCHMARK(BM_CahCalibration);

// Extracts `--threads N` / `--threads=N` from argv (google-benchmark rejects
// flags it does not know) and returns the requested count, 0 = automatic.
index_t take_threads_flag(int& argc, char** argv) {
  index_t threads = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::strlen("--threads="));
    } else {
      argv[out++] = argv[i];
      continue;
    }
    threads = static_cast<index_t>(std::strtoul(value.c_str(), nullptr, 10));
  }
  argc = out;
  return threads;
}

// Extracts `--metrics-out PATH` / `--metrics-out=PATH`; "" = disabled.
std::string take_metrics_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      path = arg.substr(std::strlen("--metrics-out="));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

void run_thread_sweeps(index_t top) {
  using bench::ThreadSweepRow;
  std::vector<index_t> counts{1};
  for (index_t t = 2; t <= std::max<index_t>(top, 4); t *= 2) {
    counts.push_back(t);
  }
  if (top > 1 && std::find(counts.begin(), counts.end(), top) == counts.end()) {
    counts.push_back(top);
  }

  common::Rng rng(42);
  const tensor::Tensor a = tensor::Tensor::randn({192, 192}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({192, 192}, rng);
  const tensor::Tensor x = tensor::Tensor::randn({8, 3, 32, 32}, rng);
  nn::Conv2d conv(3, 16, 3, 1, 1, rng);
  const tensor::Tensor y = conv.forward(x, true);
  tensor::Tensor gy(y.shape());
  for (auto& g : gy.data()) g = 1.0;

  std::printf("serial-vs-parallel thread sweep (pool dispatched kernels)\n");
  // One span per sweep phase; the workload per phase is fixed (counts ×
  // reps), so every counter the kernels bump below is thread-count
  // invariant even though the span nanoseconds are not.
  const obs::ScopedTimer sweep_span("micro.sweep");
  std::vector<std::pair<std::string, std::vector<ThreadSweepRow>>> sweeps;
  {
    const obs::ScopedTimer s("gemm_192");
    sweeps.emplace_back("gemm_192", bench::run_thread_sweep(
        "gemm_192", counts, [&] { tensor::matmul(a, b); }));
  }
  {
    const obs::ScopedTimer s("conv2d_forward");
    sweeps.emplace_back("conv2d_forward", bench::run_thread_sweep(
        "conv2d_forward", counts, [&] { conv.forward(x, true); }));
  }
  {
    const obs::ScopedTimer s("conv2d_backward");
    sweeps.emplace_back("conv2d_backward", bench::run_thread_sweep(
        "conv2d_backward", counts, [&] {
          conv.zero_grad();
          conv.backward(gy);
        }));
  }
  bench::write_thread_sweep_json(
      bench::ensure_output_dir() + "/micro_kernels_threads.json", sweeps);
}

// dtype × ISA × threads GEMM sweep: times the blocked kernel family on
// square multiplies under every ISA available on this host, for both the
// double fidelity dtype and the float scale dtype, at 1 thread and the pool
// size, against the same-dtype naive oracle and the scalar-f64 blocked
// baseline. The table goes to bench_out/BENCH_gemm.json — the acceptance
// artifact for the kernel layer (DESIGN.md §5f/§5k): the differential tests
// prove the bits match, this records how much faster each variant is.
struct GemmSweepRow {
  const char* dtype;
  std::string isa;
  const char* variant;
  index_t n, threads;
  double naive_s, blocked_s, scalar_f64_s;
};

template <typename T>
double time_gemm_best(tensor::gemm::Variant v, index_t n, const std::vector<T>& a,
                      const std::vector<T>& b, std::vector<T>& c, int reps,
                      bool naive) {
  using Clock = std::chrono::steady_clock;
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    std::fill(c.begin(), c.end(), T(0));
    const auto t0 = Clock::now();
    if (naive) {
      tensor::gemm::naive(v, n, n, n, a.data(), b.data(), c.data());
    } else {
      tensor::gemm::blocked(v, n, n, n, a.data(), b.data(), c.data());
    }
    const std::chrono::duration<double> dt = Clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

template <typename T>
void gemm_sweep_dtype(const char* dtype, const std::vector<index_t>& counts,
                      std::vector<GemmSweepRow>& rows) {
  const index_t sizes[] = {256, 512, 1024};
  const std::pair<tensor::gemm::Variant, const char*> variants[] = {
      {tensor::gemm::Variant::NN, "nn"},
      {tensor::gemm::Variant::TN, "tn"},
      {tensor::gemm::Variant::NT, "nt"},
  };
  common::Rng rng(4242);
  for (const auto& [variant, vname] : variants) {
    for (const index_t n : sizes) {
      std::vector<T> a(n * n), b(n * n), c(n * n);
      for (auto& v : a) v = static_cast<T>(rng.uniform(-1.0, 1.0));
      for (auto& v : b) v = static_cast<T>(rng.uniform(-1.0, 1.0));
      const int reps = n >= 1024 ? 2 : 3;
      // Baselines, both single-threaded: the same-dtype naive oracle and
      // the scalar-f64 blocked kernel (the pre-SIMD reference everything is
      // normalized against; re-timed per dtype loop, cheap next to naive).
      runtime::set_num_threads(1);
      const double naive_s = time_gemm_best(variant, n, a, b, c, reps, true);
      tensor::gemm::set_isa(tensor::gemm::Isa::kScalar);
      double scalar_f64_s;
      {
        std::vector<real> a64(a.begin(), a.end()), b64(b.begin(), b.end());
        std::vector<real> c64(n * n);
        scalar_f64_s = time_gemm_best(variant, n, a64, b64, c64, reps, false);
      }
      for (const auto isa : tensor::gemm::available_isas()) {
        tensor::gemm::set_isa(isa);
        for (const index_t threads : counts) {
          runtime::set_num_threads(threads);
          const double blocked_s =
              time_gemm_best(variant, n, a, b, c, reps, false);
          rows.push_back({dtype, tensor::gemm::isa_name(isa), vname, n,
                          threads, naive_s, blocked_s, scalar_f64_s});
          const double flops = 2.0 * static_cast<double>(n) * n * n;
          std::printf(
              "  %-3s %-6s %-3s %6zu %8zu %12.4f %12.4f %8.2fx %8.2fx %8.1f\n",
              dtype, tensor::gemm::isa_name(isa), vname,
              static_cast<std::size_t>(n), static_cast<std::size_t>(threads),
              naive_s, blocked_s, naive_s / blocked_s,
              scalar_f64_s / blocked_s, flops / blocked_s * 1e-9);
        }
      }
    }
  }
}

void run_gemm_sweep(index_t top) {
  std::vector<index_t> counts{1};
  const index_t threaded = top > 1 ? top : 8;
  if (threaded > 1) counts.push_back(threaded);

  const tensor::gemm::Isa default_isa = tensor::gemm::active_isa();
  std::vector<GemmSweepRow> rows;
  std::printf(
      "blocked GEMM sweep: dtype x ISA x threads (square n^3 multiplies)\n");
  std::printf("  %-3s %-6s %-3s %6s %8s %12s %12s %9s %9s %8s\n", "dt", "isa",
              "var", "n", "threads", "naive_s", "blocked_s", "vs_nai",
              "vs_s64", "GF/s");
  gemm_sweep_dtype<real>("f64", counts, rows);
  gemm_sweep_dtype<real32>("f32", counts, rows);
  tensor::gemm::set_isa(default_isa);
  runtime::set_num_threads(0);

  const std::string path = bench::ensure_output_dir() + "/BENCH_gemm.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"gemm_dtype_isa_threads\",\n");
  std::fprintf(f, "  \"host\": {\"default_isa\": \"%s\", \"isas\": [",
               tensor::gemm::isa_name(default_isa));
  bool first = true;
  for (const auto isa : tensor::gemm::available_isas()) {
    std::fprintf(f, "%s\"%s\"", first ? "" : ", ",
                 tensor::gemm::isa_name(isa));
    first = false;
  }
  std::fprintf(f, "]},\n  \"rows\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GemmSweepRow& r = rows[i];
    const double flops = 2.0 * static_cast<double>(r.n) * r.n * r.n;
    std::fprintf(
        f,
        "%s\n    {\"dtype\": \"%s\", \"isa\": \"%s\", \"variant\": \"%s\", "
        "\"n\": %zu, \"threads\": %zu, "
        "\"naive_seconds\": %.6f, \"blocked_seconds\": %.6f, "
        "\"speedup_vs_naive\": %.3f, \"speedup_vs_scalar_f64\": %.3f, "
        "\"blocked_gflops\": %.2f}",
        i == 0 ? "" : ",", r.dtype, r.isa.c_str(), r.variant,
        static_cast<std::size_t>(r.n), static_cast<std::size_t>(r.threads),
        r.naive_s, r.blocked_s, r.naive_s / r.blocked_s,
        r.scalar_f64_s / r.blocked_s, flops / r.blocked_s * 1e-9);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const index_t threads = take_threads_flag(argc, argv);
  const std::string metrics_path = take_metrics_flag(argc, argv);
  // The sweep workload is fixed, so its counters (kernel flops/calls) are
  // identical at any --threads value; record it with kernel metrics forced
  // on and dump BEFORE the google-benchmark suite, whose adaptive iteration
  // counts would make the totals run-dependent.
  obs::set_kernel_metrics(true);
  run_thread_sweeps(threads);
  if (!metrics_path.empty()) {
    obs::dump(metrics_path);
    std::printf("[metrics] %s\n", metrics_path.c_str());
  }
  obs::set_kernel_metrics(false);
  run_gemm_sweep(threads);
  runtime::set_num_threads(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
