// Multi-process socket serving load bench.
//
// The parent process serves a federation over a loopback TCP socket
// (net::FlServer); each client is a real forked process driving fl::Client
// training through net::FlClient with a FaultPlan-derived delivery schedule:
// dropped connections mid-frame, stragglers sleeping past the cutover,
// corrupted payload bytes, duplicate delivery, numeric poison. The bench
// reports rounds/s, p50/p99 dispatch→cutover round latency, and the
// validation/net reject-counter deltas as one JSON document — the
// operational fingerprint a deployment would alert on.
//
//   $ ./net_rounds --clients 6 --rounds 15 --dropout 0.1 --corrupt 0.05
//
// Server-kill fault mode (DESIGN.md §5j): with --server-kill-every N > 0 the
// server itself runs in a forked child with a checkpoint directory, the
// parent SIGKILLs it after every N additional committed rounds and re-forks
// it with resume_from(), and the JSON gains the recovery-latency percentiles
// (restart fork → next committed round) plus the fleet's aggregated
// net.reconnect.* counter deltas:
//
//   $ ./net_rounds --clients 6 --rounds 15 --server-kill-every 5
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "ckpt/manager.h"
#include "common/error.h"
#include "data/synthetic.h"
#include "fl/fault.h"
#include "fl/preprocessor.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;

struct LoadConfig {
  index_t n_clients = 6;
  std::uint64_t rounds = 15;
  fl::FaultConfig faults;
  real quorum = 0.5;
  std::uint64_t timeout_sec = 120;
  /// > 0: run the server in a forked child and SIGKILL it after every this
  /// many additional committed rounds, restarting from its checkpoints.
  std::uint64_t server_kill_every = 0;
};

/// tmp + rename so a concurrent reader never observes a partial file.
void write_file_whole(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
  }
  std::filesystem::rename(tmp, path);
}

std::string read_file_whole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

fl::ModelFactory make_factory(const data::SynthDataset& dataset) {
  const index_t classes = dataset.train.num_classes();
  return [classes] {
    const nn::ImageSpec spec{3, 12, 12};
    common::Rng init_rng(7);
    return nn::make_mini_convnet(spec, classes, init_rng, 4);
  };
}

/// Child process body: one client identity, FaultPlan-driven delivery.
/// Communicates with the parent only through the socket and its exit code
/// (0 = clean goodbye, 2 = retry budget exhausted, 1 = anything else).
int run_child(const data::SynthDataset& dataset, const LoadConfig& cfg,
              std::uint16_t port, index_t id, const std::string& stats_path) {
  try {
    const auto shards = dataset.train.shard(cfg.n_clients);
    fl::Client core(id, shards[id], make_factory(dataset), /*batch_size=*/8,
                    std::make_shared<fl::IdentityPreprocessor>(),
                    common::Rng(1000 + id));
    net::FlClientConfig client_cfg;
    client_cfg.client_id = id;
    // The budget bounds consecutive REFUSED attempts: once the server stops
    // serving, a client that was mid-reconnect (after a drop/truncate fault)
    // burns through this in a few seconds and exits as "orphaned" instead of
    // spinning on a closed port forever.
    client_cfg.max_attempts = 50;
    client_cfg.backoff_ms = 5;
    // A server that goes silent mid-connection should cost seconds, not the
    // default 30 s, before the client gives up on the socket.
    client_cfg.io_timeout_ms = 2000;
    if (cfg.server_kill_every > 0) {
      // The fleet rides out server-kill windows: a bigger budget (the dead
      // window costs many refused attempts) and seeded jitter so the restart
      // is not greeted by a synchronized thundering herd.
      client_cfg.max_attempts = 400;
      client_cfg.jitter_seed = cfg.faults.seed;
    }
    net::FlClient client(core, client_cfg);

    // Server-kill mode measures the recovery machinery in isolation: the
    // SIGKILL/restart cycle IS the fault. Mixing in the random client plan
    // would muddy the recovery percentiles — and a dropout-afflicted client
    // can fall behind the server's round count for good, leaving it spinning
    // against the closed port long after the schedule completes.
    const fl::FaultPlan plan(cfg.faults);
    if (cfg.server_kill_every == 0)
      client.set_fault_hook(
        [&plan, id](std::uint64_t round, fl::ClientUpdateMessage& update) {
          // The protocol round doubles as the plan ticket: decisions stay a
          // pure function of (seed, round, client), reproducible per child.
          const fl::ClientFault fault = plan.decide(round, /*attempt=*/0, id);
          net::UpdateFault out;
          switch (fault.kind) {
            case fl::FaultKind::kNone:
              break;
            case fl::FaultKind::kDropout:
              out.action = net::UpdateFault::Action::kDrop;
              break;
            case fl::FaultKind::kStraggler:
              // Ticks become milliseconds of real delay, capped well under
              // the server's round deadline so stragglers cost latency, not
              // participation.
              ::poll(nullptr, 0,
                     static_cast<int>(std::min<std::uint64_t>(
                         fault.delay_ticks, 300)));
              break;
            case fl::FaultKind::kCorrupt:
              if (fault.corruption == fl::CorruptionKind::kTruncate) {
                out.action = net::UpdateFault::Action::kPartialClose;
              } else if (fault.corruption == fl::CorruptionKind::kDuplicate) {
                out.action = net::UpdateFault::Action::kDuplicate;
              } else {
                // Bit flips / wrong round damage the payload in place; the
                // server's validation pipeline must reject it.
                plan.apply(update, fault, round, 0, id);
              }
              break;
            case fl::FaultKind::kPoison:
            case fl::FaultKind::kByzantine:
              plan.apply(update, fault, round, 0, id);
              break;
          }
          return out;
        });
    int code = 0;
    try {
      client.run("127.0.0.1", port);
    } catch (const net::NetError& e) {
      if (e.reason() != net::NetError::Reason::kRetryExhausted) throw;
      code = 2;  // orphaned (see below); still report reconnect stats
    }
    if (!stats_path.empty()) {
      // The fleet's reconnect fingerprint crosses the process boundary as a
      // tiny key/value file; the parent aggregates them into the JSON.
      std::ostringstream stats;
      stats << "retries " << client.retries() << "\n"
            << "sessions_resumed " << client.sessions_resumed() << "\n"
            << "cached_resends " << client.cached_resends() << "\n"
            << "backoff_ms_total " << client.backoff_ms_total() << "\n"
            << "rounds_completed " << client.rounds_completed() << "\n";
      write_file_whole(stats_path, stats.str());
    }
    return code;
  } catch (const net::NetError& e) {
    // Exit 2 = orphaned: the server finished while this client was
    // disconnected (a fault put it mid-reconnect at goodbye time). A normal
    // outcome under dropout, reported separately from real failures.
    if (e.reason() == net::NetError::Reason::kRetryExhausted) return 2;
    std::cerr << "[child " << id << "] " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "[child " << id << "] " << e.what() << "\n";
    return 1;
  } catch (...) {
    return 1;
  }
}

/// Builds the federation core the server (in-process or forked) drives.
std::unique_ptr<fl::Server> make_server_core(const data::SynthDataset& dataset) {
  auto core = std::make_unique<fl::Server>(make_factory(dataset)(),
                                           /*learning_rate=*/0.1);
  // This federation has no secure aggregation, so the norm screen is safe
  // to arm — it is what catches the norm-scaled poison faults.
  fl::ValidationConfig validation;
  validation.max_grad_norm = 1e4;
  core->set_validation(validation);
  return core;
}

net::FlServerConfig make_server_config(const LoadConfig& cfg) {
  net::FlServerConfig server_cfg;
  server_cfg.cohort_size = cfg.n_clients;
  server_cfg.rounds = cfg.rounds;
  server_cfg.quorum_fraction = cfg.quorum;
  server_cfg.round_timeout_ms = 2000;
  server_cfg.retry_after_ms = 10;
  return server_cfg;
}

/// Server child body for the kill mode: restore from the run directory's
/// checkpoints (first launch finds none), listen on the advertised port
/// (first launch binds ephemeral and advertises it), publish the committed
/// count to the status file at every round boundary, and — if never killed —
/// dump the final counter fingerprint for the parent's JSON.
int run_server_child(const data::SynthDataset& dataset, const LoadConfig& cfg,
                     const std::string& run_dir) {
  try {
    ckpt::CheckpointManager manager(run_dir + "/ckpt", /*keep=*/4);
    auto core = make_server_core(dataset);
    net::FlServerConfig server_cfg = make_server_config(cfg);
    server_cfg.checkpoint = &manager;
    server_cfg.checkpoint_every_accepts = 1;
    net::FlServer server(*core, server_cfg);
    if (!manager.generations().empty()) (void)server.resume_from();

    const std::string port_path = run_dir + "/port";
    const std::string port_text = read_file_whole(port_path);
    const std::uint16_t advertised =
        port_text.empty()
            ? 0
            : static_cast<std::uint16_t>(std::stoul(port_text));
    server.listen("127.0.0.1", advertised);
    if (advertised == 0) {
      write_file_whole(port_path, std::to_string(server.port()));
    }

    const std::string status_path = run_dir + "/status";
    server.set_event_hook([&server, &status_path](net::FlServer::Event e) {
      if (e == net::FlServer::Event::kPreResultSend) {
        write_file_whole(status_path, std::to_string(server.rounds_served()));
      }
    });
    server.serve();

    std::ostringstream counters;
    for (const auto& [name, value] : obs::Registry::global().counters()) {
      if (value == 0) continue;
      if (name.rfind("fl.validate.", 0) == 0 || name.rfind("fl.rounds", 0) == 0 ||
          name.rfind("net.", 0) == 0) {
        counters << name << " " << value << "\n";
      }
    }
    write_file_whole(run_dir + "/server.counters", counters.str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "[server] " << e.what() << "\n";
    return 1;
  }
}

pid_t fork_server(const data::SynthDataset& dataset, const LoadConfig& cfg,
                  const std::string& run_dir) {
  const pid_t pid = ::fork();
  OASIS_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    for (int fd = 3; fd < 256; ++fd) ::close(fd);
    ::_exit(run_server_child(dataset, cfg, run_dir));
  }
  return pid;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string json_escape_key(const std::string& s) { return s; }  // [a-z.]* only

}  // namespace

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("net_rounds",
                        "Socket serving throughput under a multi-process "
                        "fault-injecting client fleet");
  cli.add_flag("clients", "client processes to fork", "6");
  cli.add_flag("rounds", "committed rounds to serve", "15");
  cli.add_flag("dropout", "per-round client dropout probability", "0.1");
  cli.add_flag("straggle", "per-round straggler probability", "0.1");
  cli.add_flag("corrupt", "per-round payload corruption probability", "0.05");
  cli.add_flag("poison", "per-round numeric poison probability", "0.05");
  cli.add_flag("quorum", "valid-update quorum fraction", "0.5");
  cli.add_flag("fault-seed", "fault plan seed", "677200");
  cli.add_flag("timeout-sec", "wall-clock bound on the whole run", "120");
  cli.add_flag("server-kill-every",
               "SIGKILL + checkpoint-restart the (forked) server after every "
               "N committed rounds; 0 = never",
               "0");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);

  LoadConfig cfg;
  cfg.n_clients = static_cast<index_t>(cli.get_uint("clients"));
  cfg.rounds = cli.get_uint("rounds");
  cfg.faults.dropout_prob = cli.get_real("dropout");
  cfg.faults.straggler_prob = cli.get_real("straggle");
  cfg.faults.corrupt_prob = cli.get_real("corrupt");
  cfg.faults.poison_prob = cli.get_real("poison");
  cfg.faults.seed = cli.get_uint("fault-seed");
  cfg.quorum = cli.get_real("quorum");
  cfg.timeout_sec = cli.get_uint("timeout-sec");
  cfg.server_kill_every = cli.get_uint("server-kill-every");

  print_banner("net_rounds",
               "Forked client fleet over loopback TCP with injected "
               "delivery faults");

  // Fork discipline (see tests/crash_test.cpp): no worker threads may exist
  // when the children are cloned.
  runtime::set_num_threads(1);

  data::SynthConfig synth = data::synth_imagenet_config();
  synth.height = synth.width = 12;
  synth.train_per_class = 8;
  synth.test_per_class = 2;
  const data::SynthDataset dataset = data::generate(synth);

  // Cross-process scratch: client reconnect-stat files, and — in kill mode —
  // the checkpoint directory, port advertisement, and round-progress status.
  namespace fs = std::filesystem;
  const std::string run_dir =
      (fs::temp_directory_path() /
       ("oasis_net_rounds_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(run_dir);
  fs::create_directories(run_dir);
  const auto stats_path = [&run_dir](index_t id) {
    return run_dir + "/client-" + std::to_string(id) + ".stats";
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::seconds(static_cast<long>(cfg.timeout_sec));
  const auto now_ms_since = [](auto start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  std::vector<pid_t> children;
  const auto fork_clients = [&](std::uint16_t port) {
    for (index_t i = 0; i < cfg.n_clients; ++i) {
      const pid_t pid = ::fork();
      OASIS_CHECK_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        // Drop every inherited descriptor — above all any LISTENING socket.
        // A child that kept one would hold the port open after the server
        // stops serving, so orphaned siblings would "successfully" connect
        // to a backlog nobody will ever accept and hang out their full io
        // timeout instead of seeing connection-refused.
        for (int fd = 3; fd < 256; ++fd) ::close(fd);
        ::_exit(run_child(dataset, cfg, port, i, stats_path(i)));
      }
      children.push_back(pid);
    }
  };

  bool timed_out = false;
  std::uint64_t rounds_committed = 0;
  std::vector<double> latencies;                      // in-process mode
  std::vector<double> recovery_ms;                    // kill mode
  index_t server_kills = 0;
  index_t server_failures = 0;
  std::vector<std::pair<std::string, std::uint64_t>> fingerprint;

  if (cfg.server_kill_every == 0) {
    // In-process server: the original load-bench flow.
    auto core = make_server_core(dataset);
    net::FlServer server(*core, make_server_config(cfg));
    server.listen("127.0.0.1", 0);
    fork_clients(server.port());
    while (server.step(/*timeout_ms=*/20)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        timed_out = true;
        break;
      }
    }
    rounds_committed = server.rounds_served();
    latencies = server.round_latencies_ms();
    for (const auto& [name, value] : obs::Registry::global().counters()) {
      const bool wanted = name.rfind("fl.validate.", 0) == 0 ||
                          name.rfind("fl.rounds", 0) == 0 ||
                          name.rfind("net.", 0) == 0;
      if (wanted && value != 0) fingerprint.emplace_back(name, value);
    }
  } else {
    // Server-kill mode: the server lives in a forked child so SIGKILL means
    // SIGKILL — no destructors, no flushes — and every restart proves the
    // checkpoint path end to end. Recovery latency = restart fork → the next
    // committed round reaching the status file.
    pid_t server_pid = fork_server(dataset, cfg, run_dir);
    auto forked_at = std::chrono::steady_clock::now();

    std::uint16_t port = 0;
    while (port == 0 && std::chrono::steady_clock::now() < deadline) {
      const std::string text = read_file_whole(run_dir + "/port");
      if (!text.empty()) {
        port = static_cast<std::uint16_t>(std::stoul(text));
        break;
      }
      ::poll(nullptr, 0, 5);
    }
    OASIS_CHECK_MSG(port != 0, "server child never advertised a port");
    fork_clients(port);

    std::uint64_t last_status = 0;
    std::uint64_t last_kill_status = 0;
    bool awaiting_recovery = false;
    bool server_done = false;
    while (std::chrono::steady_clock::now() < deadline) {
      int wstatus = 0;
      const pid_t reaped = ::waitpid(server_pid, &wstatus, WNOHANG);
      if (reaped == server_pid) {
        // Clean exit = schedule complete. Anything else is a real server
        // bug (the kills below are reaped synchronously, never seen here).
        if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
          ++server_failures;
        }
        server_done = true;
        break;
      }
      const std::string text = read_file_whole(run_dir + "/status");
      const std::uint64_t status = text.empty() ? 0 : std::stoull(text);
      if (status > last_status) {
        if (awaiting_recovery) {
          recovery_ms.push_back(now_ms_since(forked_at));
          awaiting_recovery = false;
        }
        last_status = status;
        if (status < cfg.rounds &&
            status - last_kill_status >= cfg.server_kill_every) {
          ::kill(server_pid, SIGKILL);
          ::waitpid(server_pid, &wstatus, 0);
          ++server_kills;
          last_kill_status = status;
          server_pid = fork_server(dataset, cfg, run_dir);
          forked_at = std::chrono::steady_clock::now();
          awaiting_recovery = true;
        }
      }
      ::poll(nullptr, 0, 5);
    }
    if (!server_done) {
      timed_out = true;
      ::kill(server_pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(server_pid, &wstatus, 0);
    }
    {
      const std::string text = read_file_whole(run_dir + "/status");
      rounds_committed = text.empty() ? 0 : std::stoull(text);
    }
    // The final (uninterrupted) server child dumped its counters; restarts
    // in between lost theirs — the fingerprint covers the last life only.
    std::istringstream counters(read_file_whole(run_dir + "/server.counters"));
    std::string name;
    std::uint64_t value = 0;
    while (counters >> name >> value) fingerprint.emplace_back(name, value);
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (timed_out) {
    // The fleet is only alive because the server stopped serving it; don't
    // let waitpid turn a bounded bench into an unbounded one.
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
  }
  index_t child_failures = 0;
  index_t child_orphaned = 0;
  // Even a clean completion can leave stragglers: a client that was
  // mid-backoff when the server sent its last result spins on the closed
  // port until its attempt budget runs dry — give the fleet a bounded grace
  // to drain naturally, then reap hard and count the kills as orphaned.
  std::vector<pid_t> pending = children;
  const auto reap_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool force_killed = false;
  while (!pending.empty()) {
    std::vector<pid_t> still_running;
    for (const pid_t pid : pending) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == 0) {
        still_running.push_back(pid);
        continue;
      }
      if (force_killed && WIFSIGNALED(status)) {
        ++child_orphaned;
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
        ++child_orphaned;
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        ++child_failures;
      }
    }
    pending.swap(still_running);
    if (pending.empty()) break;
    if (!force_killed && std::chrono::steady_clock::now() >= reap_deadline) {
      for (const pid_t pid : pending) ::kill(pid, SIGKILL);
      force_killed = true;
    }
    ::poll(nullptr, 0, 10);
  }

  // Aggregate the fleet's reconnect fingerprint (net.reconnect.* deltas,
  // summed across the client processes' stat files).
  std::uint64_t fleet_retries = 0, fleet_resumed = 0, fleet_resends = 0,
                fleet_backoff_ms = 0;
  for (index_t i = 0; i < cfg.n_clients; ++i) {
    std::istringstream stats(read_file_whole(stats_path(i)));
    std::string key;
    std::uint64_t value = 0;
    while (stats >> key >> value) {
      if (key == "retries") fleet_retries += value;
      if (key == "sessions_resumed") fleet_resumed += value;
      if (key == "cached_resends") fleet_resends += value;
      if (key == "backoff_ms_total") fleet_backoff_ms += value;
    }
  }

  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double rps =
      seconds > 0.0 ? static_cast<double>(rounds_committed) / seconds : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double rec_p50 = percentile(recovery_ms, 0.50);
  const double rec_p99 = percentile(recovery_ms, 0.99);

  obs::gauge("bench.net_rounds.rounds_per_sec").set(rps);
  obs::gauge("bench.net_rounds.p50_ms").set(p50);
  obs::gauge("bench.net_rounds.p99_ms").set(p99);
  if (cfg.server_kill_every > 0) {
    obs::gauge("bench.net_rounds.recovery_p50_ms").set(rec_p50);
    obs::gauge("bench.net_rounds.recovery_p99_ms").set(rec_p99);
  }

  // One JSON document on stdout: throughput, tail latency, the fleet's
  // reconnect totals, and every fl.validate.* / net.* counter (the reject
  // fingerprint of the fault mix).
  std::ostringstream json;
  json << "{\n  \"schema\": \"oasis.net_rounds/v1\",\n"
       << "  \"clients\": " << cfg.n_clients << ",\n"
       << "  \"rounds_requested\": " << cfg.rounds << ",\n"
       << "  \"rounds_committed\": " << rounds_committed << ",\n"
       << "  \"timed_out\": " << (timed_out ? "true" : "false") << ",\n"
       << "  \"child_failures\": " << child_failures << ",\n"
       << "  \"child_orphaned\": " << child_orphaned << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"rounds_per_sec\": " << rps << ",\n"
       << "  \"p50_round_ms\": " << p50 << ",\n"
       << "  \"p99_round_ms\": " << p99 << ",\n";
  if (cfg.server_kill_every > 0) {
    json << "  \"server_kill_every\": " << cfg.server_kill_every << ",\n"
         << "  \"server_kills\": " << server_kills << ",\n"
         << "  \"server_failures\": " << server_failures << ",\n"
         << "  \"recovery_p50_ms\": " << rec_p50 << ",\n"
         << "  \"recovery_p99_ms\": " << rec_p99 << ",\n";
  }
  json << "  \"reconnect\": {\n"
       << "    \"attempts\": " << fleet_retries << ",\n"
       << "    \"sessions_resumed\": " << fleet_resumed << ",\n"
       << "    \"cached_resends\": " << fleet_resends << ",\n"
       << "    \"backoff_ms_total\": " << fleet_backoff_ms << "\n  },\n"
       << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : fingerprint) {
    json << (first ? "" : ",") << "\n    \"" << json_escape_key(name)
         << "\": " << value;
    first = false;
  }
  json << "\n  }\n}";
  std::cout << json.str() << "\n";

  fs::remove_all(run_dir);
  return timed_out ? 1 : 0;
}
