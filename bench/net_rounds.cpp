// Multi-process socket serving load bench.
//
// The parent process serves a federation over a loopback TCP socket
// (net::FlServer); each client is a real forked process driving fl::Client
// training through net::FlClient with a FaultPlan-derived delivery schedule:
// dropped connections mid-frame, stragglers sleeping past the cutover,
// corrupted payload bytes, duplicate delivery, numeric poison. The bench
// reports rounds/s, p50/p99 dispatch→cutover round latency, and the
// validation/net reject-counter deltas as one JSON document — the
// operational fingerprint a deployment would alert on.
//
//   $ ./net_rounds --clients 6 --rounds 15 --dropout 0.1 --corrupt 0.05
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "data/synthetic.h"
#include "fl/fault.h"
#include "fl/preprocessor.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;

struct LoadConfig {
  index_t n_clients = 6;
  std::uint64_t rounds = 15;
  fl::FaultConfig faults;
  real quorum = 0.5;
  std::uint64_t timeout_sec = 120;
};

fl::ModelFactory make_factory(const data::SynthDataset& dataset) {
  const index_t classes = dataset.train.num_classes();
  return [classes] {
    const nn::ImageSpec spec{3, 12, 12};
    common::Rng init_rng(7);
    return nn::make_mini_convnet(spec, classes, init_rng, 4);
  };
}

/// Child process body: one client identity, FaultPlan-driven delivery.
/// Communicates with the parent only through the socket and its exit code
/// (0 = clean goodbye, 2 = retry budget exhausted, 1 = anything else).
int run_child(const data::SynthDataset& dataset, const LoadConfig& cfg,
              std::uint16_t port, index_t id) {
  try {
    const auto shards = dataset.train.shard(cfg.n_clients);
    fl::Client core(id, shards[id], make_factory(dataset), /*batch_size=*/8,
                    std::make_shared<fl::IdentityPreprocessor>(),
                    common::Rng(1000 + id));
    net::FlClientConfig client_cfg;
    client_cfg.client_id = id;
    // The budget bounds consecutive REFUSED attempts: once the server stops
    // serving, a client that was mid-reconnect (after a drop/truncate fault)
    // burns through this in a few seconds and exits as "orphaned" instead of
    // spinning on a closed port forever.
    client_cfg.max_attempts = 50;
    client_cfg.backoff_ms = 5;
    // A server that goes silent mid-connection should cost seconds, not the
    // default 30 s, before the client gives up on the socket.
    client_cfg.io_timeout_ms = 2000;
    net::FlClient client(core, client_cfg);

    const fl::FaultPlan plan(cfg.faults);
    client.set_fault_hook(
        [&plan, id](std::uint64_t round, fl::ClientUpdateMessage& update) {
          // The protocol round doubles as the plan ticket: decisions stay a
          // pure function of (seed, round, client), reproducible per child.
          const fl::ClientFault fault = plan.decide(round, /*attempt=*/0, id);
          net::UpdateFault out;
          switch (fault.kind) {
            case fl::FaultKind::kNone:
              break;
            case fl::FaultKind::kDropout:
              out.action = net::UpdateFault::Action::kDrop;
              break;
            case fl::FaultKind::kStraggler:
              // Ticks become milliseconds of real delay, capped well under
              // the server's round deadline so stragglers cost latency, not
              // participation.
              ::poll(nullptr, 0,
                     static_cast<int>(std::min<std::uint64_t>(
                         fault.delay_ticks, 300)));
              break;
            case fl::FaultKind::kCorrupt:
              if (fault.corruption == fl::CorruptionKind::kTruncate) {
                out.action = net::UpdateFault::Action::kPartialClose;
              } else if (fault.corruption == fl::CorruptionKind::kDuplicate) {
                out.action = net::UpdateFault::Action::kDuplicate;
              } else {
                // Bit flips / wrong round damage the payload in place; the
                // server's validation pipeline must reject it.
                plan.apply(update, fault, round, 0, id);
              }
              break;
            case fl::FaultKind::kPoison:
              plan.apply(update, fault, round, 0, id);
              break;
          }
          return out;
        });
    client.run("127.0.0.1", port);
    return 0;
  } catch (const net::NetError& e) {
    // Exit 2 = orphaned: the server finished while this client was
    // disconnected (a fault put it mid-reconnect at goodbye time). A normal
    // outcome under dropout, reported separately from real failures.
    if (e.reason() == net::NetError::Reason::kRetryExhausted) return 2;
    std::cerr << "[child " << id << "] " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "[child " << id << "] " << e.what() << "\n";
    return 1;
  } catch (...) {
    return 1;
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string json_escape_key(const std::string& s) { return s; }  // [a-z.]* only

}  // namespace

int main(int argc, char** argv) {
  using namespace oasis;
  using namespace oasis::bench;

  common::CliParser cli("net_rounds",
                        "Socket serving throughput under a multi-process "
                        "fault-injecting client fleet");
  cli.add_flag("clients", "client processes to fork", "6");
  cli.add_flag("rounds", "committed rounds to serve", "15");
  cli.add_flag("dropout", "per-round client dropout probability", "0.1");
  cli.add_flag("straggle", "per-round straggler probability", "0.1");
  cli.add_flag("corrupt", "per-round payload corruption probability", "0.05");
  cli.add_flag("poison", "per-round numeric poison probability", "0.05");
  cli.add_flag("quorum", "valid-update quorum fraction", "0.5");
  cli.add_flag("fault-seed", "fault plan seed", "677200");
  cli.add_flag("timeout-sec", "wall-clock bound on the whole run", "120");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);

  LoadConfig cfg;
  cfg.n_clients = static_cast<index_t>(cli.get_uint("clients"));
  cfg.rounds = cli.get_uint("rounds");
  cfg.faults.dropout_prob = cli.get_real("dropout");
  cfg.faults.straggler_prob = cli.get_real("straggle");
  cfg.faults.corrupt_prob = cli.get_real("corrupt");
  cfg.faults.poison_prob = cli.get_real("poison");
  cfg.faults.seed = cli.get_uint("fault-seed");
  cfg.quorum = cli.get_real("quorum");
  cfg.timeout_sec = cli.get_uint("timeout-sec");

  print_banner("net_rounds",
               "Forked client fleet over loopback TCP with injected "
               "delivery faults");

  // Fork discipline (see tests/crash_test.cpp): no worker threads may exist
  // when the children are cloned.
  runtime::set_num_threads(1);

  data::SynthConfig synth = data::synth_imagenet_config();
  synth.height = synth.width = 12;
  synth.train_per_class = 8;
  synth.test_per_class = 2;
  const data::SynthDataset dataset = data::generate(synth);

  fl::Server core(make_factory(dataset)(), /*learning_rate=*/0.1);
  {
    // This federation has no secure aggregation, so the norm screen is safe
    // to arm — it is what catches the norm-scaled poison faults.
    fl::ValidationConfig validation;
    validation.max_grad_norm = 1e4;
    core.set_validation(validation);
  }

  net::FlServerConfig server_cfg;
  server_cfg.cohort_size = cfg.n_clients;
  server_cfg.rounds = cfg.rounds;
  server_cfg.quorum_fraction = cfg.quorum;
  server_cfg.round_timeout_ms = 2000;
  server_cfg.retry_after_ms = 10;
  net::FlServer server(core, server_cfg);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::vector<pid_t> children;
  for (index_t i = 0; i < cfg.n_clients; ++i) {
    const pid_t pid = ::fork();
    OASIS_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // Drop every inherited descriptor — above all the parent's LISTENING
      // socket. A child that kept it would hold the port open after the
      // parent stops serving, so orphaned siblings would "successfully"
      // connect to a backlog nobody will ever accept and hang out their full
      // io timeout instead of seeing connection-refused.
      for (int fd = 3; fd < 256; ++fd) ::close(fd);
      ::_exit(run_child(dataset, cfg, port, i));
    }
    children.push_back(pid);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::seconds(static_cast<long>(cfg.timeout_sec));
  bool timed_out = false;
  while (server.step(/*timeout_ms=*/20)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (timed_out) {
    // The fleet is only alive because the server stopped serving it; don't
    // let waitpid turn a bounded bench into an unbounded one.
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
  }
  index_t child_failures = 0;
  index_t child_orphaned = 0;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
      ++child_orphaned;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++child_failures;
    }
  }

  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto& latencies = server.round_latencies_ms();
  const double rps =
      seconds > 0.0 ? static_cast<double>(server.rounds_served()) / seconds
                    : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  obs::gauge("bench.net_rounds.rounds_per_sec").set(rps);
  obs::gauge("bench.net_rounds.p50_ms").set(p50);
  obs::gauge("bench.net_rounds.p99_ms").set(p99);

  // One JSON document on stdout: throughput, tail latency, and every
  // fl.validate.* / net.* counter (the reject fingerprint of the fault mix).
  std::ostringstream json;
  json << "{\n  \"schema\": \"oasis.net_rounds/v1\",\n"
       << "  \"clients\": " << cfg.n_clients << ",\n"
       << "  \"rounds_requested\": " << cfg.rounds << ",\n"
       << "  \"rounds_committed\": " << server.rounds_served() << ",\n"
       << "  \"timed_out\": " << (timed_out ? "true" : "false") << ",\n"
       << "  \"child_failures\": " << child_failures << ",\n"
       << "  \"child_orphaned\": " << child_orphaned << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"rounds_per_sec\": " << rps << ",\n"
       << "  \"p50_round_ms\": " << p50 << ",\n"
       << "  \"p99_round_ms\": " << p99 << ",\n"
       << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : obs::Registry::global().counters()) {
    const bool wanted = name.rfind("fl.validate.", 0) == 0 ||
                        name.rfind("fl.rounds", 0) == 0 ||
                        name.rfind("net.", 0) == 0;
    if (!wanted || value == 0) continue;
    json << (first ? "" : ",") << "\n    \"" << json_escape_key(name)
         << "\": " << value;
    first = false;
  }
  json << "\n  }\n}";
  std::cout << json.str() << "\n";

  return timed_out ? 1 : 0;
}
