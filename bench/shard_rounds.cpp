// Throughput and memory of the sharded streaming round engine.
//
// For each (population, cohort, shard size) configuration the bench runs
// full federated rounds through fl::ShardedSimulation — virtual clients
// materialized lazily per shard, folded into one streaming accumulator —
// and reports clients/s plus the peak RSS of the run. Each configuration
// executes in a FORKED child so its peak RSS is its own: the parent never
// builds an engine, and a child's high-water mark cannot leak into the next
// row's measurement.
//
// The rows tell the scale story: across populations {10k, 100k, 1M (--full)}
// at a fixed shard size, peak RSS stays essentially flat — memory is
// O(shard), not O(population) — while the shard-size sweep at a fixed
// population shows RSS tracking the shard size. Results land in
// bench_out/shard_rounds.json.
//
//   $ ./shard_rounds             # quick: 10k + 100k populations
//   $ ./shard_rounds --full      # adds the 10^6-client round
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "fl/shard.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;

struct BenchConfig {
  std::string label;
  index_t population = 0;
  index_t cohort = 0;  // 0 = whole population
  index_t shard_size = 0;
};

struct BenchResult {
  double wall_s = 0.0;
  double clients_per_s = 0.0;
  std::uint64_t folded = 0;
  long max_rss_kb = 0;
  int ok = 0;
};

/// The per-client workload: tiny per-client synthetic datasets and a linear
/// model, keeping one client's round in the tens of microseconds so the
/// 10^6-client row finishes on one core. The engine's determinism contract
/// is size-independent — the shard tests pin it at richer configurations.
fl::VirtualPopulationConfig population_config(index_t population) {
  fl::VirtualPopulationConfig cfg;
  cfg.num_clients = population;
  cfg.seed = 11;
  cfg.num_classes = 10;
  cfg.height = 8;
  cfg.width = 8;
  cfg.examples_per_client = 4;
  cfg.batch_size = 2;
  const nn::ImageSpec spec{3, cfg.height, cfg.width};
  const index_t classes = cfg.num_classes;
  cfg.factory = [spec, classes] {
    common::Rng init(7);  // fresh per call — the factory must be pure
    return nn::make_linear_model(spec, classes, init);
  };
  return cfg;
}

BenchResult run_in_process(const BenchConfig& c, index_t rounds) {
  fl::VirtualPopulationConfig pop_cfg = population_config(c.population);
  fl::ShardedConfig shard_cfg;
  shard_cfg.cohort_size = c.cohort;
  shard_cfg.shard_size = c.shard_size;
  shard_cfg.seed = 3;
  shard_cfg.sampler = fl::CohortSampler::kHashThreshold;
  auto server =
      std::make_unique<fl::Server>(pop_cfg.factory(), /*learning_rate=*/0.15);
  fl::ShardedSimulation engine(std::move(server),
                               fl::VirtualPopulation(pop_cfg), shard_cfg);

  BenchResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (index_t i = 0; i < rounds; ++i) {
    r.folded += engine.run_round();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  r.wall_s = wall.count();
  r.clients_per_s =
      r.wall_s > 0.0 ? static_cast<double>(r.folded) / r.wall_s : 0.0;
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  r.max_rss_kb = usage.ru_maxrss;  // KiB on Linux
  r.ok = 1;
  return r;
}

/// Runs one configuration in a forked child so its peak RSS is measured in
/// isolation; the POD result rides back over a pipe.
BenchResult run_forked(const BenchConfig& c, index_t rounds) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    close(fds[0]);
    BenchResult r{};
    try {
      r = run_in_process(c, rounds);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[%s] failed: %s\n", c.label.c_str(), e.what());
      r.ok = 0;
    }
    ssize_t n = write(fds[1], &r, sizeof(r));
    close(fds[1]);
    _exit(n == sizeof(r) ? 0 : 1);
  }
  close(fds[1]);
  BenchResult r{};
  const ssize_t n = read(fds[0], &r, sizeof(r));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (n != sizeof(r) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    r.ok = 0;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasis;

  common::CliParser cli("shard_rounds",
                        "clients/s and peak RSS of the sharded round engine");
  cli.add_bool("full", "include the 1M-client population");
  cli.add_flag("rounds", "federated rounds per configuration", "1");
  bench::add_metrics_flag(cli);
  runtime::add_cli_flag(cli);
  cli.parse(argc, argv);
  runtime::apply_cli_flag(cli);
  const bench::MetricsExport metrics(cli);
  const auto rounds =
      static_cast<index_t>(cli.get_uint_range("rounds", 1, 1000));

  bench::print_banner(
      "shard_rounds",
      "Sharded streaming aggregation: population sweep (RSS should stay "
      "flat at fixed shard size) and shard-size sweep (RSS tracks shard).");

  std::vector<BenchConfig> configs = {
      // Population sweep at a fixed shard size: O(shard) memory shows up as
      // a flat RSS column while clients/s stays level.
      {"pop=10k   shard=512", 10'000, 0, 512},
      {"pop=100k  shard=512", 100'000, 0, 512},
      // Shard-size sweep at a fixed population: RSS tracks the shard.
      {"pop=100k  shard=64", 100'000, 0, 64},
      {"pop=100k  shard=4096", 100'000, 0, 4096},
  };
  if (cli.get_bool("full")) {
    configs.push_back({"pop=1M    shard=512", 1'000'000, 0, 512});
  }

  std::printf("%-22s %12s %12s %14s %12s\n", "config", "clients", "wall_s",
              "clients/s", "peak_rss_mb");
  std::vector<std::pair<BenchConfig, BenchResult>> results;
  for (const auto& c : configs) {
    const BenchResult r = run_forked(c, rounds);
    if (!r.ok) {
      std::printf("%-22s FAILED\n", c.label.c_str());
      continue;
    }
    std::printf("%-22s %12llu %12.2f %14.0f %12.1f\n", c.label.c_str(),
                static_cast<unsigned long long>(r.folded), r.wall_s,
                r.clients_per_s, static_cast<double>(r.max_rss_kb) / 1024.0);
    results.emplace_back(c, r);
  }

  const std::string out =
      bench::ensure_output_dir() + "/shard_rounds.json";
  std::ofstream json(out);
  json << "{\n  \"bench\": \"shard_rounds\",\n  \"rounds\": " << rounds
       << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [c, r] = results[i];
    json << "    {\"population\": " << c.population
         << ", \"cohort\": " << c.cohort
         << ", \"shard_size\": " << c.shard_size
         << ", \"clients\": " << r.folded << ", \"wall_s\": " << r.wall_s
         << ", \"clients_per_s\": " << r.clients_per_s
         << ", \"peak_rss_kb\": " << r.max_rss_kb << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "[json] " << out << "\n";
  return 0;
}
