// Table 1 — model accuracy when training WITH vs WITHOUT OASIS, for every
// transform, on both datasets.
//
// Paper shape: OASIS costs at most a few accuracy points (ImageNet stays
// above 90%, CIFAR100 drops ≤1.5 points), because augmentation is a
// generalization technique to begin with.
//
// Substitutions (see EXPERIMENTS.md): MiniConvNet/MiniResNet instead of
// ResNet-18, synthetic datasets instead of ImageNet/CIFAR100, epochs scaled
// to a single CPU core. Paper hyperparameters (Adam, lr 1e-3, weight decay
// 1e-5 / 1e-3) are kept.
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/trainer.h"
#include "nn/models.h"
#include "runtime/parallel.h"

namespace {

using namespace oasis;
using namespace oasis::bench;

struct Row {
  std::string label;
  std::vector<augment::TransformKind> transforms;
};

std::vector<Row> table1_rows() {
  using augment::TransformKind;
  return {
      {"Major Rotation", {TransformKind::kMajorRotation}},
      {"Minor Rotation", {TransformKind::kMinorRotation}},
      {"Shearing", {TransformKind::kShear}},
      {"Horizontal Flip", {TransformKind::kHorizontalFlip}},
      {"Vertical Flip", {TransformKind::kVerticalFlip}},
      {"Major Rotation + Shearing",
       {TransformKind::kMajorRotation, TransformKind::kShear}},
      {"Without OASIS", {}},
  };
}

struct DatasetSetup {
  std::string name;
  data::SynthDataset data;
  real weight_decay;
  index_t epochs;
};

void run_dataset(const DatasetSetup& setup, const std::string& model_kind,
                 std::uint64_t seed, metrics::ExperimentReport& report) {
  std::cout << "\n--- dataset=" << setup.name << "  ("
            << setup.data.train.size() << " train / "
            << setup.data.test.size() << " test, "
            << setup.data.train.num_classes() << " classes, model="
            << model_kind << ", " << setup.epochs << " epochs) ---\n"
            << std::left << std::setw(28) << "transform" << std::right
            << std::setw(14) << "accuracy(%)" << std::setw(12) << "time(s)"
            << "\n";
  const auto& shape = setup.data.train.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  for (const auto& row : table1_rows()) {
    common::Stopwatch sw;
    common::Rng rng(seed);  // same init for every row — isolate the transform
    auto model =
        model_kind == "resnet"
            ? nn::make_mini_resnet(spec, setup.data.train.num_classes(), rng)
            : nn::make_mini_convnet(spec, setup.data.train.num_classes(),
                                    rng);
    core::TrainerConfig cfg;
    cfg.epochs = setup.epochs;
    cfg.batch_size = 32;
    cfg.adam.lr = 1e-3;
    cfg.adam.weight_decay = setup.weight_decay;
    cfg.transforms = row.transforms;
    cfg.seed = seed ^ 0x7AB1E;
    const auto result =
        core::train_classifier(*model, setup.data.train, setup.data.test,
                               cfg);
    std::cout << std::left << std::setw(28) << row.label << std::right
              << std::setw(14) << std::fixed << std::setprecision(1)
              << result.final_test_accuracy * 100.0 << std::setw(12)
              << std::setprecision(1) << sw.seconds() << "\n";
    report.set_context("dataset", setup.name);
    report.begin_row();
    report.add("transform", row.label);
    report.add("test_accuracy", result.final_test_accuracy);
    report.add("train_accuracy", result.final_train_accuracy);
    report.add("final_loss", result.epoch_loss.back());
    report.add("seconds", sw.seconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("table1_accuracy",
                        "Reproduces Table 1 (accuracy with vs without OASIS)");
  cli.add_bool("full", "larger datasets and more epochs");
  cli.add_flag("model", "convnet|resnet", "convnet");
  cli.add_flag("seed", "experiment seed", "111");
  runtime::add_cli_flag(cli);
  bench::add_metrics_flag(cli);
  cli.parse(argc, argv);
  const bench::MetricsExport metrics_export(cli);
  runtime::apply_cli_flag(cli);
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Table 1", "test accuracy when training with / without OASIS");
  common::Stopwatch total;
  metrics::ExperimentReport report("table1_accuracy");

  {
    data::SynthConfig cfg = data::synth_imagenet_config();
    if (!full) {
      // Quick mode shrinks images (not classes) and compensates the shorter
      // schedule with a slightly harder generator, calibrated so the WO row
      // lands near the paper's 94.8%.
      cfg.height = cfg.width = 32;
      cfg.noise_stddev = 0.06;
      cfg.color_jitter = 0.12;
      cfg.distractor_prob = 0.5;
    }
    cfg.train_per_class = full ? 100 : 60;
    cfg.test_per_class = 20;
    run_dataset({"ImageNet", data::generate(cfg), 1e-5,
                 full ? index_t{12} : index_t{5}},
                cli.get("model"), seed, report);
  }
  {
    data::SynthConfig cfg = data::synth_cifar100_config();
    if (!full) {
      // Quick mode trains a 20-of-100-class subset (100-way training needs
      // an hour-scale schedule on one core); calibrated so the WO row lands
      // in the paper's ~75% band. --full restores all 100 classes.
      cfg.num_classes = 20;
      cfg.train_per_class = 40;
    } else {
      cfg.train_per_class = 24;
    }
    cfg.test_per_class = 6;
    run_dataset({"CIFAR100", data::generate(cfg), 1e-3,
                 full ? index_t{12} : index_t{6}},
                cli.get("model"), seed + 1, report);
  }
  flush_report(report);
  std::cout << "\n[table1] total " << total.seconds() << " s\n";
  return 0;
}
