file(REMOVE_RECURSE
  "../bench/ablation_secagg"
  "../bench/ablation_secagg.pdb"
  "CMakeFiles/ablation_secagg.dir/ablation_secagg.cpp.o"
  "CMakeFiles/ablation_secagg.dir/ablation_secagg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_secagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
