# Empty dependencies file for ablation_secagg.
# This may be replaced when dependencies are built.
