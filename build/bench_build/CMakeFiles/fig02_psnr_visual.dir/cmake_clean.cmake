file(REMOVE_RECURSE
  "../bench/fig02_psnr_visual"
  "../bench/fig02_psnr_visual.pdb"
  "CMakeFiles/fig02_psnr_visual.dir/fig02_psnr_visual.cpp.o"
  "CMakeFiles/fig02_psnr_visual.dir/fig02_psnr_visual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_psnr_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
