# Empty dependencies file for fig02_psnr_visual.
# This may be replaced when dependencies are built.
