file(REMOVE_RECURSE
  "../bench/fig03_rtf_defense"
  "../bench/fig03_rtf_defense.pdb"
  "CMakeFiles/fig03_rtf_defense.dir/fig03_rtf_defense.cpp.o"
  "CMakeFiles/fig03_rtf_defense.dir/fig03_rtf_defense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_rtf_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
