# Empty dependencies file for fig03_rtf_defense.
# This may be replaced when dependencies are built.
