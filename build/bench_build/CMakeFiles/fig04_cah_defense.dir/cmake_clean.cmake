file(REMOVE_RECURSE
  "../bench/fig04_cah_defense"
  "../bench/fig04_cah_defense.pdb"
  "CMakeFiles/fig04_cah_defense.dir/fig04_cah_defense.cpp.o"
  "CMakeFiles/fig04_cah_defense.dir/fig04_cah_defense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cah_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
