# Empty dependencies file for fig04_cah_defense.
# This may be replaced when dependencies are built.
