file(REMOVE_RECURSE
  "../bench/fig05_08_visuals"
  "../bench/fig05_08_visuals.pdb"
  "CMakeFiles/fig05_08_visuals.dir/fig05_08_visuals.cpp.o"
  "CMakeFiles/fig05_08_visuals.dir/fig05_08_visuals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_08_visuals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
