# Empty dependencies file for fig05_08_visuals.
# This may be replaced when dependencies are built.
