# Empty compiler generated dependencies file for fig09_rtf_sweep.
# This may be replaced when dependencies are built.
