# Empty dependencies file for fig10_cah_sweep.
# This may be replaced when dependencies are built.
