file(REMOVE_RECURSE
  "../bench/fig11_12_flip_visuals"
  "../bench/fig11_12_flip_visuals.pdb"
  "CMakeFiles/fig11_12_flip_visuals.dir/fig11_12_flip_visuals.cpp.o"
  "CMakeFiles/fig11_12_flip_visuals.dir/fig11_12_flip_visuals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_flip_visuals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
