# Empty dependencies file for fig11_12_flip_visuals.
# This may be replaced when dependencies are built.
