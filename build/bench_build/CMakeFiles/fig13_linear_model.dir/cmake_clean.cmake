file(REMOVE_RECURSE
  "../bench/fig13_linear_model"
  "../bench/fig13_linear_model.pdb"
  "CMakeFiles/fig13_linear_model.dir/fig13_linear_model.cpp.o"
  "CMakeFiles/fig13_linear_model.dir/fig13_linear_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_linear_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
