file(REMOVE_RECURSE
  "CMakeFiles/oasis_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/oasis_bench_common.dir/bench_common.cpp.o.d"
  "liboasis_bench_common.a"
  "liboasis_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
