file(REMOVE_RECURSE
  "liboasis_bench_common.a"
)
