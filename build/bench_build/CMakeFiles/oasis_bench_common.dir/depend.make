# Empty dependencies file for oasis_bench_common.
# This may be replaced when dependencies are built.
