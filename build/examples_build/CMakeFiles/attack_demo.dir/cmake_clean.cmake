file(REMOVE_RECURSE
  "../examples/attack_demo"
  "../examples/attack_demo.pdb"
  "CMakeFiles/attack_demo.dir/attack_demo.cpp.o"
  "CMakeFiles/attack_demo.dir/attack_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
