file(REMOVE_RECURSE
  "../examples/augmentation_gallery"
  "../examples/augmentation_gallery.pdb"
  "CMakeFiles/augmentation_gallery.dir/augmentation_gallery.cpp.o"
  "CMakeFiles/augmentation_gallery.dir/augmentation_gallery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentation_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
