file(REMOVE_RECURSE
  "../examples/fl_training"
  "../examples/fl_training.pdb"
  "CMakeFiles/fl_training.dir/fl_training.cpp.o"
  "CMakeFiles/fl_training.dir/fl_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
