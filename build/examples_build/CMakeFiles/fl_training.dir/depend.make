# Empty dependencies file for fl_training.
# This may be replaced when dependencies are built.
