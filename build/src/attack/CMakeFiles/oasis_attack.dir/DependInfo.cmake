
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/cah.cpp" "src/attack/CMakeFiles/oasis_attack.dir/cah.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/cah.cpp.o.d"
  "/root/repo/src/attack/calibration.cpp" "src/attack/CMakeFiles/oasis_attack.dir/calibration.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/calibration.cpp.o.d"
  "/root/repo/src/attack/detection.cpp" "src/attack/CMakeFiles/oasis_attack.dir/detection.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/detection.cpp.o.d"
  "/root/repo/src/attack/linear_inversion.cpp" "src/attack/CMakeFiles/oasis_attack.dir/linear_inversion.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/linear_inversion.cpp.o.d"
  "/root/repo/src/attack/recon_eval.cpp" "src/attack/CMakeFiles/oasis_attack.dir/recon_eval.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/recon_eval.cpp.o.d"
  "/root/repo/src/attack/rtf.cpp" "src/attack/CMakeFiles/oasis_attack.dir/rtf.cpp.o" "gcc" "src/attack/CMakeFiles/oasis_attack.dir/rtf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/oasis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/oasis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/oasis_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/oasis_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
