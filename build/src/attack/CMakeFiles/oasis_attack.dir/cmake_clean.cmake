file(REMOVE_RECURSE
  "CMakeFiles/oasis_attack.dir/cah.cpp.o"
  "CMakeFiles/oasis_attack.dir/cah.cpp.o.d"
  "CMakeFiles/oasis_attack.dir/calibration.cpp.o"
  "CMakeFiles/oasis_attack.dir/calibration.cpp.o.d"
  "CMakeFiles/oasis_attack.dir/detection.cpp.o"
  "CMakeFiles/oasis_attack.dir/detection.cpp.o.d"
  "CMakeFiles/oasis_attack.dir/linear_inversion.cpp.o"
  "CMakeFiles/oasis_attack.dir/linear_inversion.cpp.o.d"
  "CMakeFiles/oasis_attack.dir/recon_eval.cpp.o"
  "CMakeFiles/oasis_attack.dir/recon_eval.cpp.o.d"
  "CMakeFiles/oasis_attack.dir/rtf.cpp.o"
  "CMakeFiles/oasis_attack.dir/rtf.cpp.o.d"
  "liboasis_attack.a"
  "liboasis_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
