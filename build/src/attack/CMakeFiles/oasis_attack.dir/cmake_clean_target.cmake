file(REMOVE_RECURSE
  "liboasis_attack.a"
)
