# Empty dependencies file for oasis_attack.
# This may be replaced when dependencies are built.
