
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augment/affine.cpp" "src/augment/CMakeFiles/oasis_augment.dir/affine.cpp.o" "gcc" "src/augment/CMakeFiles/oasis_augment.dir/affine.cpp.o.d"
  "/root/repo/src/augment/policy.cpp" "src/augment/CMakeFiles/oasis_augment.dir/policy.cpp.o" "gcc" "src/augment/CMakeFiles/oasis_augment.dir/policy.cpp.o.d"
  "/root/repo/src/augment/transforms.cpp" "src/augment/CMakeFiles/oasis_augment.dir/transforms.cpp.o" "gcc" "src/augment/CMakeFiles/oasis_augment.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/oasis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
