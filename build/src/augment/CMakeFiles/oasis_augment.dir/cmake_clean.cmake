file(REMOVE_RECURSE
  "CMakeFiles/oasis_augment.dir/affine.cpp.o"
  "CMakeFiles/oasis_augment.dir/affine.cpp.o.d"
  "CMakeFiles/oasis_augment.dir/policy.cpp.o"
  "CMakeFiles/oasis_augment.dir/policy.cpp.o.d"
  "CMakeFiles/oasis_augment.dir/transforms.cpp.o"
  "CMakeFiles/oasis_augment.dir/transforms.cpp.o.d"
  "liboasis_augment.a"
  "liboasis_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
