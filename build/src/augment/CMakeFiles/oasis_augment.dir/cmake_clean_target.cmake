file(REMOVE_RECURSE
  "liboasis_augment.a"
)
