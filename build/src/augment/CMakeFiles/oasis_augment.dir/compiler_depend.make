# Empty compiler generated dependencies file for oasis_augment.
# This may be replaced when dependencies are built.
