file(REMOVE_RECURSE
  "CMakeFiles/oasis_common.dir/cli.cpp.o"
  "CMakeFiles/oasis_common.dir/cli.cpp.o.d"
  "CMakeFiles/oasis_common.dir/logging.cpp.o"
  "CMakeFiles/oasis_common.dir/logging.cpp.o.d"
  "CMakeFiles/oasis_common.dir/rng.cpp.o"
  "CMakeFiles/oasis_common.dir/rng.cpp.o.d"
  "liboasis_common.a"
  "liboasis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
