# Empty compiler generated dependencies file for oasis_common.
# This may be replaced when dependencies are built.
