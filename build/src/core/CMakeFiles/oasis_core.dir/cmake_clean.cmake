file(REMOVE_RECURSE
  "CMakeFiles/oasis_core.dir/baselines.cpp.o"
  "CMakeFiles/oasis_core.dir/baselines.cpp.o.d"
  "CMakeFiles/oasis_core.dir/experiment.cpp.o"
  "CMakeFiles/oasis_core.dir/experiment.cpp.o.d"
  "CMakeFiles/oasis_core.dir/oasis.cpp.o"
  "CMakeFiles/oasis_core.dir/oasis.cpp.o.d"
  "CMakeFiles/oasis_core.dir/trainer.cpp.o"
  "CMakeFiles/oasis_core.dir/trainer.cpp.o.d"
  "liboasis_core.a"
  "liboasis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
