# Empty dependencies file for oasis_core.
# This may be replaced when dependencies are built.
