
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cifar_io.cpp" "src/data/CMakeFiles/oasis_data.dir/cifar_io.cpp.o" "gcc" "src/data/CMakeFiles/oasis_data.dir/cifar_io.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/oasis_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/oasis_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/image.cpp" "src/data/CMakeFiles/oasis_data.dir/image.cpp.o" "gcc" "src/data/CMakeFiles/oasis_data.dir/image.cpp.o.d"
  "/root/repo/src/data/shapes.cpp" "src/data/CMakeFiles/oasis_data.dir/shapes.cpp.o" "gcc" "src/data/CMakeFiles/oasis_data.dir/shapes.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/oasis_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/oasis_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
