file(REMOVE_RECURSE
  "CMakeFiles/oasis_data.dir/cifar_io.cpp.o"
  "CMakeFiles/oasis_data.dir/cifar_io.cpp.o.d"
  "CMakeFiles/oasis_data.dir/dataset.cpp.o"
  "CMakeFiles/oasis_data.dir/dataset.cpp.o.d"
  "CMakeFiles/oasis_data.dir/image.cpp.o"
  "CMakeFiles/oasis_data.dir/image.cpp.o.d"
  "CMakeFiles/oasis_data.dir/shapes.cpp.o"
  "CMakeFiles/oasis_data.dir/shapes.cpp.o.d"
  "CMakeFiles/oasis_data.dir/synthetic.cpp.o"
  "CMakeFiles/oasis_data.dir/synthetic.cpp.o.d"
  "liboasis_data.a"
  "liboasis_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
