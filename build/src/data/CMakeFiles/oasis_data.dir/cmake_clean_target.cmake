file(REMOVE_RECURSE
  "liboasis_data.a"
)
