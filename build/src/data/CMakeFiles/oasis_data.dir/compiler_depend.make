# Empty compiler generated dependencies file for oasis_data.
# This may be replaced when dependencies are built.
