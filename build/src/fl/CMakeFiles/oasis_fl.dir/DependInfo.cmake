
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregation.cpp" "src/fl/CMakeFiles/oasis_fl.dir/aggregation.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/aggregation.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/oasis_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/inconsistent_server.cpp" "src/fl/CMakeFiles/oasis_fl.dir/inconsistent_server.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/inconsistent_server.cpp.o.d"
  "/root/repo/src/fl/secure_agg.cpp" "src/fl/CMakeFiles/oasis_fl.dir/secure_agg.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/secure_agg.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/oasis_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "src/fl/CMakeFiles/oasis_fl.dir/simulation.cpp.o" "gcc" "src/fl/CMakeFiles/oasis_fl.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/oasis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/oasis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
