file(REMOVE_RECURSE
  "CMakeFiles/oasis_fl.dir/aggregation.cpp.o"
  "CMakeFiles/oasis_fl.dir/aggregation.cpp.o.d"
  "CMakeFiles/oasis_fl.dir/client.cpp.o"
  "CMakeFiles/oasis_fl.dir/client.cpp.o.d"
  "CMakeFiles/oasis_fl.dir/inconsistent_server.cpp.o"
  "CMakeFiles/oasis_fl.dir/inconsistent_server.cpp.o.d"
  "CMakeFiles/oasis_fl.dir/secure_agg.cpp.o"
  "CMakeFiles/oasis_fl.dir/secure_agg.cpp.o.d"
  "CMakeFiles/oasis_fl.dir/server.cpp.o"
  "CMakeFiles/oasis_fl.dir/server.cpp.o.d"
  "CMakeFiles/oasis_fl.dir/simulation.cpp.o"
  "CMakeFiles/oasis_fl.dir/simulation.cpp.o.d"
  "liboasis_fl.a"
  "liboasis_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
