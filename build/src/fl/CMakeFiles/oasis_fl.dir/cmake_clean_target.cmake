file(REMOVE_RECURSE
  "liboasis_fl.a"
)
