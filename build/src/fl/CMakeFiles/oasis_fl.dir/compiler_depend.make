# Empty compiler generated dependencies file for oasis_fl.
# This may be replaced when dependencies are built.
