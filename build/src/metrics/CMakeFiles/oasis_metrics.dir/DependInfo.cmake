
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/accuracy.cpp" "src/metrics/CMakeFiles/oasis_metrics.dir/accuracy.cpp.o" "gcc" "src/metrics/CMakeFiles/oasis_metrics.dir/accuracy.cpp.o.d"
  "/root/repo/src/metrics/psnr.cpp" "src/metrics/CMakeFiles/oasis_metrics.dir/psnr.cpp.o" "gcc" "src/metrics/CMakeFiles/oasis_metrics.dir/psnr.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/oasis_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/oasis_metrics.dir/report.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/oasis_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/oasis_metrics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/oasis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/oasis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
