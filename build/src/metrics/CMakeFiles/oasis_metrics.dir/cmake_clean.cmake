file(REMOVE_RECURSE
  "CMakeFiles/oasis_metrics.dir/accuracy.cpp.o"
  "CMakeFiles/oasis_metrics.dir/accuracy.cpp.o.d"
  "CMakeFiles/oasis_metrics.dir/psnr.cpp.o"
  "CMakeFiles/oasis_metrics.dir/psnr.cpp.o.d"
  "CMakeFiles/oasis_metrics.dir/report.cpp.o"
  "CMakeFiles/oasis_metrics.dir/report.cpp.o.d"
  "CMakeFiles/oasis_metrics.dir/stats.cpp.o"
  "CMakeFiles/oasis_metrics.dir/stats.cpp.o.d"
  "liboasis_metrics.a"
  "liboasis_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
