file(REMOVE_RECURSE
  "liboasis_metrics.a"
)
