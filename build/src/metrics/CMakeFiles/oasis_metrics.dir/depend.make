# Empty dependencies file for oasis_metrics.
# This may be replaced when dependencies are built.
