file(REMOVE_RECURSE
  "CMakeFiles/oasis_nn.dir/activations.cpp.o"
  "CMakeFiles/oasis_nn.dir/activations.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/oasis_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/conv2d.cpp.o"
  "CMakeFiles/oasis_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/dense.cpp.o"
  "CMakeFiles/oasis_nn.dir/dense.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/dropout.cpp.o"
  "CMakeFiles/oasis_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/init.cpp.o"
  "CMakeFiles/oasis_nn.dir/init.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/loss.cpp.o"
  "CMakeFiles/oasis_nn.dir/loss.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/model_io.cpp.o"
  "CMakeFiles/oasis_nn.dir/model_io.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/models.cpp.o"
  "CMakeFiles/oasis_nn.dir/models.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/optimizer.cpp.o"
  "CMakeFiles/oasis_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/pooling.cpp.o"
  "CMakeFiles/oasis_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/residual.cpp.o"
  "CMakeFiles/oasis_nn.dir/residual.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/scheduler.cpp.o"
  "CMakeFiles/oasis_nn.dir/scheduler.cpp.o.d"
  "CMakeFiles/oasis_nn.dir/sequential.cpp.o"
  "CMakeFiles/oasis_nn.dir/sequential.cpp.o.d"
  "liboasis_nn.a"
  "liboasis_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
