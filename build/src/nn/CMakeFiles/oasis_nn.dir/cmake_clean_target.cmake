file(REMOVE_RECURSE
  "liboasis_nn.a"
)
