# Empty dependencies file for oasis_nn.
# This may be replaced when dependencies are built.
