file(REMOVE_RECURSE
  "CMakeFiles/oasis_tensor.dir/ops.cpp.o"
  "CMakeFiles/oasis_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/oasis_tensor.dir/serialize.cpp.o"
  "CMakeFiles/oasis_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/oasis_tensor.dir/tensor.cpp.o"
  "CMakeFiles/oasis_tensor.dir/tensor.cpp.o.d"
  "liboasis_tensor.a"
  "liboasis_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
