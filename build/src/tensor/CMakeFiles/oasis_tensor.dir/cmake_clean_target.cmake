file(REMOVE_RECURSE
  "liboasis_tensor.a"
)
