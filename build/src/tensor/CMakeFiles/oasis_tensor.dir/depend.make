# Empty dependencies file for oasis_tensor.
# This may be replaced when dependencies are built.
