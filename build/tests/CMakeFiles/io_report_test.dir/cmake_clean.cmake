file(REMOVE_RECURSE
  "CMakeFiles/io_report_test.dir/io_report_test.cpp.o"
  "CMakeFiles/io_report_test.dir/io_report_test.cpp.o.d"
  "io_report_test"
  "io_report_test.pdb"
  "io_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
