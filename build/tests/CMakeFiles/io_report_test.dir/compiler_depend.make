# Empty compiler generated dependencies file for io_report_test.
# This may be replaced when dependencies are built.
