
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/property_test.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oasis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/oasis_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/oasis_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/oasis_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/oasis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/oasis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/oasis_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/oasis_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
