file(REMOVE_RECURSE
  "CMakeFiles/secagg_test.dir/secagg_test.cpp.o"
  "CMakeFiles/secagg_test.dir/secagg_test.cpp.o.d"
  "secagg_test"
  "secagg_test.pdb"
  "secagg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secagg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
