#!/usr/bin/env bash
# CI entry point: Release build + full test suite, an AddressSanitizer build
# running the unit + golden labels, then a ThreadSanitizer build exercising
# the concurrency-heavy tests (runtime pool + FL rounds).
#
# Every test carries a ctest LABEL (unit | integration | sanitizer |
# property | golden) and a hard 30 s per-test TIMEOUT — a test that exceeds
# it fails the suite.
#
#   ./ci.sh            # all three stages
#   ./ci.sh release    # Release + full ctest only
#   ./ci.sh asan       # ASan build + unit/golden labels only
#   ./ci.sh tsan       # TSan stage only
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_release() {
  echo "==> [ci] Release build + ctest"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "${jobs}"
  ctest --test-dir build-ci --output-on-failure -j "${jobs}"
}

run_asan() {
  echo "==> [ci] AddressSanitizer build (unit + golden labels)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}"
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" \
    -L 'unit|golden'
}

run_tsan() {
  echo "==> [ci] ThreadSanitizer build (runtime_test + fl_test)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target runtime_test fl_test
  ./build-tsan/tests/runtime_test
  ./build-tsan/tests/fl_test
}

case "${stage}" in
  release) run_release ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_asan
    run_tsan
    ;;
  *)
    echo "usage: $0 [release|asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "==> [ci] OK"
