#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then a ThreadSanitizer
# build exercising the concurrency-heavy tests (runtime pool + FL rounds).
#
#   ./ci.sh            # both stages
#   ./ci.sh release    # Release + ctest only
#   ./ci.sh tsan       # TSan stage only
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_release() {
  echo "==> [ci] Release build + ctest"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "${jobs}"
  ctest --test-dir build-ci --output-on-failure -j "${jobs}"
}

run_tsan() {
  echo "==> [ci] ThreadSanitizer build (runtime_test + fl_test)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target runtime_test fl_test
  ./build-tsan/tests/runtime_test
  ./build-tsan/tests/fl_test
}

case "${stage}" in
  release) run_release ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_tsan
    ;;
  *)
    echo "usage: $0 [release|tsan|all]" >&2
    exit 2
    ;;
esac

echo "==> [ci] OK"
