#!/usr/bin/env bash
# CI entry point: Release build + full test suite, an AddressSanitizer build
# running the unit + golden labels, a kernel stage forcing the GEMM
# differential matrix through every ISA the host can execute (ASan/UBSan,
# then the 8-thread sweeps under TSan), a chaos stage running the randomized
# fault-injection suite under ASan/UBSan, a crash stage running the
# kill-point checkpoint/resume harness and snapshot-corruption sweeps under
# ASan/UBSan, a shard stage running the sharded million-client round engine's
# differential + crash tests under ASan/UBSan, a net-chaos stage SIGKILLing a
# live socket server at four kill points and memcmping the recovered model,
# a defense stage running the defense-stack / audit-gate / robust-aggregation
# suites under ASan/UBSan and the Byzantine chaos suite under TSan,
# then a ThreadSanitizer build exercising the concurrency-heavy tests
# (runtime pool + FL rounds + chaos + crash/resume + the 8-thread sharded
# differential).
#
# Every test carries a ctest LABEL (unit | integration | sanitizer |
# property | golden | chaos | crash | net | net_chaos | shard | defense) and
# a hard 30 s per-test TIMEOUT — a test that exceeds it fails the suite.
#
#   ./ci.sh            # all default stages
#   ./ci.sh release    # Release + full ctest only
#   ./ci.sh asan       # ASan build + unit/golden/kernel labels only
#   ./ci.sh kernel     # per-ISA GEMM differential matrix: kernel label under
#                      # each forced OASIS_GEMM_ISA with ASan/UBSan, then the
#                      # 8-thread sweeps (intra-GEMM parallel path) under TSan
#   ./ci.sh chaos      # ASan build + chaos label only
#   ./ci.sh crash      # ASan build + crash label only (SIGKILL harness)
#   ./ci.sh net        # ASan build + net label, then a TSan loopback round
#   ./ci.sh net-chaos  # ASan server-kill harness + TSan reconnect/backoff
#   ./ci.sh shard      # ASan build + shard label + sharded crash kill-points
#   ./ci.sh defense    # defense + robust-aggregation labels under ASan/UBSan,
#                      # Byzantine chaos suite under TSan
#   ./ci.sh tsan       # TSan stage only
#   ./ci.sh perf       # NOT part of "all": wall-clock kernel guards (per-ISA
#                      # blocked-vs-naive floors for both dtypes + the fp32
#                      # scale-path floors); run on quiet hardware
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_release() {
  echo "==> [ci] Release build + ctest"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "${jobs}"
  ctest --test-dir build-ci --output-on-failure -j "${jobs}"
}

run_asan() {
  # The kernel label rides along: the differential GEMM/Workspace tests are
  # exactly the ones that would surface a packing overrun or arena misuse,
  # which is ASan's home turf.
  echo "==> [ci] AddressSanitizer build (unit + golden + kernel labels)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}"
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" \
    -L 'unit|golden|kernel'
}

run_kernel() {
  # SIMD-dispatch stage: the per-ISA differential matrix runs once per ISA
  # the host can execute, forced through OASIS_GEMM_ISA so the kernel under
  # test is never an accident of dispatch. ASan/UBSan catches a packed-panel
  # overrun in any kernel geometry (the float 4×32 and the 6-row AVX2 tiles
  # have different pack paddings than the 4×8 double tile); the TSan pass
  # then drives the intra-GEMM row-panel parallel path — the 8-thread
  # differential sweeps — where a racy B-panel pack or C-tile store would
  # surface.
  echo "==> [ci] Kernel stage: per-ISA differential matrix under ASan/UBSan + TSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target kernel_diff_test
  isas="scalar"
  if [ "$(uname -m)" = "x86_64" ] && grep -q avx2 /proc/cpuinfo 2>/dev/null \
     && grep -q fma /proc/cpuinfo 2>/dev/null; then
    isas="${isas} avx2"
  fi
  if [ "$(uname -m)" = "aarch64" ]; then
    isas="${isas} neon"
  fi
  echo "==> [ci] kernel ISAs detected on this host: ${isas}"
  for isa in ${isas}; do
    echo "==> [ci] kernel label under forced OASIS_GEMM_ISA=${isa}"
    OASIS_GEMM_ISA="${isa}" ctest --test-dir build-asan --output-on-failure \
      -j "${jobs}" -L kernel
  done
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target kernel_diff_test
  for isa in ${isas}; do
    echo "==> [ci] 8-thread GEMM differential under TSan, OASIS_GEMM_ISA=${isa}"
    OASIS_GEMM_ISA="${isa}" ./build-tsan/tests/kernel_diff_test \
      --gtest_filter='*IsaSweep*:KernelDispatch.*'
  done
}

run_chaos() {
  # Fault injection exercises the nastiest paths (truncated payloads, bit
  # flips, aborted rounds), so it runs under ASan/UBSan, reusing the asan
  # build tree when it exists.
  echo "==> [ci] Chaos stage: fault-injection suite under ASan/UBSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target chaos_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L chaos
}

run_crash() {
  # The kill-point harness SIGKILLs checkpoint writers at randomized byte
  # offsets and memcmps resumed runs against uninterrupted references; the
  # corruption sweeps parse every truncation + hundreds of bit flips. Both
  # run under ASan/UBSan so an out-of-bounds read on a damaged snapshot
  # aborts loudly instead of passing quietly.
  echo "==> [ci] Crash stage: kill-point checkpoint/resume harness under ASan/UBSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target crash_test ckpt_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L crash
}

run_shard() {
  # The sharded streaming round engine's whole contract is bit-identity with
  # the materialized path; its tests chase pointers through lazily
  # materialized clients, mid-round snapshots, and a streaming accumulator —
  # ASan/UBSan territory. The sharded SIGKILL kill-points ride along so a
  # mid-shard crash that leaks or double-frees in the resume path aborts
  # loudly.
  echo "==> [ci] Shard stage: sharded round engine differential + crash tests under ASan/UBSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target shard_test crash_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L shard
  ./build-asan/tests/crash_test --gtest_filter='ShardCrashResume.*'
}

run_net() {
  # The socket serving layer parses hostile bytes (frame fuzz sweeps, every
  # truncation, seeded bit flips) — ASan/UBSan territory — and its
  # poll-driven event loop plus the fork-based federation get a TSan pass
  # over a real loopback round-trip.
  echo "==> [ci] Net stage: socket serving tests under ASan/UBSan + TSan loopback"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target net_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L net
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target net_test
  ./build-tsan/tests/net_test \
    --gtest_filter='NetRound.LoopbackFederationMatchesInProcessServerBitExactly'
}

run_net_chaos() {
  # Survivable-serving stage: the fork-based server-kill harness SIGKILLs a
  # live FlServer at four kill points (mid-accept, mid-frame,
  # post-accept-pre-ack, post-checkpoint), restarts it from its checkpoint
  # directory, and memcmps the final model against an uninterrupted
  # reference — under ASan/UBSan so a use-after-restore or snapshot overrun
  # aborts loudly. The reconnect/backoff/heartbeat client tests then run
  # under TSan: reconnect loops, idle deadlines, and heartbeat timers are
  # exactly where a racy session teardown would surface.
  echo "==> [ci] Net-chaos stage: server-kill harness under ASan/UBSan + reconnect tests under TSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target net_chaos_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L net_chaos
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target net_test
  ./build-tsan/tests/net_test \
    --gtest_filter='NetClient.StalledServerTripsIdleDeadlineIntoReconnect:NetClient.HeartbeatingServerHoldsSessionWithoutReconnect:NetClient.BackoffScheduleIsExponentialCappedAndReproducible:NetRestart.MidRoundRestartWithPendingAcceptsIsBitExact'
}

run_defense() {
  # Robustness stage: the defense stack rewrites gradient payloads in place
  # and the audit gate throws across the round engines' parallel regions —
  # ASan/UBSan territory for the tensor rewrites, with the robust-aggregation
  # property suite (order statistics over buffered cohorts) riding along.
  # The Byzantine chaos suite then runs under TSan: sign-flip / blowup /
  # colluding cohorts push the engines through their refusal and exclusion
  # paths at 8 threads, exactly where a racy per-slot catch would surface.
  echo "==> [ci] Defense stage: defense + robust-aggregation under ASan/UBSan + Byzantine chaos under TSan"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_ASAN=ON
  cmake --build build-asan -j "${jobs}" --target defense_test property_test
  ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L defense
  ./build-asan/tests/property_test --gtest_filter='RobustAggregation.*'
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target defense_test
  ./build-tsan/tests/defense_test --gtest_filter='ByzantineChaos.*'
}

run_tsan() {
  # crash_test rides along: its 8-thread shards resume checkpoints into a
  # freshly spawned pool, exactly where a racy restore would surface.
  echo "==> [ci] ThreadSanitizer build (runtime_test + fl_test + chaos_test + crash_test)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOASIS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target runtime_test fl_test     chaos_test crash_test
  ./build-tsan/tests/runtime_test
  ./build-tsan/tests/fl_test
  ./build-tsan/tests/chaos_test
  ./build-tsan/tests/crash_test --gtest_filter='*Threads8*:*ReferencesAgree*'
  # The 8-thread sharded differential: parallel client training inside a
  # shard must stay race-free while folding stays serial.
  cmake --build build-tsan -j "${jobs}" --target shard_test
  ./build-tsan/tests/shard_test \
    --gtest_filter='ShardDifferential.MatchesMaterializedSimulation_Threads8:ShardDifferential.ThreadCountInvariant'
}

run_perf() {
  # Opt-in stage, NOT in "all": wall-clock assertions are too noisy for
  # shared CI runners. The guard tests self-skip unless OASIS_PERF_GUARD=1.
  echo "==> [ci] Perf guard stage (per-ISA blocked GEMM floors, both dtypes)"
  cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci -j "${jobs}" --target perf_guard_test
  OASIS_PERF_GUARD=1 ctest --test-dir build-ci --output-on-failure -L perf
}

case "${stage}" in
  release) run_release ;;
  asan) run_asan ;;
  kernel) run_kernel ;;
  chaos) run_chaos ;;
  crash) run_crash ;;
  net) run_net ;;
  net-chaos) run_net_chaos ;;
  shard) run_shard ;;
  defense) run_defense ;;
  tsan) run_tsan ;;
  perf) run_perf ;;
  all)
    run_release
    run_asan
    run_kernel
    run_chaos
    run_crash
    run_shard
    run_net
    run_net_chaos
    run_defense
    run_tsan
    ;;
  *)
    echo "usage: $0 [release|asan|kernel|chaos|crash|net|shard|net-chaos|defense|tsan|perf|all]" >&2
    exit 2
    ;;
esac

echo "==> [ci] OK"
