// Attack gallery: runs all three active reconstruction attacks (RTF, CAH,
// linear-model inversion) against the same victim, with and without OASIS,
// and writes the reconstructed images as PPM panels under ./example_out/.
//
//   $ ./attack_demo [--defense MR]
#include <filesystem>
#include <iostream>

#include "common/cli.h"
#include "core/experiment.h"
#include "data/image.h"
#include "data/synthetic.h"
#include "metrics/stats.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;

  common::CliParser cli("attack_demo",
                        "RTF / CAH / linear inversion, with & without OASIS");
  cli.add_flag("defense", "transform for the defended run", "MR");
  runtime::add_cli_flag(cli);
  cli.parse(argc, argv);
  runtime::apply_cli_flag(cli);

  const std::string dir = "example_out";
  std::filesystem::create_directories(dir);

  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 48;
  cfg.train_per_class = 12;
  cfg.test_per_class = 0;
  const auto victim = data::generate(cfg).train;
  cfg.seed ^= 0xDEC0DE;
  const auto aux = data::generate(cfg).train;

  const auto defense_kind = augment::parse_transform_kind(cli.get("defense"));

  const struct {
    core::AttackKind kind;
    index_t neurons;
  } attacks[] = {
      {core::AttackKind::kRtf, 400},
      {core::AttackKind::kCah, 120},
      {core::AttackKind::kLinear, 0},
  };

  std::cout << metrics::box_row_header("attack/defense") << "\n";
  for (const auto& a : attacks) {
    for (const bool defended : {false, true}) {
      core::AttackExperimentConfig exp;
      exp.attack = a.kind;
      exp.batch_size = 8;
      exp.neurons = a.neurons;
      exp.num_batches = 1;
      exp.collect_visuals = true;
      exp.seed = 99;
      if (defended) exp.transforms = {defense_kind};
      const auto result = core::run_attack_experiment(victim, aux, exp);

      const std::string tag = core::to_string(a.kind) +
                              (defended ? "_oasis" : "_undefended");
      data::write_pnm(data::tile_images(result.visual_originals, 4),
                      dir + "/" + tag + "_inputs.ppm");
      data::write_pnm(data::tile_images(result.visual_reconstructions, 4),
                      dir + "/" + tag + "_recons.ppm");
      std::cout << metrics::format_box_row(
                       tag, metrics::box_stats(result.per_image_psnr))
                << "\n";
    }
  }
  std::cout << "panels written under " << dir << "/\n";
  return 0;
}
