// Augmentation gallery: renders one synthetic image together with every
// OASIS transform's variant set (Appendix B of the paper) into a single PPM
// contact sheet, and prints each variant's brightness statistic to show
// which transforms preserve the measurement RTF bins on.
//
//   $ ./augmentation_gallery
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "augment/policy.h"
#include "data/image.h"
#include "data/synthetic.h"

int main() {
  using namespace oasis;
  using augment::TransformKind;

  const std::string dir = "example_out";
  std::filesystem::create_directories(dir);

  data::SynthConfig cfg = data::synth_imagenet_config();
  common::Rng gen_rng(2024);
  const data::Example example = data::generate_example(cfg, /*label=*/4,
                                                       gen_rng);

  std::vector<tensor::Tensor> sheet{example.image};
  std::cout << std::fixed << std::setprecision(6)
            << "original mean brightness: " << example.image.mean() << "\n";

  common::Rng rng(7);
  for (const auto kind :
       {TransformKind::kMajorRotation, TransformKind::kMinorRotation,
        TransformKind::kShear, TransformKind::kHorizontalFlip,
        TransformKind::kVerticalFlip}) {
    const auto transform = augment::make_transform(kind);
    for (const auto& variant : transform->apply(example.image, rng)) {
      std::cout << std::left << std::setw(8) << transform->label()
                << " variant mean: " << variant.mean() << "\n";
      sheet.push_back(data::clamp01(variant));
    }
  }
  // The integrated MR+SH set (what defeats CAH at B=8).
  const auto integrated = augment::make_policy(
      {TransformKind::kMajorRotation, TransformKind::kShear});
  for (auto& variant : integrated.variants(example.image, rng)) {
    sheet.push_back(data::clamp01(std::move(variant)));
  }

  const std::string path = dir + "/augmentation_gallery.ppm";
  data::write_pnm(data::tile_images(sheet, 4), path);
  std::cout << "contact sheet (" << sheet.size() << " tiles) -> " << path
            << "\n";
  return 0;
}
