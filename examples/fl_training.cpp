// Federated training with OASIS enabled end-to-end.
//
// Stands up an honest FedAvg federation of 8 clients over sharded synthetic
// data, every client defending itself with OASIS (major rotation), trains
// the global model for a number of rounds, and tracks global test accuracy —
// demonstrating that the defense is a pure client-side preprocessing step
// that leaves the protocol and convergence intact.
//
//   $ ./fl_training [--rounds 150] [--clients 8] [--transform MR]
//                   [--metrics-out metrics.json]
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "core/oasis.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/accuracy.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;

  common::CliParser cli("fl_training",
                        "Honest FedAvg federation with OASIS-defended clients");
  cli.add_flag("rounds", "federated rounds", "250");
  cli.add_flag("clients", "number of clients N", "8");
  cli.add_flag("per-round", "clients selected per round M (0=all)", "4");
  cli.add_flag("transform", "OASIS transform (none|MR|mR|SH|HFlip|VFlip)",
               "MR");
  cli.add_flag("metrics-out", "write obs metrics/trace JSON to this file", "");
  runtime::add_cli_flag(cli);
  cli.parse(argc, argv);
  runtime::apply_cli_flag(cli);

  const auto rounds = static_cast<index_t>(cli.get_int("rounds"));
  const auto n_clients = static_cast<index_t>(cli.get_int("clients"));

  // Dataset: a 10-class task sharded across clients.
  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 24;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  const data::SynthDataset dataset = data::generate(cfg);
  const auto shards = dataset.train.shard(n_clients);

  // Every client applies the same OASIS policy locally.
  const auto kind = augment::parse_transform_kind(cli.get("transform"));
  const fl::PreprocessorPtr defense = core::make_preprocessor(
      kind == augment::TransformKind::kNone
          ? std::vector<augment::TransformKind>{}
          : std::vector<augment::TransformKind>{kind});
  std::cout << "clients train with preprocessor: " << defense->name() << "\n";

  const nn::ImageSpec spec{3, cfg.height, cfg.width};
  common::Rng init_rng(7);
  const fl::ModelFactory factory = [&spec, &init_rng, &cfg] {
    return nn::make_mini_convnet(spec, cfg.num_classes, init_rng, 8);
  };

  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.15);
  auto* server_ptr = server.get();
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/16, defense,
        common::Rng(1000 + i)));
  }
  fl::Simulation sim(
      std::move(server), std::move(clients),
      fl::SimulationConfig{static_cast<index_t>(cli.get_int("per-round")),
                           /*seed=*/3});

  for (index_t r = 0; r < rounds; ++r) {
    sim.run_round();
    if ((r + 1) % 25 == 0 || r + 1 == rounds) {
      const real acc =
          metrics::accuracy(server_ptr->global_model(), dataset.test);
      obs::gauge("fl.global_test_accuracy").set(acc);
      std::cout << "round " << (r + 1) << ": global test accuracy "
                << acc * 100.0 << "%\n";
    }
  }
  if (const std::string path = cli.get("metrics-out"); !path.empty()) {
    obs::dump(path);
    std::cout << "[metrics] " << path << "\n" << obs::summary();
  }
  return 0;
}
