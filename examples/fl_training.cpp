// Federated training with OASIS enabled end-to-end.
//
// Stands up an honest FedAvg federation of 8 clients over sharded synthetic
// data, every client defending itself with OASIS (major rotation), trains
// the global model for a number of rounds, and tracks global test accuracy —
// demonstrating that the defense is a pure client-side preprocessing step
// that leaves the protocol and convergence intact.
//
//   $ ./fl_training [--rounds 150] [--clients 8] [--transform MR]
//                   [--metrics-out metrics.json]
//
// The round engine's fault machinery is exposed too, so a lossy deployment
// can be rehearsed from the command line:
//
//   $ ./fl_training --fault-dropout 0.2 --quorum 0.5
//
// Faulty rounds that miss quorum abort with a bit-exact model rollback and
// training simply continues with the next round's cohort.
//
// The full robustness surface is on the command line too: a composable
// client-side defense stack (clip / DP noise / secagg mask), Byzantine-robust
// server aggregation, the client-side model-audit gate, and persistent
// sign-flip attackers to test them against:
//
//   $ ./fl_training --defense clip:10,noise:0.01 --audit
//                   --aggregator trimmed:0.3 --fault-byzantine 0.2
//   (one command line)
//
// Long runs can be made interruption-proof with durable checkpoints: every
// --checkpoint-every rounds the full simulation state (model, RNG streams,
// clock, obs counters) is written crash-consistently to --checkpoint-dir,
// and --resume picks the run back up from the newest valid snapshot — the
// resumed trajectory is bit-identical to one that never stopped:
//
//   $ ./fl_training --rounds 500 --checkpoint-dir ckpts --checkpoint-every 25
//   ... SIGKILL at any moment ...
//   $ ./fl_training --resume --rounds 500 --checkpoint-dir ckpts
//
// The same federation can be served over TCP instead of in-process. One
// process listens (it owns the global model), N processes connect (each owns
// one client's shard); with matching --rounds/--clients/--per-round 0 the
// final model is byte-identical to the in-process run:
//
//   $ ./fl_training --listen 7400 --clients 4 --per-round 0 --rounds 20 &
//   $ for i in 0 1 2 3; do
//       ./fl_training --connect 127.0.0.1:7400 --clients 4 --client-id $i &
//     done
//
// The serving path survives the same SIGKILL: add --checkpoint-dir and every
// accepted update is durably folded (plus a snapshot at each round
// boundary); rerunning the SAME --listen command restores the open round and
// the reconnecting clients resolve their in-flight updates via the session-
// resume handshake (see DESIGN.md §5j):
//
//   $ ./fl_training --listen 7400 --clients 4 --per-round 0 --rounds 20 \
//                   --checkpoint-dir net-ckpts &
//   ... SIGKILL the server mid-round, then rerun the same command ...
//
// Million-scale federations run through the sharded streaming engine:
// --population N switches to lazily materialized virtual clients processed
// in --shard-size chunks (peak memory is O(shard), not O(N)), with
// --cohort M of them sampled per round by a stateless hash-threshold
// sampler:
//
//   $ ./fl_training --population 1000000 --cohort 100000
//                   --shard-size 512 --rounds 3    (one command line)
#include <chrono>
#include <iostream>
#include <memory>

#include "attack/audit.h"
#include "ckpt/manager.h"
#include "common/cli.h"
#include "common/error.h"
#include "core/oasis.h"
#include "data/synthetic.h"
#include "fl/defense.h"
#include "fl/shard.h"
#include "fl/simulation.h"
#include "metrics/accuracy.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

int main(int argc, char** argv) {
  using namespace oasis;

  common::CliParser cli("fl_training",
                        "Honest FedAvg federation with OASIS-defended clients");
  cli.add_flag("rounds", "federated rounds", "250");
  cli.add_flag("clients", "number of clients N", "8");
  cli.add_flag("per-round", "clients selected per round M (0=all)", "4");
  cli.add_flag("transform", "OASIS transform (none|MR|mR|SH|HFlip|VFlip)",
               "MR");
  cli.add_flag("metrics-out", "write obs metrics/trace JSON to this file", "");
  cli.add_flag("fault-dropout", "per-client dropout probability", "0");
  cli.add_flag("fault-straggler", "per-client straggler probability", "0");
  cli.add_flag("fault-corrupt", "per-client payload corruption probability",
               "0");
  cli.add_flag("fault-poison", "per-client numeric poison probability", "0");
  cli.add_flag("fault-byzantine",
               "fraction of persistently Byzantine (sign-flip) clients", "0");
  cli.add_flag("fault-seed", "fault plan seed", "677200");
  cli.add_flag("defense",
               "client-side defense stack, e.g. clip:10,noise:0.01,mask "
               "(none = disabled)", "none");
  cli.add_flag("aggregator",
               "server aggregation rule "
               "(fedavg|median|trimmed[:f]|normbound[:b])", "fedavg");
  cli.add_bool("audit",
               "clients screen each dispatched model for implants and refuse "
               "suspicious rounds");
  cli.add_flag("quorum", "fraction of selected clients required to commit "
               "a round (0=disabled)", "0");
  cli.add_flag("checkpoint-dir",
               "write durable simulation snapshots to this directory", "");
  cli.add_flag("checkpoint-every", "rounds between checkpoints", "25");
  cli.add_flag("checkpoint-keep", "snapshot generations to retain", "3");
  cli.add_bool("resume",
               "resume from the newest valid snapshot in --checkpoint-dir");
  cli.add_flag("listen",
               "serve rounds over TCP on this port instead of running the "
               "in-process simulation (0 = ephemeral)", "");
  cli.add_flag("host", "address to bind (--listen) or unused otherwise",
               "127.0.0.1");
  cli.add_flag("connect",
               "join a federation at host:port as one client process", "");
  cli.add_flag("client-id", "client identity for --connect (0-based)", "0");
  cli.add_flag("population",
               "virtual clients for the sharded streaming engine "
               "(0 = materialized simulation)", "0");
  cli.add_flag("cohort",
               "cohort target per round under --population (0 = everyone)",
               "0");
  cli.add_flag("shard-size",
               "clients materialized/trained/folded per shard", "256");
  cli.add_flag("sampler", "cohort sampler under --population (hash|fy)",
               "hash");
  cli.add_flag("checkpoint-every-shards",
               "mid-round shard-boundary checkpoint cadence under "
               "--population (0 = round boundaries only)", "0");
  cli.add_flag("checkpoint-every-accepts",
               "mid-round checkpoint cadence, in folded updates, under "
               "--listen (0 = round boundaries only)", "1");
  runtime::add_cli_flag(cli);
  cli.parse(argc, argv);
  runtime::apply_cli_flag(cli);

  // Count flags go through the strict unsigned accessor: "--rounds -1" must
  // fail loudly instead of wrapping into a practically-infinite run.
  const auto rounds = static_cast<index_t>(cli.get_uint("rounds"));
  const auto n_clients = static_cast<index_t>(cli.get_uint("clients"));

  // Dataset: a 10-class task sharded across clients.
  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.height = cfg.width = 24;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  const data::SynthDataset dataset = data::generate(cfg);
  const auto shards = dataset.train.shard(n_clients);

  // Every client applies the same OASIS policy locally.
  const auto kind = augment::parse_transform_kind(cli.get("transform"));
  const fl::PreprocessorPtr defense = core::make_preprocessor(
      kind == augment::TransformKind::kNone
          ? std::vector<augment::TransformKind>{}
          : std::vector<augment::TransformKind>{kind});
  std::cout << "clients train with preprocessor: " << defense->name() << "\n";

  const nn::ImageSpec spec{3, cfg.height, cfg.width};
  common::Rng init_rng(7);
  const fl::ModelFactory factory = [&spec, &init_rng, &cfg] {
    return nn::make_mini_convnet(spec, cfg.num_classes, init_rng, 8);
  };

  // PR-10 robustness surface: client-side defense stack, server-side robust
  // aggregation, and the model-audit gate.
  const fl::DefenseStackPtr defense_stack =
      fl::parse_defense_stack(cli.get("defense"));
  if (!defense_stack->empty()) {
    std::cout << "defense stack: " << defense_stack->name() << "\n";
  }
  const fl::AggregatorConfig aggregator =
      fl::parse_aggregator(cli.get("aggregator"));
  const fl::ModelAuditor auditor =
      cli.get_bool("audit") ? attack::make_model_auditor() : fl::ModelAuditor{};
  if (auditor) std::cout << "model-audit gate armed on every client\n";

  if (const std::string target = cli.get("connect"); !target.empty()) {
    // Client process: one shard, one identity, rounds driven by the server.
    // Strict endpoint parse: "host:70000" or "host:7400x" must fail here
    // with a ConfigError, not connect to a silently truncated port.
    const common::HostPort endpoint = common::parse_host_port(target);
    const auto id = cli.get_uint("client-id");
    OASIS_CHECK_MSG(id < n_clients,
                    "--client-id " << id << " outside --clients " << n_clients);
    fl::Client core(id, shards[id], factory, /*batch_size=*/16, defense,
                    common::Rng(1000 + id));
    if (auditor) core.set_model_auditor(auditor);
    net::FlClientConfig client_cfg;
    client_cfg.client_id = id;
    net::FlClient client(core, client_cfg);
    if (!defense_stack->empty()) {
      // The wire protocol never announces the round's membership, so a mask
      // stage needs the static full-population cohort (valid here because
      // --per-round 0 serving dispatches to everyone).
      if (defense_stack->requires_cohort()) {
        std::vector<std::uint64_t> everyone(n_clients);
        for (index_t i = 0; i < n_clients; ++i) everyone[i] = i;
        auto owned = fl::parse_defense_stack(cli.get("defense"));
        owned->set_static_cohort(std::move(everyone));
        client.set_defense_stack(std::move(owned));
      } else {
        client.set_defense_stack(defense_stack);
      }
    }
    std::uint64_t done = 0;
    try {
      done = client.run(endpoint.host, endpoint.port);
    } catch (const net::NetError& e) {
      // The retry loop exhausted its budget against a dead endpoint (or the
      // connection died unrecoverably). Report and exit cleanly — the other
      // client processes and the server are not our problem.
      std::cerr << "client " << id << ": giving up after "
                << client.retries() << " reconnect attempt(s): " << e.what()
                << "\n";
      return 1;
    }
    std::cout << "client " << id << ": participated in " << done
              << " round(s), " << client.rounds_refused()
              << " refused by audit, " << client.retry_after_bounces()
              << " backpressure bounce(s), " << client.retries()
              << " reconnect(s)\n";
    if (const std::string path = cli.get("metrics-out"); !path.empty()) {
      obs::dump(path);
    }
    return 0;
  }

  if (const auto population =
          cli.get_uint_range("population", 0, 100'000'000);
      population > 0) {
    // Million-scale path: virtual clients materialized per shard, folded
    // into one streaming accumulator. A linear model keeps per-client cost
    // in the tens of microseconds so a 10^6-client round finishes on a CPU.
    fl::VirtualPopulationConfig pop_cfg;
    pop_cfg.num_clients = static_cast<index_t>(population);
    pop_cfg.seed = 11;
    pop_cfg.height = pop_cfg.width = 12;
    pop_cfg.examples_per_client = 8;
    pop_cfg.batch_size = 4;
    pop_cfg.preprocessor = defense;
    pop_cfg.auditor = auditor;
    const nn::ImageSpec pop_spec{3, pop_cfg.height, pop_cfg.width};
    const index_t pop_classes = pop_cfg.num_classes;
    pop_cfg.factory = [pop_spec, pop_classes] {
      common::Rng init(7);  // fresh per call — the factory must be pure
      return nn::make_linear_model(pop_spec, pop_classes, init);
    };

    fl::ShardedConfig shard_cfg;
    shard_cfg.cohort_size =
        static_cast<index_t>(cli.get_uint_range("cohort", 0, population));
    shard_cfg.shard_size = static_cast<index_t>(
        cli.get_uint_range("shard-size", 1, 1'000'000));
    shard_cfg.seed = 3;
    const std::string sampler = cli.get("sampler");
    if (sampler == "hash") {
      shard_cfg.sampler = fl::CohortSampler::kHashThreshold;
    } else if (sampler == "fy") {
      shard_cfg.sampler = fl::CohortSampler::kFisherYates;
    } else {
      throw ConfigError("--sampler must be hash or fy, got '" + sampler + "'");
    }
    shard_cfg.quorum_fraction = cli.get_real("quorum");
    // The streaming engine refuses the buffering order-statistic
    // aggregators at construction — fedavg/normbound only.
    shard_cfg.aggregator = aggregator;

    auto pop_server =
        std::make_unique<fl::Server>(pop_cfg.factory(), /*learning_rate=*/0.15);
    fl::ShardedSimulation engine(std::move(pop_server),
                                 fl::VirtualPopulation(pop_cfg), shard_cfg);
    if (!defense_stack->empty()) engine.set_defense_stack(defense_stack);

    fl::FaultConfig pop_faults;
    pop_faults.dropout_prob = cli.get_real("fault-dropout");
    pop_faults.straggler_prob = cli.get_real("fault-straggler");
    pop_faults.corrupt_prob = cli.get_real("fault-corrupt");
    pop_faults.poison_prob = cli.get_real("fault-poison");
    pop_faults.byzantine_fraction = cli.get_real("fault-byzantine");
    pop_faults.seed = cli.get_uint("fault-seed");
    if (pop_faults.any()) engine.set_fault_plan(fl::FaultPlan(pop_faults));

    std::unique_ptr<ckpt::CheckpointManager> pop_manager;
    const auto pop_ckpt_every = cli.get_uint("checkpoint-every");
    if (const std::string dir = cli.get("checkpoint-dir"); !dir.empty()) {
      OASIS_CHECK_MSG(pop_ckpt_every >= 1,
                      "--checkpoint-every must be >= 1");
      pop_manager = std::make_unique<ckpt::CheckpointManager>(
          dir, static_cast<int>(cli.get_int("checkpoint-keep")));
      if (cli.get_bool("resume")) {
        try {
          const std::uint64_t at = engine.resume_from(*pop_manager);
          std::cout << "resumed at round " << at
                    << (engine.mid_round() ? " (mid-round)" : "") << "\n";
        } catch (const CheckpointError& e) {
          if (e.reason() != CheckpointError::Reason::kNoValidGeneration) {
            throw;
          }
          std::cout << "no checkpoint to resume from; starting fresh\n";
        }
      }
      if (const auto every_shards =
              cli.get_uint("checkpoint-every-shards");
          every_shards > 0) {
        // Shard-boundary snapshots: a SIGKILL mid-round resumes from the
        // last completed shard instead of replaying the whole round.
        engine.set_shard_hook(
            [&engine, &pop_manager, every_shards](const fl::ShardProgress& p) {
              if ((p.shard + 1) % every_shards == 0 &&
                  p.shard + 1 < p.num_shards) {
                engine.save_checkpoint(*pop_manager);
              }
            });
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t folded = 0;
    index_t pop_aborted = 0;
    for (index_t attempts = 0;
         engine.server().round() < rounds && attempts < 2 * rounds;
         ++attempts) {
      index_t cohort = 0;
      try {
        cohort = engine.run_round();
      } catch (const QuorumError& e) {
        ++pop_aborted;
        std::cout << "round " << (engine.server().round() + 1)
                  << ": aborted (" << e.what() << ")\n";
        continue;
      }
      folded += cohort;
      const std::uint64_t r = engine.server().round();
      if (pop_manager != nullptr &&
          (r % pop_ckpt_every == 0 || r == rounds)) {
        engine.save_checkpoint(*pop_manager);
      }
      std::cout << "round " << r << ": cohort " << cohort << "\n";
    }
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    if (pop_aborted > 0) {
      std::cout << pop_aborted << " round attempt(s) aborted on quorum\n";
    }
    std::cout << "population " << population << ": " << folded
              << " client-rounds in " << wall.count() << " s ("
              << (wall.count() > 0.0
                      ? static_cast<double>(folded) / wall.count()
                      : 0.0)
              << " clients/s)\n";
    if (const std::string path = cli.get("metrics-out"); !path.empty()) {
      obs::dump(path);
      std::cout << "[metrics] " << path << "\n" << obs::summary();
    }
    return 0;
  }

  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.15);
  auto* server_ptr = server.get();
  server_ptr->set_aggregator(aggregator);

  if (const std::string listen = cli.get("listen"); !listen.empty()) {
    // Server process: same selection seed as the in-process engine, so a
    // full-population federation (--per-round 0) converges to the same
    // bytes the simulation would have produced.
    const auto per_round = static_cast<index_t>(cli.get_uint("per-round"));
    net::FlServerConfig server_cfg;
    server_cfg.cohort_size = per_round == 0 ? n_clients : per_round;
    server_cfg.rounds = rounds;
    server_cfg.quorum_fraction = cli.get_real("quorum");
    server_cfg.selection_seed = 3;  // SimulationConfig's seed below
    // Survivable serving (DESIGN.md §5j): with --checkpoint-dir the accepted
    // updates are durably folded and a killed server restarted with the SAME
    // command line picks the round back up — reconnecting clients resolve
    // their in-flight updates via the resume handshake.
    std::unique_ptr<ckpt::CheckpointManager> net_manager;
    if (const std::string dir = cli.get("checkpoint-dir"); !dir.empty()) {
      net_manager = std::make_unique<ckpt::CheckpointManager>(
          dir, static_cast<int>(cli.get_int("checkpoint-keep")));
      server_cfg.checkpoint = net_manager.get();
      server_cfg.checkpoint_every_accepts =
          cli.get_uint("checkpoint-every-accepts");
    }
    net::FlServer net_server(*server_ptr, server_cfg);
    if (net_manager && !net_manager->generations().empty()) {
      const std::uint64_t round = net_server.resume_from();
      std::cout << "resumed from " << net_manager->dir() << " at round "
                << round << " (" << net_server.rounds_served()
                << " served)\n";
    } else if (cli.get_bool("resume")) {
      OASIS_CHECK_MSG(net_manager != nullptr,
                      "--resume requires --checkpoint-dir");
      std::cout << "no checkpoint to resume from; starting fresh\n";
    }
    net_server.listen(cli.get("host"),
                     static_cast<std::uint16_t>(cli.get_uint("listen")));
    std::cout << "listening on " << cli.get("host") << ":" << net_server.port()
              << " (cohort " << server_cfg.cohort_size << ", rounds " << rounds
              << ")\n"
              << std::flush;
    net_server.serve();
    const real acc = metrics::accuracy(server_ptr->global_model(), dataset.test);
    obs::gauge("fl.global_test_accuracy").set(acc);
    std::cout << "served " << net_server.rounds_served()
              << " round(s); final global test accuracy " << acc * 100.0
              << "%\n";
    if (const std::string path = cli.get("metrics-out"); !path.empty()) {
      obs::dump(path);
      std::cout << "[metrics] " << path << "\n" << obs::summary();
    }
    return 0;
  }

  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], factory, /*batch_size=*/16, defense,
        common::Rng(1000 + i)));
    if (auditor) clients[i]->set_model_auditor(auditor);
  }
  fl::SimulationConfig sim_cfg{static_cast<index_t>(cli.get_uint("per-round")),
                               /*seed=*/3};
  sim_cfg.quorum_fraction = cli.get_real("quorum");
  fl::Simulation sim(std::move(server), std::move(clients), sim_cfg);
  if (!defense_stack->empty()) sim.set_defense_stack(defense_stack);

  fl::FaultConfig faults;
  faults.dropout_prob = cli.get_real("fault-dropout");
  faults.straggler_prob = cli.get_real("fault-straggler");
  faults.corrupt_prob = cli.get_real("fault-corrupt");
  faults.poison_prob = cli.get_real("fault-poison");
  faults.byzantine_fraction = cli.get_real("fault-byzantine");
  faults.seed = cli.get_uint("fault-seed");
  if (faults.any()) {
    sim.set_fault_plan(fl::FaultPlan(faults));
    // This federation runs without secure aggregation, so the norm screen
    // is safe to arm; without it one accepted norm-scaled poison would blow
    // up the global model and taint every later round.
    fl::ValidationConfig validation;
    validation.max_grad_norm = 1e4;
    server_ptr->set_validation(validation);
    std::cout << "fault plan: dropout " << faults.dropout_prob
              << ", straggler " << faults.straggler_prob << ", corrupt "
              << faults.corrupt_prob << ", poison " << faults.poison_prob
              << ", byzantine " << faults.byzantine_fraction
              << " (seed " << faults.seed << ", quorum "
              << sim_cfg.quorum_fraction << ")\n";
  }

  // Durable checkpointing: the loop below is keyed on the server's protocol
  // round (not a loop counter) so a resumed process continues exactly where
  // the snapshot left off.
  std::unique_ptr<ckpt::CheckpointManager> manager;
  const auto ckpt_every = cli.get_uint("checkpoint-every");
  if (const std::string dir = cli.get("checkpoint-dir"); !dir.empty()) {
    OASIS_CHECK_MSG(ckpt_every >= 1, "--checkpoint-every must be >= 1");
    manager = std::make_unique<ckpt::CheckpointManager>(
        dir, static_cast<int>(cli.get_int("checkpoint-keep")));
    if (cli.get_bool("resume")) {
      try {
        const std::uint64_t at = sim.resume_from(*manager);
        std::cout << "resumed from checkpoint at round " << at << "\n";
      } catch (const CheckpointError& e) {
        if (e.reason() != CheckpointError::Reason::kNoValidGeneration) throw;
        std::cout << "no checkpoint to resume from; starting fresh\n";
      }
    }
  }

  const auto target = static_cast<std::uint64_t>(rounds);
  index_t aborted = 0;
  // Aborted (quorum-missing) attempts don't advance the protocol round;
  // bound total attempts so a pathological fault plan cannot spin forever.
  for (index_t attempts = 0;
       sim.server().round() < target && attempts < 2 * rounds; ++attempts) {
    try {
      sim.run_round();
    } catch (const QuorumError& e) {
      // The engine already rolled the model back bit-exactly; skip to the
      // next round's cohort.
      ++aborted;
      std::cout << "round " << (sim.server().round() + 1) << ": aborted ("
                << e.what() << ")\n";
      continue;
    }
    const std::uint64_t r = sim.server().round();
    if (manager != nullptr && (r % ckpt_every == 0 || r == target)) {
      sim.save_checkpoint(*manager);
    }
    if (r % 25 == 0 || r == target) {
      const real acc =
          metrics::accuracy(server_ptr->global_model(), dataset.test);
      obs::gauge("fl.global_test_accuracy").set(acc);
      std::cout << "round " << r << ": global test accuracy "
                << acc * 100.0 << "%\n";
    }
  }
  if (aborted > 0) {
    std::cout << aborted << " round attempt(s) aborted on quorum\n";
  }
  if (const std::string path = cli.get("metrics-out"); !path.empty()) {
    obs::dump(path);
    std::cout << "[metrics] " << path << "\n" << obs::summary();
  }
  return 0;
}
