// Quickstart: the OASIS pipeline in ~60 lines.
//
// Builds a tiny federation with a DISHONEST server running the RTF gradient
// inversion attack, lets it attack an undefended client and an OASIS-defended
// client, and prints the reconstruction quality it achieved against each.
//
//   $ ./quickstart
//
// Expected output: near-cap PSNR (verbatim reconstruction) without OASIS and
// ~20 dB (unrecognizable) with OASIS major rotation.
#include <iostream>

#include "core/experiment.h"
#include "core/oasis.h"
#include "data/synthetic.h"

int main() {
  using namespace oasis;

  // 1. Local data for the victim, public aux data for the attacker.
  data::SynthConfig cfg = data::synth_imagenet_config();
  cfg.train_per_class = 12;
  cfg.test_per_class = 0;
  const data::InMemoryDataset victim_data = data::generate(cfg).train;
  cfg.seed ^= 0xFACE;
  const data::InMemoryDataset aux_data = data::generate(cfg).train;

  // 2. Configure the attack experiment: RTF with 256 attacked neurons
  //    against batches of 8, over 2 FL rounds.
  core::AttackExperimentConfig attack;
  attack.attack = core::AttackKind::kRtf;
  attack.batch_size = 8;
  attack.neurons = 256;
  attack.num_batches = 2;
  attack.seed = 42;

  // 3. Undefended baseline.
  const auto undefended =
      core::run_attack_experiment(victim_data, aux_data, attack);

  // 4. Same attack against an OASIS-defended client (major rotation).
  attack.transforms = {augment::TransformKind::kMajorRotation};
  const auto defended =
      core::run_attack_experiment(victim_data, aux_data, attack);

  std::cout << "RTF reconstruction quality (mean best-match PSNR over "
            << undefended.per_image_psnr.size() << " images):\n"
            << "  without OASIS : " << undefended.mean_psnr()
            << " dB  (>=130 dB means the server got verbatim copies)\n"
            << "  with OASIS(MR): " << defended.mean_psnr()
            << " dB  (the server only sees overlaps of rotations)\n";
  return 0;
}
