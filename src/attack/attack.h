// ActiveAttack — the dishonest-server attack interface.
//
// An active reconstruction attack has two halves (paper Section 3.1):
//   1. implant(): maliciously modify the global model before dispatch —
//      install a crafted FC layer of n "attacked neurons" right after the
//      input (the strongest placement, which the paper defends against);
//   2. reconstruct(): invert the batch-summed gradients uploaded by the
//      victim into candidate images via Eq. 2 / Eq. 3.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/server.h"
#include "nn/dense.h"
#include "nn/models.h"
#include "nn/sequential.h"

namespace oasis::attack {

class ActiveAttack {
 public:
  ActiveAttack() = default;
  ActiveAttack(const ActiveAttack&) = delete;
  ActiveAttack& operator=(const ActiveAttack&) = delete;
  virtual ~ActiveAttack() = default;

  /// Installs the malicious parameters into `model` (the global model about
  /// to be dispatched) and records where its weight/bias gradients will sit
  /// in the client's update.
  virtual void implant(nn::Sequential& model) = 0;

  /// Inverts one client update (tensors in model.parameters() order) into
  /// candidate image reconstructions ([C,H,W] each, unclamped).
  [[nodiscard]] virtual std::vector<tensor::Tensor> reconstruct(
      const std::vector<tensor::Tensor>& gradients) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Adapter plugging this attack into a fl::MaliciousServer.
  [[nodiscard]] fl::ModelManipulator manipulator() {
    return [this](nn::Sequential& model) { this->implant(model); };
  }
};

using AttackPtr = std::unique_ptr<ActiveAttack>;

namespace detail {

/// Locates the first Dense layer in `model` (the malicious slot of
/// make_attack_host) and returns it; throws if the model has none.
nn::Dense& find_first_dense(nn::Sequential& model);

/// Index of the first Dense's weight tensor within model.parameters()
/// (its bias follows at +1).
index_t first_dense_param_index(nn::Sequential& model);

}  // namespace detail
}  // namespace oasis::attack
