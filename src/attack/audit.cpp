#include "attack/audit.h"

#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/obs.h"

namespace oasis::attack {

fl::ModelAuditor make_model_auditor(AuditConfig config) {
  return [config](nn::Sequential& model, std::uint64_t round) {
    obs::counter("fl.audit.inspected").add();
    const DetectionReport report = inspect_first_dense(model, config.tol);

    std::ostringstream tripped;
    auto flag = [&tripped](const char* counter_name, const char* label) {
      obs::counter(std::string("fl.audit.reject.") + counter_name).add();
      if (tripped.tellp() > 0) tripped << ", ";
      tripped << label;
    };
    if (report.row_duplication > config.row_duplication_threshold) {
      flag("rtf_rows", "duplicated measurement rows");
    }
    if (report.bias_monotonicity > config.bias_monotonicity_threshold) {
      flag("bias_ladder", "monotone bias ladder");
    }
    if (report.row_norm_ratio > config.row_norm_ratio_threshold) {
      flag("norm_outlier", "row-norm outlier");
    }
    if (report.trap_half_negative > config.trap_half_negative_threshold) {
      flag("trap_rows", "half-negative trap rows");
    }
    if (tripped.tellp() == 0) return;

    obs::counter("fl.audit.refused").add();
    std::ostringstream os;
    os << "model audit refused round " << round << ": " << tripped.str()
       << " (row_duplication=" << report.row_duplication
       << ", bias_monotonicity=" << report.bias_monotonicity
       << ", row_norm_ratio=" << report.row_norm_ratio
       << ", trap_half_negative=" << report.trap_half_negative << ")";
    throw AuditError(os.str());
  };
}

}  // namespace oasis::attack
