// Client-side audit GATE: detection promoted from passive report to an
// enforcement point.
//
// inspect_first_dense() computes the implant screens; this module turns them
// into an fl::ModelAuditor that a client installs via set_model_auditor. When
// a dispatched global model trips a screen the auditor throws AuditError and
// the client gracefully refuses the round — the typed outcome engines catch
// to proceed with the remaining cohort (simulation paths mark the slot
// refused; the socket client simply never replies, so the server's round
// deadline excludes it like a straggler).
//
// Lives in attack/ (not fl/) because the dependency points this way: attack
// links fl, and the screens need nn::Dense internals the fl layer never sees.
#pragma once

#include "attack/detection.h"
#include "fl/client.h"

namespace oasis::attack {

/// Per-screen refusal thresholds. Defaults mirror
/// DetectionReport::suspicious() so the gate and the passive report agree;
/// each is overridable for sensitivity studies. Conservative by
/// construction: the honest-init false-positive sweep in defense_test pins
/// 0 refusals across 100+ seeds at these values.
struct AuditConfig {
  real row_duplication_threshold = 0.5;
  real bias_monotonicity_threshold = 0.95;
  real row_norm_ratio_threshold = 8.0;
  real trap_half_negative_threshold = 0.9;
  /// Row-equality tolerance forwarded to inspect_first_dense.
  real tol = 1e-9;
};

/// Builds the audit gate. Every invocation bumps fl.audit.inspected; a
/// refusal bumps fl.audit.refused plus one fl.audit.reject.{rtf_rows,
/// bias_ladder,norm_outlier,trap_rows} counter per tripped screen, then
/// throws AuditError naming the screens and the round. Deterministic and
/// stateless: re-auditing the same model yields the same verdict.
[[nodiscard]] fl::ModelAuditor make_model_auditor(AuditConfig config = {});

}  // namespace oasis::attack
