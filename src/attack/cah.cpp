#include "attack/cah.h"

#include <cmath>

#include "nn/dense.h"
#include "obs/obs.h"

namespace oasis::attack {

CahAttack::CahAttack(nn::ImageSpec spec, index_t neurons, real target_rate,
                     const data::InMemoryDataset& aux, std::uint64_t seed,
                     CahWeightMode mode)
    : spec_(spec), neurons_(neurons), target_rate_(target_rate), mode_(mode) {
  OASIS_CHECK(neurons_ >= 1);
  OASIS_CHECK_MSG(target_rate_ > 0.0 && target_rate_ < 1.0,
                  "activation rate " << target_rate_);
  const index_t d = spec_.pixels();
  common::Rng rng(seed);
  // Row scale 1/√d keeps pre-activations O(1) regardless of image size.
  rows_ = tensor::Tensor::randn({neurons_, d}, rng, 0.0,
                                1.0 / std::sqrt(static_cast<real>(d)));
  thresholds_.reserve(neurons_);

  if (mode_ == CahWeightMode::kQuantileCalibrated) {
    for (index_t i = 0; i < neurons_; ++i) {
      const auto values = measure_dataset(aux, rows_.row(i));
      thresholds_.push_back(empirical_quantile(values, 1.0 - target_rate_));
    }
    return;
  }

  // kTrapHalfNegative: make all entries positive-magnitude, negate a random
  // half, and rescale the negated half by γ so that the (1−ρ) quantile of
  // r·x over aux data sits at zero — then a zero bias realizes the target
  // activation rate. γ is found per row by a short bisection.
  for (index_t i = 0; i < neurons_; ++i) {
    auto row = rows_.data().subspan(i * d, d);
    for (auto& v : row) v = std::abs(v);
    // Choose the negated half.
    auto half = common::Rng(seed ^ (0x5A5A + i))
                    .sample_without_replacement(d, d / 2);
    std::vector<bool> negated(d, false);
    for (const auto j : half) negated[j] = true;

    const auto quantile_at = [&](real gamma) {
      tensor::Tensor probe({d});
      for (index_t j = 0; j < d; ++j) {
        probe[j] = negated[j] ? -gamma * row[j] : row[j];
      }
      return empirical_quantile(measure_dataset(aux, probe),
                                1.0 - target_rate_);
    };
    real lo = 0.0, hi = 16.0;  // quantile_at is decreasing in γ
    for (int iter = 0; iter < 48; ++iter) {
      const real mid = 0.5 * (lo + hi);
      (quantile_at(mid) > 0.0 ? lo : hi) = mid;
    }
    const real gamma = 0.5 * (lo + hi);
    for (index_t j = 0; j < d; ++j) {
      if (negated[j]) row[j] *= -gamma;
    }
    thresholds_.push_back(0.0);  // zero bias: the stealthy part of the trick
  }
}

void CahAttack::implant(nn::Sequential& model) {
  nn::Dense& malicious = detail::find_first_dense(model);
  OASIS_CHECK_MSG(malicious.in_features() == spec_.pixels() &&
                      malicious.out_features() == neurons_,
                  "CAH implant: host Dense is " << malicious.in_features()
                                                << "x"
                                                << malicious.out_features());
  malicious.weight().value = rows_;
  for (index_t i = 0; i < neurons_; ++i) {
    malicious.bias().value[i] = -thresholds_[i];
  }
  weight_param_index_ = detail::first_dense_param_index(model);
  implanted_ = true;
}

std::vector<tensor::Tensor> CahAttack::reconstruct(
    const std::vector<tensor::Tensor>& gradients) const {
  OASIS_CHECK_MSG(implanted_, "reconstruct() before implant()");
  OASIS_CHECK_MSG(weight_param_index_ + 1 < gradients.size(),
                  "gradient list too short");
  const tensor::Tensor& gw = gradients[weight_param_index_];
  const tensor::Tensor& gb = gradients[weight_param_index_ + 1];
  const index_t d = spec_.pixels();
  OASIS_CHECK_MSG(gw.rank() == 2 && gw.dim(0) == neurons_ && gw.dim(1) == d &&
                      gb.rank() == 1 && gb.dim(0) == neurons_,
                  "unexpected malicious-layer gradient shapes "
                      << tensor::to_string(gw.shape()) << " / "
                      << tensor::to_string(gb.shape()));

  real max_abs = 0.0;
  for (index_t i = 0; i < neurons_; ++i)
    max_abs = std::max(max_abs, std::abs(gb[i]));
  const real eps = std::max(1e-14, 1e-9 * max_abs);

  std::vector<tensor::Tensor> candidates;
  const tensor::Shape image_shape{spec_.channels, spec_.height, spec_.width};
  for (index_t i = 0; i < neurons_; ++i) {
    if (std::abs(gb[i]) <= eps) continue;  // neuron never fired
    tensor::Tensor img(image_shape);
    auto out = img.data();
    auto wr = gw.data();
    for (index_t j = 0; j < d; ++j) out[j] = wr[i * d + j] / gb[i];
    candidates.push_back(std::move(img));
  }
  // A fired trap is a neuron whose bias gradient carries mass — the CAH
  // analogue of RTF's leaked bin (Fig. 4/10 activation-hit accounting).
  static obs::Counter& calls = obs::counter("attack.cah.reconstruct_calls");
  static obs::Counter& fired = obs::counter("attack.cah.traps_fired");
  static obs::Counter& total = obs::counter("attack.cah.traps_total");
  calls.add(1);
  fired.add(candidates.size());
  total.add(neurons_);
  return candidates;
}

}  // namespace oasis::attack
