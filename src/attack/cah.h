// CAH — "Curious Abandon Honesty" (Boenisch et al., 2021): trap weights.
#pragma once

#include "attack/attack.h"
#include "attack/calibration.h"

namespace oasis::attack {

/// Trap-weights attack.
///
/// Implant: each attacked neuron gets an independent random projection row
/// r_i; the bias is set to −τ_i with τ_i the empirical (1 − ρ) quantile of
/// r_i·x over attacker aux data, so the neuron fires with probability
/// ρ ≈ 1/B and is, with high probability, activated by EXACTLY ONE sample of
/// the victim's batch. (Boenisch et al. achieve the same activation-sparsity
/// with half-negated data-scaled rows; quantile calibration is the
/// distribution-free equivalent and uses only attacker-side data.) The rest
/// of the network is left untouched — unlike RTF, CAH needs no control of
/// the return path.
///
/// Reconstruct: neurons activated by a single sample satisfy Eq. 2 exactly:
/// ΔW_i / Δb_i = x_t. Every neuron with non-negligible bias gradient yields
/// a candidate; multi-sample neurons produce linear-combination images that
/// simply score low in the best-match protocol.
/// How the trap rows and thresholds are built.
enum class CahWeightMode {
  /// Gaussian rows with biases at the (1−ρ) empirical quantile of r·x over
  /// aux data — the distribution-free calibration (default).
  kQuantileCalibrated,
  /// Boenisch et al.'s original construction: Gaussian rows with a random
  /// half of each row's entries negated and rescaled by a factor γ (fit on
  /// aux data) so that r·x lands above zero with probability ρ; biases are
  /// zero, making the layer look maximally innocuous.
  kTrapHalfNegative,
};

class CahAttack : public ActiveAttack {
 public:
  /// `target_rate` ρ is the desired per-neuron activation probability; the
  /// attacker sets it to 1/B using the protocol-known batch size.
  CahAttack(nn::ImageSpec spec, index_t neurons, real target_rate,
            const data::InMemoryDataset& aux, std::uint64_t seed = 0xCA11,
            CahWeightMode mode = CahWeightMode::kQuantileCalibrated);

  void implant(nn::Sequential& model) override;
  std::vector<tensor::Tensor> reconstruct(
      const std::vector<tensor::Tensor>& gradients) const override;
  [[nodiscard]] std::string name() const override { return "CAH"; }

  [[nodiscard]] index_t neurons() const { return neurons_; }

 private:
  nn::ImageSpec spec_;
  index_t neurons_;
  real target_rate_;
  CahWeightMode mode_;
  tensor::Tensor rows_;          // [n, d] random projections
  std::vector<real> thresholds_; // τ_i per neuron
  index_t weight_param_index_ = 0;
  bool implanted_ = false;
};

}  // namespace oasis::attack
