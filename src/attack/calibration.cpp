#include "attack/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace oasis::attack {

std::vector<real> measure_dataset(const data::InMemoryDataset& aux,
                                  const tensor::Tensor& w) {
  OASIS_CHECK(!aux.empty());
  OASIS_CHECK_MSG(w.size() == aux.image_dim(),
                  "measurement dim " << w.size() << " vs image dim "
                                     << aux.image_dim());
  std::vector<real> values;
  values.reserve(aux.size());
  for (index_t i = 0; i < aux.size(); ++i) {
    const auto img = aux.at(i).image.data();
    real s = 0.0;
    for (index_t j = 0; j < img.size(); ++j) s += w[j] * img[j];
    values.push_back(s);
  }
  return values;
}

std::vector<real> mean_brightness(const data::InMemoryDataset& aux) {
  const index_t d = aux.image_dim();
  tensor::Tensor w = tensor::Tensor::full({d}, 1.0 / static_cast<real>(d));
  return measure_dataset(aux, w);
}

real empirical_quantile(std::vector<real> sample, real q) {
  OASIS_CHECK_MSG(!sample.empty(), "quantile of empty sample");
  OASIS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile level " << q);
  std::sort(sample.begin(), sample.end());
  const real pos = q * static_cast<real>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const real frac = pos - std::floor(pos);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::vector<real> quantile_cutoffs(const std::vector<real>& sample,
                                   index_t n) {
  OASIS_CHECK(n >= 1);
  std::vector<real> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  std::vector<real> cutoffs;
  cutoffs.reserve(n);
  for (index_t i = 1; i <= n; ++i) {
    const real q = static_cast<real>(i) / static_cast<real>(n + 1);
    const real pos = q * static_cast<real>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const real frac = pos - std::floor(pos);
    cutoffs.push_back(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
  }
  return cutoffs;
}

}  // namespace oasis::attack
