// Attacker-side calibration from auxiliary data.
//
// Both RTF and CAH need to place activation cutoffs so that attacked neurons
// fire with a chosen probability under the victim's data distribution. The
// attack papers assume the server holds a small sample of in-distribution
// "auxiliary" data (public images); calibration reduces to empirical
// quantiles of a linear measurement over that sample.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace oasis::attack {

/// Evaluates the linear measurement w·flatten(x) for every image of `aux`.
std::vector<real> measure_dataset(const data::InMemoryDataset& aux,
                                  const tensor::Tensor& w);

/// Mean-brightness measurement values (w = 1/d) — RTF's scalar statistic.
std::vector<real> mean_brightness(const data::InMemoryDataset& aux);

/// Empirical quantile at level q ∈ [0,1] (linear interpolation). The input
/// is copied and sorted. Requires a non-empty sample.
real empirical_quantile(std::vector<real> sample, real q);

/// n cutoffs at levels 1/(n+1), ..., n/(n+1) of the sample — the RTF bin
/// boundaries. Sorted ascending.
std::vector<real> quantile_cutoffs(const std::vector<real>& sample,
                                   index_t n);

}  // namespace oasis::attack
