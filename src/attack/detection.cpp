#include "attack/detection.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/attack.h"
#include "nn/dense.h"

namespace oasis::attack {

DetectionReport inspect_first_dense(nn::Sequential& model, real tol) {
  nn::Dense& dense = detail::find_first_dense(model);
  const index_t n = dense.out_features();
  const index_t d = dense.in_features();
  const auto w = dense.weight().value.data();
  const auto& bias = dense.bias().value;

  DetectionReport report;
  if (n == 0) return report;

  // Row duplication against row 0.
  std::vector<real> row_norms(n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    real s = 0.0;
    for (index_t j = 0; j < d; ++j) s += w[i * d + j] * w[i * d + j];
    row_norms[i] = std::sqrt(s);
  }
  index_t duplicated = 0;
  const real ref_norm = std::max(row_norms[0], real{1e-30});
  for (index_t i = 1; i < n; ++i) {
    real diff = 0.0;
    for (index_t j = 0; j < d; ++j) {
      const real delta = w[i * d + j] - w[j];
      diff += delta * delta;
    }
    if (std::sqrt(diff) <= tol * ref_norm) ++duplicated;
  }
  report.row_duplication =
      n > 1 ? static_cast<real>(duplicated) / static_cast<real>(n - 1) : 0.0;

  // Bias ladder: fraction of adjacent strictly-monotone steps (take the
  // dominant direction).
  if (n > 1) {
    index_t increasing = 0, decreasing = 0;
    for (index_t i = 1; i < n; ++i) {
      if (bias[i] > bias[i - 1]) ++increasing;
      if (bias[i] < bias[i - 1]) ++decreasing;
    }
    report.bias_monotonicity =
        static_cast<real>(std::max(increasing, decreasing)) /
        static_cast<real>(n - 1);
  }

  // Row-norm outlier ratio.
  std::vector<real> sorted = row_norms;
  std::sort(sorted.begin(), sorted.end());
  const real median = sorted[sorted.size() / 2];
  if (median > 0.0) {
    report.row_norm_ratio = sorted.back() / median;
  }
  return report;
}

}  // namespace oasis::attack
