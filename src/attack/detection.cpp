#include "attack/detection.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/attack.h"
#include "nn/dense.h"

namespace oasis::attack {

DetectionReport inspect_first_dense(nn::Sequential& model, real tol) {
  nn::Dense& dense = detail::find_first_dense(model);
  const index_t n = dense.out_features();
  const index_t d = dense.in_features();
  const auto w = dense.weight().value.data();
  const auto& bias = dense.bias().value;

  DetectionReport report;
  if (n == 0) return report;

  // Row duplication against row 0.
  std::vector<real> row_norms(n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    real s = 0.0;
    for (index_t j = 0; j < d; ++j) s += w[i * d + j] * w[i * d + j];
    row_norms[i] = std::sqrt(s);
  }
  index_t duplicated = 0;
  const real ref_norm = std::max(row_norms[0], real{1e-30});
  for (index_t i = 1; i < n; ++i) {
    real diff = 0.0;
    for (index_t j = 0; j < d; ++j) {
      const real delta = w[i * d + j] - w[j];
      diff += delta * delta;
    }
    if (std::sqrt(diff) <= tol * ref_norm) ++duplicated;
  }
  report.row_duplication =
      n > 1 ? static_cast<real>(duplicated) / static_cast<real>(n - 1) : 0.0;

  // Bias ladder: fraction of adjacent strictly-monotone steps (take the
  // dominant direction).
  if (n > 1) {
    index_t increasing = 0, decreasing = 0;
    for (index_t i = 1; i < n; ++i) {
      if (bias[i] > bias[i - 1]) ++increasing;
      if (bias[i] < bias[i - 1]) ++decreasing;
    }
    report.bias_monotonicity =
        static_cast<real>(std::max(increasing, decreasing)) /
        static_cast<real>(n - 1);
  }

  // Row-norm outlier ratio.
  std::vector<real> sorted = row_norms;
  std::sort(sorted.begin(), sorted.end());
  const real median = sorted[sorted.size() / 2];
  if (median > 0.0) {
    report.row_norm_ratio = sorted.back() / median;
  }

  // Half-negative trap rows (CAH's original construction): per row, count
  // exact floor(d/2) negative-sign splits and the magnitude asymmetry the
  // calibration rescale leaves between the halves. signbit (not < 0) so a
  // degenerate γ = 0 rescale (−0.0 entries) still counts as negated.
  if (d >= DetectionReport::kTrapMinFeatures) {
    index_t exact_half = 0;
    std::vector<real> ratios;
    ratios.reserve(n);
    for (index_t i = 0; i < n; ++i) {
      index_t negatives = 0;
      real neg_mag = 0.0, pos_mag = 0.0;
      for (index_t j = 0; j < d; ++j) {
        const real v = w[i * d + j];
        if (std::signbit(v)) {
          ++negatives;
          neg_mag -= v;
        } else {
          pos_mag += v;
        }
      }
      if (negatives == d / 2) ++exact_half;
      if (negatives > 0 && negatives < d) {
        const real neg_mean = neg_mag / static_cast<real>(negatives);
        const real pos_mean = pos_mag / static_cast<real>(d - negatives);
        if (pos_mean > 0.0) ratios.push_back(neg_mean / pos_mean);
      }
    }
    report.trap_half_negative =
        static_cast<real>(exact_half) / static_cast<real>(n);
    if (!ratios.empty()) {
      std::sort(ratios.begin(), ratios.end());
      report.trap_asymmetry = ratios[ratios.size() / 2];
    }
  }
  return report;
}

}  // namespace oasis::attack
