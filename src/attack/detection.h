// Client-side implant detection heuristics.
//
// The threat model notes the server's modification "should be minimal to
// avoid detection". This module gives the client the obvious counterpart: a
// statistical inspection of the dispatched model's first FC layer for the
// structural signatures the known attacks leave behind. RTF's imprint module
// (identical weight rows + a monotone bias ladder) is blatantly detectable;
// CAH's trap weights are designed to look like ordinary random weights and
// evade both tests — which is exactly why a principled defense like OASIS is
// needed rather than model screening.
#pragma once

#include "nn/sequential.h"

namespace oasis::attack {

struct DetectionReport {
  /// Fraction of first-layer rows that are (near-)identical to row 0 —
  /// RTF's measurement-vector signature. 1.0 for an RTF implant, ~0 honest.
  real row_duplication = 0.0;
  /// Fraction of adjacent bias pairs that are strictly monotone in one
  /// direction — RTF's quantile-ladder signature. Near 1.0 for RTF, ~0.5
  /// for i.i.d. biases, 0 for all-zero (honest init).
  real bias_monotonicity = 0.0;
  /// Ratio of the largest to median row L2 norm — crude outlier probe.
  real row_norm_ratio = 1.0;

  /// Conservative verdict: trips on RTF-style implants.
  [[nodiscard]] bool suspicious() const {
    return row_duplication > 0.5 || bias_monotonicity > 0.95;
  }
};

/// Inspects the first Dense layer of `model`. `tol` is the row-equality
/// tolerance (relative to row norm).
DetectionReport inspect_first_dense(nn::Sequential& model, real tol = 1e-9);

}  // namespace oasis::attack
