// Client-side implant detection heuristics.
//
// The threat model notes the server's modification "should be minimal to
// avoid detection". This module gives the client the obvious counterpart: a
// statistical inspection of the dispatched model's first FC layer for the
// structural signatures the known attacks leave behind. RTF's imprint module
// (identical weight rows + a monotone bias ladder) is blatantly detectable;
// CAH's trap weights are designed to look like ordinary random weights and
// evade both tests — which is exactly why a principled defense like OASIS is
// needed rather than model screening.
#pragma once

#include "nn/sequential.h"

namespace oasis::attack {

struct DetectionReport {
  /// Fraction of first-layer rows that are (near-)identical to row 0 —
  /// RTF's measurement-vector signature. 1.0 for an RTF implant, ~0 honest.
  real row_duplication = 0.0;
  /// Fraction of adjacent bias pairs that are strictly monotone in one
  /// direction — RTF's quantile-ladder signature. Near 1.0 for RTF, ~0.5
  /// for i.i.d. biases, 0 for all-zero (honest init).
  real bias_monotonicity = 0.0;
  /// Ratio of the largest to median row L2 norm — crude outlier probe for
  /// scale-blowup-style implants (a deliberately amplified trap row).
  real row_norm_ratio = 1.0;
  /// Fraction of rows with EXACTLY floor(d/2) negative entries — the
  /// half-negative trap-row fingerprint of CAH's original construction
  /// (Boenisch et al.: negate a uniformly chosen half of each row). Honest
  /// Gaussian rows hit exactly d/2 with probability ~sqrt(2/(π·d)) (~1.4%
  /// at d = 3072), so an all-rows hit is astronomically unlikely honestly.
  /// 0 when d < kTrapMinFeatures (the binomial is too coarse to be
  /// evidence at tiny widths).
  real trap_half_negative = 0.0;
  /// Median over rows of mean|negative entry| / mean|positive entry| — the
  /// trap rows' second fingerprint: the negated half is rescaled by a
  /// calibration factor γ, skewing the ratio away from the honest ≈1.
  /// Reported as evidence, not consulted by the verdict (γ ≈ 1 is possible
  /// for symmetric data).
  real trap_asymmetry = 1.0;

  /// Minimum first-layer width for the half-negative screen to be
  /// meaningful (below it exact half-splits are common honestly).
  static constexpr index_t kTrapMinFeatures = 16;

  /// Conservative verdict: trips on RTF-style implants (duplicated rows or
  /// a bias ladder), norm-outlier rows, and CAH's half-negative trap rows.
  /// The quantile-calibrated CAH variant evades all four BY DESIGN — which
  /// is exactly why a principled defense like OASIS is needed on top of
  /// screening. Thresholds are conservative: across honest random inits the
  /// screens sit orders of magnitude below them (the audit false-positive
  /// sweep in defense_test pins 0 FPs over 100+ seeds).
  [[nodiscard]] bool suspicious() const {
    return row_duplication > 0.5 || bias_monotonicity > 0.95 ||
           row_norm_ratio > 8.0 || trap_half_negative > 0.9;
  }
};

/// Inspects the first Dense layer of `model`. `tol` is the row-equality
/// tolerance (relative to row norm).
DetectionReport inspect_first_dense(nn::Sequential& model, real tol = 1e-9);

}  // namespace oasis::attack
