#include "attack/linear_inversion.h"

#include <cmath>

#include "nn/dense.h"

namespace oasis::attack {

LinearInversionAttack::LinearInversionAttack(nn::ImageSpec spec,
                                             index_t classes)
    : spec_(spec), classes_(classes) {
  OASIS_CHECK(classes_ >= 2);
}

void LinearInversionAttack::implant(nn::Sequential& model) {
  nn::Dense& layer = detail::find_first_dense(model);
  OASIS_CHECK_MSG(layer.in_features() == spec_.pixels() &&
                      layer.out_features() == classes_,
                  "LinearInversion: model Dense is "
                      << layer.in_features() << "x" << layer.out_features());
  // Confident-negative linear model: σ(Wx+b) ≈ 0 for every class, so each
  // class row's gradient is carried (almost) solely by the sample labeled
  // with that class.
  layer.weight().value.fill(0.0);
  layer.bias().value.fill(-16.0);
  weight_param_index_ = detail::first_dense_param_index(model);
  implanted_ = true;
}

std::vector<tensor::Tensor> LinearInversionAttack::reconstruct(
    const std::vector<tensor::Tensor>& gradients) const {
  OASIS_CHECK_MSG(implanted_, "reconstruct() before implant()");
  OASIS_CHECK_MSG(weight_param_index_ + 1 < gradients.size(),
                  "gradient list too short");
  const tensor::Tensor& gw = gradients[weight_param_index_];
  const tensor::Tensor& gb = gradients[weight_param_index_ + 1];
  const index_t d = spec_.pixels();
  OASIS_CHECK_MSG(gw.rank() == 2 && gw.dim(0) == classes_ && gw.dim(1) == d &&
                      gb.rank() == 1 && gb.dim(0) == classes_,
                  "unexpected linear-model gradient shapes");

  real max_abs = 0.0;
  for (index_t c = 0; c < classes_; ++c)
    max_abs = std::max(max_abs, std::abs(gb[c]));
  const real eps = std::max(1e-14, 1e-9 * max_abs);

  std::vector<tensor::Tensor> candidates;
  const tensor::Shape image_shape{spec_.channels, spec_.height, spec_.width};
  for (index_t c = 0; c < classes_; ++c) {
    if (std::abs(gb[c]) <= eps) continue;
    tensor::Tensor img(image_shape);
    auto out = img.data();
    auto wr = gw.data();
    for (index_t j = 0; j < d; ++j) out[j] = wr[c * d + j] / gb[c];
    candidates.push_back(std::move(img));
  }
  return candidates;
}

}  // namespace oasis::attack
