// Gradient inversion on linear models (Geiping et al. 2020 / Fowl et al.
// 2021; evaluated in the paper's Appendix D, Figure 13).
#pragma once

#include "attack/attack.h"

namespace oasis::attack {

/// Inversion of a single-layer softmax classifier.
///
/// With model logits z = Wx + b and the one-vs-all logistic loss the paper's
/// Appendix D prescribes, each class row obeys ΔW_c = Σ_j δ_{j,c} x_j and
/// Δb_c = Σ_j δ_{j,c} with δ_{j,c} = σ(z_{j,c}) − y_{j,c}. The implant sets
/// W = 0 and b strongly negative so σ(z) ≈ 0: a sample then contributes
/// δ ≈ −1 to its OWN class row and ≈ 0 elsewhere, and with unique labels per
/// batch (the Appendix D assumption) ΔW_c / Δb_c reconstructs x_t to within
/// floating-point error. Under OASIS the augmented copies share the label,
/// so the row reconstructs their average — a linear combination.
class LinearInversionAttack : public ActiveAttack {
 public:
  LinearInversionAttack(nn::ImageSpec spec, index_t classes);

  void implant(nn::Sequential& model) override;
  std::vector<tensor::Tensor> reconstruct(
      const std::vector<tensor::Tensor>& gradients) const override;
  [[nodiscard]] std::string name() const override { return "LinearInv"; }

 private:
  nn::ImageSpec spec_;
  index_t classes_;
  index_t weight_param_index_ = 0;
  bool implanted_ = false;
};

}  // namespace oasis::attack
