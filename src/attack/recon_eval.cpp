#include "attack/recon_eval.h"

#include <cmath>

#include "common/error.h"
#include "data/image.h"
#include "metrics/psnr.h"
#include "obs/obs.h"

namespace oasis::attack {

/// A best-match PSNR at or above this is a verbatim pixel copy (the paper's
/// 130–145 dB signature, with headroom for small batches): the structured
/// counterpart of the old printf tallies.
constexpr real kVerbatimLeakDb = 90.0;

namespace {

bool all_finite(const tensor::Tensor& t) {
  for (const auto v : t.data()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

std::vector<ImageScore> best_match_psnr(
    const std::vector<tensor::Tensor>& candidates,
    const std::vector<tensor::Tensor>& originals) {
  OASIS_CHECK_MSG(!originals.empty(), "scoring against zero originals");

  std::vector<tensor::Tensor> clamped;
  clamped.reserve(candidates.size());
  std::vector<index_t> candidate_ids;
  for (index_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].shape() != originals.front().shape()) continue;
    if (!all_finite(candidates[i])) continue;
    clamped.push_back(data::clamp01(candidates[i]));
    candidate_ids.push_back(i);
  }

  static obs::Counter& images = obs::counter("attack.recon.images_scored");
  static obs::Counter& cands = obs::counter("attack.recon.candidates_valid");
  static obs::Counter& dropped = obs::counter("attack.recon.candidates_dropped");
  static obs::Counter& verbatim = obs::counter("attack.recon.leaks_verbatim");
  cands.add(clamped.size());
  dropped.add(candidates.size() - clamped.size());

  std::vector<ImageScore> scores;
  scores.reserve(originals.size());
  for (index_t o = 0; o < originals.size(); ++o) {
    ImageScore score;
    score.original_index = o;
    score.best_psnr = 0.0;
    for (index_t c = 0; c < clamped.size(); ++c) {
      const real value = metrics::psnr(clamped[c], originals[o]);
      if (value > score.best_psnr) {
        score.best_psnr = value;
        score.best_candidate = candidate_ids[c];
      }
    }
    images.add(1);
    if (score.best_psnr >= kVerbatimLeakDb) verbatim.add(1);
    scores.push_back(score);
  }
  return scores;
}

std::vector<real> psnr_values(const std::vector<ImageScore>& scores) {
  std::vector<real> values;
  values.reserve(scores.size());
  for (const auto& s : scores) values.push_back(s.best_psnr);
  return values;
}

}  // namespace oasis::attack
