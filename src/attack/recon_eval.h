// Scoring reconstructions against ground truth — the paper's PSNR protocol.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace oasis::attack {

/// Best reconstruction found for one original image.
struct ImageScore {
  index_t original_index = 0;
  /// PSNR (dB) of the best-matching candidate (−inf if no candidates).
  real best_psnr = 0.0;
  /// Index into the candidate list of that best match.
  index_t best_candidate = 0;
};

/// For every original, finds the candidate with maximum PSNR (candidates are
/// clamped to [0,1] first, as the breaching framework does before scoring).
/// Candidates containing non-finite values are skipped. Returns one score
/// per original; when no valid candidate exists best_psnr is 0.
std::vector<ImageScore> best_match_psnr(
    const std::vector<tensor::Tensor>& candidates,
    const std::vector<tensor::Tensor>& originals);

/// Convenience: extracts just the per-original PSNR values.
std::vector<real> psnr_values(const std::vector<ImageScore>& scores);

}  // namespace oasis::attack
