#include "attack/rtf.h"

#include <cmath>

#include "nn/dense.h"
#include "obs/obs.h"

namespace oasis::attack {
namespace detail {

nn::Dense& find_first_dense(nn::Sequential& model) {
  for (index_t i = 0; i < model.size(); ++i) {
    if (auto* dense = dynamic_cast<nn::Dense*>(&model.at(i))) return *dense;
  }
  throw Error("model has no Dense layer to implant into");
}

index_t first_dense_param_index(nn::Sequential& model) {
  nn::Dense& target = find_first_dense(model);
  const auto params = model.parameters();
  for (index_t i = 0; i < params.size(); ++i) {
    if (params[i] == &target.weight()) return i;
  }
  throw Error("malicious Dense not found in parameter list");
}

/// The Dense layer immediately following the malicious block's ReLU, if any.
nn::Dense* find_second_dense(nn::Sequential& model) {
  bool seen_first = false;
  for (index_t i = 0; i < model.size(); ++i) {
    if (auto* dense = dynamic_cast<nn::Dense*>(&model.at(i))) {
      if (seen_first) return dense;
      seen_first = true;
    }
  }
  return nullptr;
}

}  // namespace detail

RtfAttack::RtfAttack(nn::ImageSpec spec, index_t neurons,
                     const data::InMemoryDataset& aux)
    : spec_(spec), neurons_(neurons) {
  OASIS_CHECK_MSG(neurons_ >= 2, "RTF needs at least 2 bins");
  cutoffs_ = quantile_cutoffs(mean_brightness(aux), neurons_);
}

void RtfAttack::implant(nn::Sequential& model) {
  nn::Dense& malicious = detail::find_first_dense(model);
  OASIS_CHECK_MSG(malicious.in_features() == spec_.pixels() &&
                      malicious.out_features() == neurons_,
                  "RTF implant: host Dense is " << malicious.in_features()
                                                << "x"
                                                << malicious.out_features());
  const index_t d = spec_.pixels();
  const real h = 1.0 / static_cast<real>(d);  // mean-brightness measurement
  auto w = malicious.weight().value.data();
  for (index_t i = 0; i < neurons_; ++i) {
    for (index_t j = 0; j < d; ++j) w[i * d + j] = h;
    malicious.bias().value[i] = -cutoffs_[i];
  }

  // Make the following layer's columns identical so every attacked neuron
  // receives the same per-sample loss gradient (the "uniform return path").
  // Distinct per-output values keep Σ_c δ_c v_c from vanishing.
  if (auto* next = detail::find_second_dense(model)) {
    const index_t out = next->out_features();
    const index_t in = next->in_features();
    auto v = next->weight().value.data();
    for (index_t o = 0; o < out; ++o) {
      const real value = 0.05 * (static_cast<real>(o) + 1.0) /
                         static_cast<real>(out);
      for (index_t i = 0; i < in; ++i) v[o * in + i] = value;
    }
    next->bias().value.fill(0.0);
  }

  weight_param_index_ = detail::first_dense_param_index(model);
  implanted_ = true;
}

std::vector<tensor::Tensor> RtfAttack::reconstruct(
    const std::vector<tensor::Tensor>& gradients) const {
  OASIS_CHECK_MSG(implanted_, "reconstruct() before implant()");
  OASIS_CHECK_MSG(weight_param_index_ + 1 < gradients.size(),
                  "gradient list too short");
  const tensor::Tensor& gw = gradients[weight_param_index_];
  const tensor::Tensor& gb = gradients[weight_param_index_ + 1];
  const index_t d = spec_.pixels();
  OASIS_CHECK_MSG(gw.rank() == 2 && gw.dim(0) == neurons_ && gw.dim(1) == d &&
                      gb.rank() == 1 && gb.dim(0) == neurons_,
                  "unexpected malicious-layer gradient shapes "
                      << tensor::to_string(gw.shape()) << " / "
                      << tensor::to_string(gb.shape()));

  // Numerical floor for "this bin is empty": relative to the largest bias
  // gradient so the scale of the loss does not matter.
  real max_abs = 0.0;
  for (index_t i = 0; i < neurons_; ++i)
    max_abs = std::max(max_abs, std::abs(gb[i]));
  const real eps = std::max(1e-14, 1e-9 * max_abs);

  std::vector<tensor::Tensor> candidates;
  const tensor::Shape image_shape{spec_.channels, spec_.height, spec_.width};
  for (index_t i = 0; i < neurons_; ++i) {
    const bool last = i + 1 == neurons_;
    const real denom = last ? gb[i] : gb[i] - gb[i + 1];
    if (std::abs(denom) <= eps) continue;
    tensor::Tensor img(image_shape);
    auto out = img.data();
    auto wr = gw.data();
    if (last) {
      for (index_t j = 0; j < d; ++j) out[j] = wr[i * d + j] / denom;
    } else {
      for (index_t j = 0; j < d; ++j)
        out[j] = (wr[i * d + j] - wr[(i + 1) * d + j]) / denom;
    }
    candidates.push_back(std::move(img));
  }
  // Attack-success accounting: a "leaked bin" is an adjacent-bin difference
  // with non-vanishing gradient mass — the unit the paper's Fig. 3/9 rates
  // are counted over.
  static obs::Counter& calls = obs::counter("attack.rtf.reconstruct_calls");
  static obs::Counter& leaked = obs::counter("attack.rtf.bins_leaked");
  static obs::Counter& total = obs::counter("attack.rtf.bins_total");
  calls.add(1);
  leaked.add(candidates.size());
  total.add(neurons_);
  return candidates;
}

}  // namespace oasis::attack
