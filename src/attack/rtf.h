// RTF — "Robbing the Fed" (Fowl et al., 2021): the imprint-module attack.
#pragma once

#include "attack/attack.h"
#include "attack/calibration.h"

namespace oasis::attack {

/// Imprint-module attack.
///
/// Implant: every row of the malicious layer's weight matrix is the same
/// measurement vector h (mean brightness, h = 1/d); bias i is −c_i where the
/// cutoffs c_i are empirical quantiles of h·x over attacker-side aux data.
/// Neuron i therefore computes ReLU(h·x − c_i) and fires for every sample
/// brighter than its cutoff. The layer FOLLOWING the malicious block is also
/// attacker-chosen with identical columns, which makes the loss gradient
/// arriving at every attacked neuron the same per-sample value g_j — the
/// property that turns adjacent-bin gradient differences into single-sample
/// isolators.
///
/// Reconstruct: for adjacent neurons (i, i+1),
///     (ΔW_i − ΔW_{i+1}) / (Δb_i − Δb_{i+1})
/// equals Σ_{j in bin i} g_j·x_j / Σ g_j — exactly one sample's x_j whenever
/// that sample is alone in brightness bin (c_i, c_{i+1}] (paper Eq. 2/3).
class RtfAttack : public ActiveAttack {
 public:
  /// `aux` is the attacker's public calibration sample (never the victim's
  /// data). `neurons` = n, the number of attacked neurons / bins.
  RtfAttack(nn::ImageSpec spec, index_t neurons,
            const data::InMemoryDataset& aux);

  void implant(nn::Sequential& model) override;
  std::vector<tensor::Tensor> reconstruct(
      const std::vector<tensor::Tensor>& gradients) const override;
  [[nodiscard]] std::string name() const override { return "RTF"; }

  [[nodiscard]] index_t neurons() const { return neurons_; }
  [[nodiscard]] const std::vector<real>& cutoffs() const { return cutoffs_; }

 private:
  nn::ImageSpec spec_;
  index_t neurons_;
  std::vector<real> cutoffs_;   // ascending bin boundaries
  index_t weight_param_index_ = 0;  // set by implant()
  bool implanted_ = false;
};

}  // namespace oasis::attack
