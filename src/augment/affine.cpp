#include "augment/affine.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "data/image.h"

namespace oasis::augment {
namespace {

void check_square_for_quarter_turn(const tensor::Tensor& image) {
  OASIS_CHECK_MSG(image.dim(1) == image.dim(2),
                  "quarter-turn rotation requires square images, got "
                      << tensor::to_string(image.shape()));
}

}  // namespace

AffineMatrix rotation_matrix(real theta, index_t height, index_t width) {
  // Inverse map for a counter-clockwise rotation by theta about the center
  // (so rotate(img, π/2) agrees with the exact rotate90). In image row/col
  // coordinates (y grows downward) ccw means sampling the source at R(θ).
  const real cx = (static_cast<real>(width) - 1.0) / 2.0;
  const real cy = (static_cast<real>(height) - 1.0) / 2.0;
  const real c = std::cos(theta), s = std::sin(theta);
  return AffineMatrix{c,  -s, cx - c * cx + s * cy,
                      s,  c,  cy - s * cx - c * cy};
}

AffineMatrix shear_matrix(real mu, index_t height, index_t width) {
  // Forward map: x' = x + mu*(y - cy), y' = y (about the vertical center so
  // the content stays framed). Inverse: x = x' - mu*(y' - cy).
  const real cy = (static_cast<real>(height) - 1.0) / 2.0;
  (void)width;
  return AffineMatrix{1.0, -mu, mu * cy, 0.0, 1.0, 0.0};
}

namespace {

// Lanczos-3 resampling kernel: sinc(x)·sinc(x/3) on |x| < 3.
//
// The warp inverse-consistency sweeps demand that warp(θ) ∘ warp(−θ) stay
// near the identity on the interior even for white-noise images. Ideal sinc
// resampling round-trips EXACTLY (sampling a bandlimited reconstruction on a
// shifted lattice and interpolating back is the identity on grid points);
// a 6-tap Lanczos window is close enough to that ideal, where the 2-tap
// bilinear and 4-tap cubic kernels blur noise beyond recognition. The kernel
// interpolates (weights at integer offsets are {…,0,1,0,…}), so exact
// transforms like rotate(0) and rotate(π/2) still reproduce the input /
// the quarter-turn permutation to machine precision.
constexpr int kLanczosA = 3;

real lanczos3(real x) {
  if (x == 0.0) return 1.0;
  const real ax = std::abs(x);
  if (ax >= static_cast<real>(kLanczosA)) return 0.0;
  constexpr real kPi = 3.14159265358979323846;
  const real px = kPi * x;
  return static_cast<real>(kLanczosA) * std::sin(px) *
         std::sin(px / kLanczosA) / (px * px);
}

// Weights for the 6 taps at offsets {-2,…,3} around floor(t), normalized to
// sum to 1 so flat fields (and image means, up to boundary fill) survive.
void lanczos3_weights(real t, real w[2 * kLanczosA]) {
  real sum = 0.0;
  for (int i = 0; i < 2 * kLanczosA; ++i) {
    w[i] = lanczos3(t - static_cast<real>(i - (kLanczosA - 1)));
    sum += w[i];
  }
  for (int i = 0; i < 2 * kLanczosA; ++i) w[i] /= sum;
}

}  // namespace

tensor::Tensor warp_affine(const tensor::Tensor& image,
                           const AffineMatrix& m, real fill) {
  data::check_image(image);
  constexpr int kTaps = 2 * kLanczosA;
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      const real fx = static_cast<real>(x);
      const real fy = static_cast<real>(y);
      const real sx = m[0] * fx + m[1] * fy + m[2];
      const real sy = m[3] * fx + m[4] * fy + m[5];
      const real x0f = std::floor(sx), y0f = std::floor(sy);
      const auto x0 = static_cast<std::ptrdiff_t>(x0f);
      const auto y0 = static_cast<std::ptrdiff_t>(y0f);
      real wx[kTaps], wy[kTaps];
      lanczos3_weights(sx - x0f, wx);
      lanczos3_weights(sy - y0f, wy);
      for (index_t ch = 0; ch < c; ++ch) {
        auto sample = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> real {
          if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h) || xx < 0 ||
              xx >= static_cast<std::ptrdiff_t>(w)) {
            return fill;
          }
          return image.at3(ch, static_cast<index_t>(yy),
                           static_cast<index_t>(xx));
        };
        real v = 0.0;
        for (int i = 0; i < kTaps; ++i) {
          const real wyi = wy[i];
          if (wyi == 0.0) continue;
          real row = 0.0;
          for (int j = 0; j < kTaps; ++j) {
            if (wx[j] == 0.0) continue;
            row += wx[j] * sample(y0 + i - (kLanczosA - 1),
                                  x0 + j - (kLanczosA - 1));
          }
          v += wyi * row;
        }
        out.at3(ch, y, x) = v;
      }
    }
  }
  return out;
}

tensor::Tensor rotate90(const tensor::Tensor& image) {
  data::check_image(image);
  check_square_for_quarter_turn(image);
  const index_t c = image.dim(0), n = image.dim(1);
  tensor::Tensor out({c, n, n});
  // 90° counter-clockwise: out(i, j) = in(j, n-1-i).
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        out.at3(ch, i, j) = image.at3(ch, j, n - 1 - i);
  return out;
}

tensor::Tensor rotate180(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, h - 1 - i, w - 1 - j);
  return out;
}

tensor::Tensor rotate270(const tensor::Tensor& image) {
  data::check_image(image);
  check_square_for_quarter_turn(image);
  const index_t c = image.dim(0), n = image.dim(1);
  tensor::Tensor out({c, n, n});
  // 270° ccw == 90° cw: out(i, j) = in(n-1-j, i).
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        out.at3(ch, i, j) = image.at3(ch, n - 1 - j, i);
  return out;
}

tensor::Tensor flip_horizontal(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, i, w - 1 - j);
  return out;
}

tensor::Tensor flip_vertical(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, h - 1 - i, j);
  return out;
}

namespace {

constexpr real kPi = 3.14159265358979323846;

// Periodic (Dirichlet) sinc kernel of period n evaluated at offset t — the
// interpolator under which a circular shift of a length-n sequence is
// exactly invertible: shifting by δ and then by −δ composes to the identity
// up to floating-point rounding (the even-n Nyquist bin is carried as a
// cosine, whose |cos²(πδ)| attenuation is the only sub-ulp-breaking term).
real dirichlet(index_t n, real t) {
  t -= static_cast<real>(n) * std::round(t / static_cast<real>(n));
  if (std::abs(t) < 1e-12) return 1.0;
  const real num = std::sin(kPi * t);
  const real arg = kPi * t / static_cast<real>(n);
  if (n % 2 == 0) return num / (static_cast<real>(n) * std::tan(arg));
  return num / (static_cast<real>(n) * std::sin(arg));
}

// out[i] = Σ_k in[k] · D_n(i − delta − k): the length-n sequence at `src`
// (elements `stride` apart) circularly shifted by `delta`, written to the
// contiguous scratch buffer `dst`.
void sinc_shift(const real* src, real* dst, index_t n, index_t stride,
                real delta) {
  // Integer shifts are pure (exact) rotations of the sequence.
  const real rounded = std::round(delta);
  if (std::abs(delta - rounded) < 1e-12) {
    const auto s = static_cast<std::ptrdiff_t>(rounded);
    for (index_t i = 0; i < n; ++i) {
      const index_t k = static_cast<index_t>(
          ((static_cast<std::ptrdiff_t>(i) - s) % static_cast<std::ptrdiff_t>(n) +
           static_cast<std::ptrdiff_t>(n)) %
          static_cast<std::ptrdiff_t>(n));
      dst[i] = src[k * stride];
    }
    return;
  }
  std::vector<real> kernel(n);
  for (index_t j = 0; j < n; ++j) {
    kernel[j] = dirichlet(n, static_cast<real>(j) - delta);
  }
  for (index_t i = 0; i < n; ++i) {
    real v = 0.0;
    for (index_t k = 0; k < n; ++k) {
      v += src[k * stride] * kernel[(i + n - k) % n];
    }
    dst[i] = v;
  }
}

// In-place horizontal shear x' = x + a·(y − cy): every row circularly
// shifted through the Dirichlet interpolator.
void shear_rows(tensor::Tensor& image, real a) {
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  const real cy = (static_cast<real>(h) - 1.0) / 2.0;
  std::vector<real> row(w);
  real* base = image.data().data();
  for (index_t ch = 0; ch < c; ++ch) {
    for (index_t y = 0; y < h; ++y) {
      real* r = base + (ch * h + y) * w;
      const real delta = a * (static_cast<real>(y) - cy);
      sinc_shift(r, row.data(), w, 1, delta);
      for (index_t x = 0; x < w; ++x) r[x] = row[x];
    }
  }
}

// In-place vertical shear y' = y + b·(x − cx): every column shifted.
void shear_cols(tensor::Tensor& image, real b) {
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  const real cx = (static_cast<real>(w) - 1.0) / 2.0;
  std::vector<real> col(h);
  real* base = image.data().data();
  for (index_t ch = 0; ch < c; ++ch) {
    for (index_t x = 0; x < w; ++x) {
      real* top = base + ch * h * w + x;
      const real delta = b * (static_cast<real>(x) - cx);
      sinc_shift(top, col.data(), h, w, delta);
      for (index_t y = 0; y < h; ++y) top[y * w] = col[y];
    }
  }
}

// Zeroes every pixel whose inverse-map source falls outside the frame,
// recovering the zero-fill semantics of a conventional resampling warp
// (minor rotation loses corner mass — deliberately NOT mean-preserving).
void mask_out_of_frame(tensor::Tensor& image, const AffineMatrix& m) {
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  constexpr real kEps = 1e-9;
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      const real sx = m[0] * x + m[1] * y + m[2];
      const real sy = m[3] * x + m[4] * y + m[5];
      if (sx >= -kEps && sx <= static_cast<real>(w) - 1.0 + kEps &&
          sy >= -kEps && sy <= static_cast<real>(h) - 1.0 + kEps) {
        continue;
      }
      for (index_t ch = 0; ch < c; ++ch) image.at3(ch, y, x) = 0.0;
    }
  }
}

}  // namespace

tensor::Tensor rotate(const tensor::Tensor& image, real theta) {
  data::check_image(image);
  // Reduce to (−π, π] and take exact quarter-turn permutations when the
  // angle lands on one (grid points map to grid points).
  real t = std::remainder(theta, 2.0 * kPi);
  constexpr real kSnap = 1e-12;
  const bool square = image.dim(1) == image.dim(2);
  if (std::abs(t) < kSnap) return image;
  if (std::abs(std::abs(t) - kPi) < kSnap) return rotate180(image);
  if (square && std::abs(t - kPi / 2.0) < kSnap) return rotate90(image);
  if (square && std::abs(t + kPi / 2.0) < kSnap) return rotate270(image);
  // Pull large angles into (−π/2, π/2) through exact quarter turns so the
  // shear factors stay small (tan(t/2) < 1).
  tensor::Tensor base = image;
  if (square && t > kPi / 2.0) {
    base = rotate90(base);
    t -= kPi / 2.0;
  } else if (square && t < -kPi / 2.0) {
    base = rotate270(base);
    t += kPi / 2.0;
  }
  // Three-shear rotation (Unser/Paeth), each shear an exactly invertible
  // circular sinc shift: rotate(−θ) undoes rotate(θ) to machine precision
  // on the unmasked interior — the inverse-consistency property the
  // round-trip sweeps check, which no local resampling kernel can provide
  // on broadband (noise) images.
  const real alpha = std::tan(t / 2.0);
  const real beta = -std::sin(t);
  shear_rows(base, alpha);
  shear_cols(base, beta);
  shear_rows(base, alpha);
  mask_out_of_frame(base,
                    rotation_matrix(theta, image.dim(1), image.dim(2)));
  return base;
}

tensor::Tensor shear(const tensor::Tensor& image, real mu) {
  data::check_image(image);
  // Single exact circular shear pass: x' = x + mu·(y − cy). Row content
  // wraps instead of vanishing, so shear(−mu) inverts shear(mu) exactly and
  // every row keeps its mean bit-for-bit.
  tensor::Tensor out = image;
  shear_rows(out, mu);
  return out;
}

}  // namespace oasis::augment
