#include "augment/affine.h"

#include <cmath>

#include "common/error.h"
#include "data/image.h"

namespace oasis::augment {
namespace {

void check_square_for_quarter_turn(const tensor::Tensor& image) {
  OASIS_CHECK_MSG(image.dim(1) == image.dim(2),
                  "quarter-turn rotation requires square images, got "
                      << tensor::to_string(image.shape()));
}

}  // namespace

AffineMatrix rotation_matrix(real theta, index_t height, index_t width) {
  // Inverse map for a counter-clockwise rotation by theta about the center
  // (so rotate(img, π/2) agrees with the exact rotate90). In image row/col
  // coordinates (y grows downward) ccw means sampling the source at R(θ).
  const real cx = (static_cast<real>(width) - 1.0) / 2.0;
  const real cy = (static_cast<real>(height) - 1.0) / 2.0;
  const real c = std::cos(theta), s = std::sin(theta);
  return AffineMatrix{c,  -s, cx - c * cx + s * cy,
                      s,  c,  cy - s * cx - c * cy};
}

AffineMatrix shear_matrix(real mu, index_t height, index_t width) {
  // Forward map: x' = x + mu*(y - cy), y' = y (about the vertical center so
  // the content stays framed). Inverse: x = x' - mu*(y' - cy).
  const real cy = (static_cast<real>(height) - 1.0) / 2.0;
  (void)width;
  return AffineMatrix{1.0, -mu, mu * cy, 0.0, 1.0, 0.0};
}

tensor::Tensor warp_affine(const tensor::Tensor& image,
                           const AffineMatrix& m, real fill) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      const real fx = static_cast<real>(x);
      const real fy = static_cast<real>(y);
      const real sx = m[0] * fx + m[1] * fy + m[2];
      const real sy = m[3] * fx + m[4] * fy + m[5];
      const real x0f = std::floor(sx), y0f = std::floor(sy);
      const auto x0 = static_cast<std::ptrdiff_t>(x0f);
      const auto y0 = static_cast<std::ptrdiff_t>(y0f);
      const real ax = sx - x0f, ay = sy - y0f;
      for (index_t ch = 0; ch < c; ++ch) {
        auto sample = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> real {
          if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h) || xx < 0 ||
              xx >= static_cast<std::ptrdiff_t>(w)) {
            return fill;
          }
          return image.at3(ch, static_cast<index_t>(yy),
                           static_cast<index_t>(xx));
        };
        const real v00 = sample(y0, x0);
        const real v01 = sample(y0, x0 + 1);
        const real v10 = sample(y0 + 1, x0);
        const real v11 = sample(y0 + 1, x0 + 1);
        out.at3(ch, y, x) = (1.0 - ay) * ((1.0 - ax) * v00 + ax * v01) +
                               ay * ((1.0 - ax) * v10 + ax * v11);
      }
    }
  }
  return out;
}

tensor::Tensor rotate90(const tensor::Tensor& image) {
  data::check_image(image);
  check_square_for_quarter_turn(image);
  const index_t c = image.dim(0), n = image.dim(1);
  tensor::Tensor out({c, n, n});
  // 90° counter-clockwise: out(i, j) = in(j, n-1-i).
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        out.at3(ch, i, j) = image.at3(ch, j, n - 1 - i);
  return out;
}

tensor::Tensor rotate180(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, h - 1 - i, w - 1 - j);
  return out;
}

tensor::Tensor rotate270(const tensor::Tensor& image) {
  data::check_image(image);
  check_square_for_quarter_turn(image);
  const index_t c = image.dim(0), n = image.dim(1);
  tensor::Tensor out({c, n, n});
  // 270° ccw == 90° cw: out(i, j) = in(n-1-j, i).
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        out.at3(ch, i, j) = image.at3(ch, n - 1 - j, i);
  return out;
}

tensor::Tensor flip_horizontal(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, i, w - 1 - j);
  return out;
}

tensor::Tensor flip_vertical(const tensor::Tensor& image) {
  data::check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  tensor::Tensor out({c, h, w});
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t i = 0; i < h; ++i)
      for (index_t j = 0; j < w; ++j)
        out.at3(ch, i, j) = image.at3(ch, h - 1 - i, j);
  return out;
}

tensor::Tensor rotate(const tensor::Tensor& image, real theta) {
  return warp_affine(image, rotation_matrix(theta, image.dim(1),
                                            image.dim(2)));
}

tensor::Tensor shear(const tensor::Tensor& image, real mu) {
  return warp_affine(image, shear_matrix(mu, image.dim(1), image.dim(2)));
}

}  // namespace oasis::augment
