// Image-plane warps: the geometric kernels behind every OASIS transform.
//
// Three implementation classes, chosen deliberately:
//   * Exact index permutations for 90°-multiples and flips. These preserve
//     the multiset of pixel values — and therefore the image mean — exactly,
//     which is the property that makes major rotation defeat RTF's
//     mean-brightness binning (the original and its rotations land in the
//     same bin bit-for-bit).
//   * Circular sinc (Dirichlet-kernel) shears for rotate()/shear(). A
//     rotation is decomposed into three shears (Unser/Paeth), each an
//     exactly invertible circular shift of rows or columns, so
//     rotate(-θ)∘rotate(θ) and shear(-μ)∘shear(μ) are near-identities even
//     on broadband (noise) images — a property no local resampling kernel
//     can offer. Rotation then zero-masks pixels whose source falls outside
//     the frame, keeping the conventional corner-mass loss.
//   * Inverse-mapped Lanczos-3 resampling in warp_affine() for arbitrary
//     matrices (zero fill outside the source frame).
#pragma once

#include <array>

#include "tensor/tensor.h"

namespace oasis::augment {

/// Row-major 2×3 affine matrix mapping OUTPUT pixel coords (x, y) to INPUT
/// coords: in_x = m[0]*x + m[1]*y + m[2]; in_y = m[3]*x + m[4]*y + m[5].
using AffineMatrix = std::array<real, 6>;

/// Composes the inverse-map matrix for a rotation of `theta` radians about
/// the image center (w/2-0.5, h/2-0.5).
AffineMatrix rotation_matrix(real theta, index_t height, index_t width);

/// Inverse-map matrix for a horizontal shear x' = x + mu*y about the center
/// (Appendix B, Eq. 8).
AffineMatrix shear_matrix(real mu, index_t height, index_t width);

/// Samples `image` ([C,H,W]) through the inverse map with Lanczos-3
/// interpolation; out-of-frame reads produce `fill`.
tensor::Tensor warp_affine(const tensor::Tensor& image,
                           const AffineMatrix& inverse_map, real fill = 0.0);

/// Exact rotations by index permutation (square images only for 90/270).
tensor::Tensor rotate90(const tensor::Tensor& image);
tensor::Tensor rotate180(const tensor::Tensor& image);
tensor::Tensor rotate270(const tensor::Tensor& image);

/// Exact mirror flips (Appendix B, Eqs. 6-7).
tensor::Tensor flip_horizontal(const tensor::Tensor& image);
tensor::Tensor flip_vertical(const tensor::Tensor& image);

/// Arbitrary-angle rotation (radians) via three circular sinc shears;
/// quarter turns snap to the exact permutations; pixels whose inverse-map
/// source falls outside the frame are zeroed.
tensor::Tensor rotate(const tensor::Tensor& image, real theta);

/// Shear with factor `mu` via one exactly invertible circular sinc shift
/// per row (content wraps around instead of vanishing).
tensor::Tensor shear(const tensor::Tensor& image, real mu);

}  // namespace oasis::augment
