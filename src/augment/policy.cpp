#include "augment/policy.h"

#include "common/error.h"
#include "runtime/parallel.h"

namespace oasis::augment {

AugmentationPolicy::AugmentationPolicy(std::vector<TransformPtr> transforms)
    : transforms_(std::move(transforms)) {
  for (const auto& t : transforms_) OASIS_CHECK(t != nullptr);
}

index_t AugmentationPolicy::variants_per_image() const {
  index_t n = 0;
  for (const auto& t : transforms_) n += t->variant_count();
  return n;
}

std::vector<tensor::Tensor> AugmentationPolicy::variants(
    const tensor::Tensor& image, common::Rng& rng) const {
  std::vector<tensor::Tensor> all;
  for (const auto& t : transforms_) {
    auto vs = t->apply(image, rng);
    for (auto& v : vs) all.push_back(std::move(v));
  }
  return all;
}

data::Batch AugmentationPolicy::augment(const data::Batch& batch,
                                        common::Rng& rng) const {
  if (transforms_.empty()) return batch;
  std::vector<tensor::Tensor> images = data::unstack_images(batch.images);
  const index_t n = images.size();
  // Split one child stream per image up front (the parent rng advances by
  // exactly n draws, independent of thread count), then expand images in
  // parallel. Variant content and ordering are a pure function of the
  // incoming rng state, so serial and parallel runs agree byte for byte.
  std::vector<common::Rng> streams;
  streams.reserve(n);
  for (index_t i = 0; i < n; ++i) streams.push_back(rng.split(i));
  std::vector<std::vector<tensor::Tensor>> expanded(n);
  runtime::parallel_for(0, n, 1, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      expanded[i] = variants(images[i], streams[i]);
    }
  });
  std::vector<tensor::Tensor> all = images;
  std::vector<index_t> labels = batch.labels;
  for (index_t i = 0; i < n; ++i) {
    for (auto& v : expanded[i]) {
      all.push_back(std::move(v));
      labels.push_back(batch.labels[i]);
    }
  }
  return data::Batch{data::stack_images(all), std::move(labels)};
}

std::string AugmentationPolicy::label() const {
  if (transforms_.empty()) return "WO";
  std::string s;
  for (const auto& t : transforms_) {
    if (!s.empty()) s += "+";
    s += t->label();
  }
  return s;
}

AugmentationPolicy make_policy(const std::vector<TransformKind>& kinds) {
  std::vector<TransformPtr> transforms;
  for (const auto k : kinds) {
    if (k == TransformKind::kNone) continue;
    transforms.push_back(make_transform(k));
  }
  if (transforms.size() > 1) {
    // Multi-transform policies are INTEGRATED (Section 4): cross-composed
    // variant sets, not a mere union — e.g. MR+SH yields the rotations, a
    // shear, and the sheared rotations (7 variants per image).
    std::vector<TransformPtr> parts = std::move(transforms);
    transforms.clear();
    transforms.push_back(
        std::make_unique<Compose>(std::move(parts), ComposeMode::kCross));
  }
  return AugmentationPolicy(std::move(transforms));
}

}  // namespace oasis::augment
