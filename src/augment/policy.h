// AugmentationPolicy — builds the defended batch D' of Eq. 4.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "augment/transforms.h"
#include "data/dataset.h"

namespace oasis::augment {

/// A policy is a set of transforms; augmenting a batch D yields
/// D' = D ∪ ⋃_t X'_t with every variant labeled like its original.
///
/// The returned batch keeps the B originals FIRST, followed by the variants
/// in original-major order — evaluation code relies on this to score
/// reconstructions against the pre-augmentation images only, exactly as the
/// paper's PSNR protocol does.
class AugmentationPolicy {
 public:
  /// Empty policy == no augmentation (augment() returns the batch unchanged).
  AugmentationPolicy() = default;
  explicit AugmentationPolicy(std::vector<TransformPtr> transforms);

  [[nodiscard]] bool empty() const { return transforms_.empty(); }

  /// Number of variants added per image (3 for MR, 1 for others, summed for
  /// compositions).
  [[nodiscard]] index_t variants_per_image() const;

  /// Builds D' from D.
  [[nodiscard]] data::Batch augment(const data::Batch& batch,
                                    common::Rng& rng) const;

  /// Variants of a single image (the X'_t set).
  [[nodiscard]] std::vector<tensor::Tensor> variants(
      const tensor::Tensor& image, common::Rng& rng) const;

  /// Figure-legend style name: "WO" when empty, else "MR", "MR+SH", ...
  [[nodiscard]] std::string label() const;

 private:
  std::vector<TransformPtr> transforms_;
};

/// Builds a policy from transform kinds; kNone entries are skipped, so
/// make_policy({kNone}) is the undefended baseline.
AugmentationPolicy make_policy(const std::vector<TransformKind>& kinds);

}  // namespace oasis::augment
