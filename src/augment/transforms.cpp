#include "augment/transforms.h"

#include "augment/affine.h"
#include "common/error.h"

namespace oasis::augment {
namespace {

constexpr real kDegToRad = 3.14159265358979323846 / 180.0;

}  // namespace

tensor::Tensor mean_matched(tensor::Tensor variant,
                            const tensor::Tensor& original) {
  const real offset = original.mean() - variant.mean();
  for (auto& v : variant.data()) v += offset;
  return variant;
}

std::vector<tensor::Tensor> MajorRotation::apply(const tensor::Tensor& image,
                                                 common::Rng& /*rng*/) const {
  return {rotate90(image), rotate180(image), rotate270(image)};
}

MinorRotation::MinorRotation(real min_deg, real max_deg, bool mean_match)
    : min_deg_(min_deg), max_deg_(max_deg), mean_match_(mean_match) {
  OASIS_CHECK_MSG(min_deg > 0.0 && max_deg < 90.0 && min_deg <= max_deg,
                  "minor rotation must lie in (0°, 90°)");
}

std::vector<tensor::Tensor> MinorRotation::apply(const tensor::Tensor& image,
                                                 common::Rng& rng) const {
  const real deg = rng.uniform(min_deg_, max_deg_);
  tensor::Tensor variant = rotate(image, deg * kDegToRad);
  if (mean_match_) variant = mean_matched(std::move(variant), image);
  return {std::move(variant)};
}

Shear::Shear(real min_mu, real max_mu, bool mean_match)
    : min_mu_(min_mu), max_mu_(max_mu), mean_match_(mean_match) {
  OASIS_CHECK_MSG(min_mu > 0.0 && min_mu <= max_mu, "bad shear range");
}

std::vector<tensor::Tensor> Shear::apply(const tensor::Tensor& image,
                                         common::Rng& rng) const {
  const real mu = rng.uniform(min_mu_, max_mu_) *
                  (rng.bernoulli(0.5) ? 1.0 : -1.0);
  tensor::Tensor variant = shear(image, mu);
  if (mean_match_) variant = mean_matched(std::move(variant), image);
  return {std::move(variant)};
}

std::vector<tensor::Tensor> HorizontalFlip::apply(const tensor::Tensor& image,
                                                  common::Rng& /*rng*/) const {
  return {flip_horizontal(image)};
}

std::vector<tensor::Tensor> VerticalFlip::apply(const tensor::Tensor& image,
                                                common::Rng& /*rng*/) const {
  return {flip_vertical(image)};
}

Compose::Compose(std::vector<TransformPtr> parts, ComposeMode mode)
    : parts_(std::move(parts)), mode_(mode) {
  OASIS_CHECK_MSG(!parts_.empty(), "Compose of zero transforms");
  for (const auto& p : parts_) OASIS_CHECK(p != nullptr);
}

std::vector<tensor::Tensor> Compose::apply(const tensor::Tensor& image,
                                           common::Rng& rng) const {
  std::vector<tensor::Tensor> variants;
  for (const auto& part : parts_) {
    // Later parts also transform the variants accumulated so far (kCross),
    // e.g. MR then SH yields rotations, a shear, and sheared rotations.
    const std::size_t existing = variants.size();
    if (mode_ == ComposeMode::kCross) {
      for (std::size_t i = 0; i < existing; ++i) {
        for (auto& v : part->apply(variants[i], rng)) {
          variants.push_back(std::move(v));
        }
      }
    }
    for (auto& v : part->apply(image, rng)) variants.push_back(std::move(v));
  }
  return variants;
}

index_t Compose::variant_count() const {
  index_t total = 0;
  for (const auto& part : parts_) {
    const index_t c = part->variant_count();
    total = mode_ == ComposeMode::kCross ? total * (1 + c) + c : total + c;
  }
  return total;
}

std::string Compose::label() const {
  std::string s;
  for (const auto& part : parts_) {
    if (!s.empty()) s += "+";
    s += part->label();
  }
  return s;
}

TransformPtr make_transform(TransformKind kind) {
  switch (kind) {
    case TransformKind::kMajorRotation:
      return std::make_unique<MajorRotation>();
    case TransformKind::kMinorRotation:
      return std::make_unique<MinorRotation>();
    case TransformKind::kShear:
      return std::make_unique<Shear>();
    case TransformKind::kHorizontalFlip:
      return std::make_unique<HorizontalFlip>();
    case TransformKind::kVerticalFlip:
      return std::make_unique<VerticalFlip>();
    case TransformKind::kNone:
      break;
  }
  throw ConfigError("make_transform: kNone has no Transform object");
}

TransformKind parse_transform_kind(const std::string& name) {
  if (name == "none" || name == "WO") return TransformKind::kNone;
  if (name == "MR" || name == "major-rotation")
    return TransformKind::kMajorRotation;
  if (name == "mR" || name == "minor-rotation")
    return TransformKind::kMinorRotation;
  if (name == "SH" || name == "shear") return TransformKind::kShear;
  if (name == "HFlip" || name == "hflip")
    return TransformKind::kHorizontalFlip;
  if (name == "VFlip" || name == "vflip") return TransformKind::kVerticalFlip;
  throw ConfigError("unknown transform: " + name);
}

}  // namespace oasis::augment
