// The OASIS transform suite (paper Section 2 / Appendix B).
//
// A Transform maps one image to the set X'_t of augmented variants added to
// the training batch (Eq. 4). Randomized transforms (minor rotation, shear)
// draw their parameters per image from the client's RNG — the paper notes the
// server cannot know these parameters, which is part of why the resulting
// linear combinations are hard to deconvolve.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace oasis::augment {

class Transform {
 public:
  Transform() = default;
  Transform(const Transform&) = delete;
  Transform& operator=(const Transform&) = delete;
  virtual ~Transform() = default;

  /// The augmented variants X'_t of `image` (at least one).
  [[nodiscard]] virtual std::vector<tensor::Tensor> apply(
      const tensor::Tensor& image, common::Rng& rng) const = 0;

  /// Number of variants apply() produces (fixed per transform).
  [[nodiscard]] virtual index_t variant_count() const { return 1; }

  /// Short label matching the paper's figure legends (MR, mR, SH, ...).
  [[nodiscard]] virtual std::string label() const = 0;
};

using TransformPtr = std::unique_ptr<Transform>;

/// MR — adds the three quarter-turn rotations (90°, 180°, 270°), computed as
/// exact index permutations so the image mean is preserved bit-for-bit.
class MajorRotation : public Transform {
 public:
  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] index_t variant_count() const override { return 3; }
  [[nodiscard]] std::string label() const override { return "MR"; }
};

/// Adds a uniform brightness offset so `variant` has exactly the mean pixel
/// value of `original`.
///
/// This realizes the paper's defining requirement on X'_t — that x_t and its
/// variants "activate the same set of neurons" (Proposition 1) — against
/// measurement-binning attacks like RTF, whose attacked neurons threshold a
/// scalar brightness statistic: an interpolated warp with border fill
/// perturbs that statistic by ~1e-3, which is dozens of bins at n≈900, so
/// without mean matching the original would sit alone in its bin and be
/// reconstructed verbatim. Exact permutations (quarter turns, flips) need no
/// matching; warped variants get a constant offset (itself a standard
/// brightness augmentation). Values may leave [0,1] slightly; training and
/// gradients are unaffected.
tensor::Tensor mean_matched(tensor::Tensor variant,
                            const tensor::Tensor& original);

/// mR — one rotation by a random angle < 90° (bilinear, zero fill,
/// mean-matched by default).
class MinorRotation : public Transform {
 public:
  /// Angle drawn uniformly from [min_deg, max_deg] (degrees).
  explicit MinorRotation(real min_deg = 15.0, real max_deg = 75.0,
                         bool mean_match = true);

  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] std::string label() const override { return "mR"; }

 private:
  real min_deg_, max_deg_;
  bool mean_match_;
};

/// SH — one shear with random factor μ (Appendix B, Eq. 8; mean-matched by
/// default).
class Shear : public Transform {
 public:
  explicit Shear(real min_mu = 0.25, real max_mu = 0.6,
                 bool mean_match = true);

  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] std::string label() const override { return "SH"; }

 private:
  real min_mu_, max_mu_;
  bool mean_match_;
};

/// HFlip — mirror about the vertical axis (Eq. 6).
class HorizontalFlip : public Transform {
 public:
  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] std::string label() const override { return "HFlip"; }
};

/// VFlip — mirror about the horizontal axis (Eq. 7).
class VerticalFlip : public Transform {
 public:
  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] std::string label() const override { return "VFlip"; }
};

/// How Compose combines its parts' variant sets.
enum class ComposeMode {
  /// X'_t = union of each part's variants (MR+SH → 4 variants).
  kUnion,
  /// X'_t additionally contains later parts applied to earlier parts'
  /// variants (MR+SH → rotations, shear, and sheared rotations: 7
  /// variants). This is the "integration of multiple transformations" of
  /// Section 4: the denser variant set maximizes the chance that some
  /// variant co-activates every neuron the original activates, which is
  /// what CAH at small batch sizes requires.
  kCross,
};

/// Combination of several transforms (e.g. MR+SH, the integration Section 4
/// shows is required against CAH at batch size 8).
class Compose : public Transform {
 public:
  explicit Compose(std::vector<TransformPtr> parts,
                   ComposeMode mode = ComposeMode::kCross);

  std::vector<tensor::Tensor> apply(const tensor::Tensor& image,
                                    common::Rng& rng) const override;
  [[nodiscard]] index_t variant_count() const override;
  [[nodiscard]] std::string label() const override;

 private:
  std::vector<TransformPtr> parts_;
  ComposeMode mode_;
};

/// Named transform kinds for configs and CLI flags.
enum class TransformKind {
  kNone,
  kMajorRotation,
  kMinorRotation,
  kShear,
  kHorizontalFlip,
  kVerticalFlip,
};

/// Factory for a single transform.
TransformPtr make_transform(TransformKind kind);

/// Parses "none|MR|mR|SH|HFlip|VFlip" (also accepts long names).
TransformKind parse_transform_kind(const std::string& name);

}  // namespace oasis::augment
