// Tiny bounds-checked value codec for checkpoint section payloads.
//
// Sections store primitive streams (u8/u32/u64, bit-cast f64, short
// strings). The Reader validates every length against the bytes actually
// present and throws CheckpointError{kMalformedSection} on any shortfall —
// by the time a Reader runs, the section's CRC already passed, so a
// malformed stream means a writer bug or version skew, not disk damage.
// Doubles travel as raw IEEE-754 bit patterns (bit_cast through u64): the
// resume bit-identity contract requires exact payload round-trips, not
// merely value-preserving ones (signalling-NaN payloads included).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace oasis::ckpt {

using ByteBuffer = std::vector<std::uint8_t>;

class SectionWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(const ByteBuffer& b) {
    u64(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Bit-packed flag vector (u64 bit count + ceil(n/8) bytes, LSB-first).
  /// The sharded round engine stores its completed-shard bitmap this way so
  /// a mid-round snapshot of a million-shard round costs kilobytes.
  void bitset(const std::vector<bool>& bits) {
    u64(bits.size());
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        out_.push_back(acc);
        acc = 0;
      }
    }
    if (bits.size() % 8 != 0) out_.push_back(acc);
  }

  [[nodiscard]] ByteBuffer take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  ByteBuffer out_;
};

class SectionReader {
 public:
  SectionReader(const ByteBuffer& in, std::string section)
      : in_(in), section_(std::move(section)) {}

  std::uint8_t u8() {
    need(1);
    return in_[off_++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(in_.data() + off_), n);
    off_ += n;
    return s;
  }
  ByteBuffer bytes() {
    const std::uint64_t n = u64();
    need(n);
    ByteBuffer b(in_.begin() + static_cast<std::ptrdiff_t>(off_),
                 in_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
    off_ += n;
    return b;
  }
  std::vector<bool> bitset() {
    const std::uint64_t nbits = u64();
    const std::uint64_t nbytes = (nbits + 7) / 8;
    need(nbytes);
    std::vector<bool> bits(nbits);
    for (std::uint64_t i = 0; i < nbits; ++i) {
      bits[i] = (in_[off_ + i / 8] >> (i % 8)) & 1u;
    }
    // Padding bits beyond nbits must be zero — a set stray bit means the
    // writer and reader disagree about the count.
    if (nbits % 8 != 0) {
      const std::uint8_t tail = in_[off_ + nbytes - 1];
      if ((tail >> (nbits % 8)) != 0) {
        throw CheckpointError(
            CheckpointError::Reason::kMalformedSection,
            "section '" + section_ + "' bitset has stray padding bits");
      }
    }
    off_ += nbytes;
    return bits;
  }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - off_; }

  /// Call when a section has been fully consumed; trailing bytes mean a
  /// writer/reader version skew and are rejected.
  void expect_end() const {
    if (off_ != in_.size()) {
      throw CheckpointError(
          CheckpointError::Reason::kMalformedSection,
          "section '" + section_ + "' has " +
              std::to_string(in_.size() - off_) + " trailing byte(s)");
    }
  }

 private:
  void need(std::uint64_t n) const {
    if (off_ > in_.size() || in_.size() - off_ < n) {
      throw CheckpointError(
          CheckpointError::Reason::kMalformedSection,
          "section '" + section_ + "' truncated at offset " +
              std::to_string(off_));
    }
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, in_.data() + off_, n);
    off_ += n;
  }

  const ByteBuffer& in_;
  std::string section_;
  std::size_t off_ = 0;
};

}  // namespace oasis::ckpt
