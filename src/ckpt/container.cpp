#include "ckpt/container.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"

namespace oasis::ckpt {
namespace {

using common::crc32c;
using Reason = CheckpointError::Reason;

constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
constexpr std::size_t kFooterBytes = sizeof(std::uint32_t);
constexpr std::size_t kMaxNameLen = 255;
// A directory claiming more sections than this is damage, not data: even the
// richest snapshot (model + optimizer + rng + obs + meta per subsystem) is
// tens of sections, and the cap keeps a hostile count from driving a large
// reserve before per-entry bounds checks run.
constexpr std::uint32_t kMaxSections = 4096;

void put_u32(std::uint32_t v, ByteBuffer& out) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void put_u64(std::uint64_t v, ByteBuffer& out) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

// Directory reads happen after the footer CRC has validated the whole file,
// so a short read here means the directory *structure* lies about its own
// extent — malformed, not truncated.
std::uint32_t take_u32(const ByteBuffer& in, std::size_t& off,
                       std::size_t end) {
  if (off > end || end - off < sizeof(std::uint32_t)) {
    throw CheckpointError(Reason::kMalformedDirectory,
                          "directory runs past its region");
  }
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

std::uint64_t take_u64(const ByteBuffer& in, std::size_t& off,
                       std::size_t end) {
  if (off > end || end - off < sizeof(std::uint64_t)) {
    throw CheckpointError(Reason::kMalformedDirectory,
                          "directory runs past its region");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

}  // namespace

void SnapshotBuilder::add(const std::string& name, ByteBuffer payload) {
  OASIS_CHECK_MSG(!name.empty() && name.size() <= kMaxNameLen,
                  "section name must be 1..255 bytes: '" << name << "'");
  for (const auto& [existing, bytes] : sections_) {
    OASIS_CHECK_MSG(existing != name,
                    "duplicate checkpoint section '" << name << "'");
  }
  sections_.emplace_back(name, std::move(payload));
}

ByteBuffer SnapshotBuilder::finish() const {
  ByteBuffer out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(kVersion, out);
  put_u32(static_cast<std::uint32_t>(sections_.size()), out);

  // Directory size is knowable up front, which gives absolute payload
  // offsets without a second pass.
  std::size_t dir_bytes = 0;
  for (const auto& [name, payload] : sections_) {
    dir_bytes += sizeof(std::uint32_t) + name.size() + 2 * sizeof(std::uint64_t) +
                 sizeof(std::uint32_t);
  }
  std::uint64_t payload_off = kHeaderBytes + dir_bytes;
  for (const auto& [name, payload] : sections_) {
    put_u32(static_cast<std::uint32_t>(name.size()), out);
    out.insert(out.end(), name.begin(), name.end());
    put_u64(payload_off, out);
    put_u64(payload.size(), out);
    put_u32(crc32c(payload.data(), payload.size()), out);
    payload_off += payload.size();
  }
  for (const auto& [name, payload] : sections_) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  put_u32(crc32c(out.data(), out.size()), out);
  return out;
}

Snapshot Snapshot::parse(ByteBuffer bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    throw CheckpointError(Reason::kTruncated,
                          "file too small for header + footer (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(Reason::kBadMagic, "not an oasis.ckpt container");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    throw CheckpointError(Reason::kBadVersion,
                          "container version " + std::to_string(version) +
                              ", expected " + std::to_string(kVersion));
  }

  // Whole-file integrity first: after this check every subsequent failure is
  // the writer's fault (a structural bug), not the disk's.
  const std::size_t body = bytes.size() - kFooterBytes;
  std::uint32_t stored_footer = 0;
  std::memcpy(&stored_footer, bytes.data() + body, kFooterBytes);
  if (stored_footer != crc32c(bytes.data(), body)) {
    throw CheckpointError(Reason::kFooterChecksum,
                          "whole-file CRC32C mismatch");
  }

  std::uint32_t section_count = 0;
  std::memcpy(&section_count,
              bytes.data() + sizeof(kMagic) + sizeof(std::uint32_t),
              sizeof(section_count));
  if (section_count > kMaxSections) {
    throw CheckpointError(Reason::kMalformedDirectory,
                          "implausible section count " +
                              std::to_string(section_count));
  }

  // Directory entries and payloads share [kHeaderBytes, body); the directory
  // is walked with a cursor, payload ranges are bounds-checked individually
  // and required to tile the payload region in order with no gaps/overlap.
  Snapshot snap;
  snap.sections_.reserve(section_count);
  std::size_t cur = kHeaderBytes;
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      entries;
  std::vector<std::uint32_t> crcs;
  entries.reserve(section_count);
  crcs.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t name_len = take_u32(bytes, cur, body);
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw CheckpointError(Reason::kMalformedDirectory,
                            "section name length " + std::to_string(name_len));
    }
    if (cur > body || body - cur < name_len) {
      throw CheckpointError(Reason::kMalformedDirectory,
                            "directory runs past its region");
    }
    std::string name(reinterpret_cast<const char*>(bytes.data() + cur),
                     name_len);
    cur += name_len;
    const std::uint64_t off = take_u64(bytes, cur, body);
    const std::uint64_t size = take_u64(bytes, cur, body);
    const std::uint32_t crc = take_u32(bytes, cur, body);
    for (const auto& [existing, range] : entries) {
      if (existing == name) {
        throw CheckpointError(Reason::kMalformedDirectory,
                              "duplicate section '" + name + "'");
      }
    }
    entries.emplace_back(std::move(name), std::make_pair(off, size));
    crcs.push_back(crc);
  }

  // `cur` now sits at the end of the directory = start of the payload
  // region. Payloads must tile [cur, body) exactly.
  std::uint64_t expect_off = cur;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [name, range] = entries[i];
    const auto [off, size] = range;
    if (off != expect_off || size > body || off > body - size) {
      throw CheckpointError(Reason::kMalformedDirectory,
                            "section '" + name + "' payload out of bounds");
    }
    expect_off = off + size;
  }
  if (expect_off != body) {
    throw CheckpointError(Reason::kMalformedDirectory,
                          "payload region does not tile the file body");
  }

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [name, range] = entries[i];
    const auto [off, size] = range;
    if (crc32c(bytes.data() + off, size) != crcs[i]) {
      throw CheckpointError(Reason::kSectionChecksum,
                            "section '" + name + "' CRC32C mismatch");
    }
    snap.sections_.emplace_back(
        name, ByteBuffer(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                         bytes.begin() + static_cast<std::ptrdiff_t>(off + size)));
  }
  return snap;
}

bool Snapshot::has(const std::string& name) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const auto& s) { return s.first == name; });
}

const ByteBuffer& Snapshot::section(const std::string& name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return payload;
  }
  throw CheckpointError(CheckpointError::Reason::kMissingSection,
                        "required section '" + name + "' absent");
}

std::vector<std::string> Snapshot::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) out.push_back(name);
  return out;
}

}  // namespace oasis::ckpt
