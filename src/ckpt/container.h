// oasis::ckpt container format — "oasis.ckpt/v1".
//
// A snapshot is a single file holding named byte sections:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//   0       8     magic "OASISCKP"
//   8       4     u32 version (currently 1)
//   12      4     u32 section_count
//   16      …     directory: per section
//                   u32 name_len, name bytes,
//                   u64 payload_offset (absolute), u64 payload_size,
//                   u32 payload CRC32C
//   …       …     section payloads, concatenated in directory order
//   end-4   4     u32 footer CRC32C over every preceding byte
//
// Integrity is layered: the footer CRC covers the whole file (catches torn
// writes and truncation wherever they land), and each section carries its own
// CRC (localises damage and guards against a directory that points at the
// wrong bytes). Snapshot::parse validates size → magic → version → footer CRC
// → directory bounds → section CRCs, in that order, BEFORE handing out any
// payload — so a caller never observes bytes from a damaged file. All
// failures are typed CheckpointError with a machine-readable Reason.
//
// All integers are little-endian host order, matching tensor/serialize.h
// (single-process simulator; the version field exists for future migration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace oasis::ckpt {

using ByteBuffer = std::vector<std::uint8_t>;

inline constexpr char kMagic[8] = {'O', 'A', 'S', 'I', 'S', 'C', 'K', 'P'};
inline constexpr std::uint32_t kVersion = 1;

/// Accumulates named sections, then seals them into one container buffer.
class SnapshotBuilder {
 public:
  /// Adds a section. Names must be unique, non-empty, and ≤ 255 bytes.
  void add(const std::string& name, ByteBuffer payload);

  /// Serializes everything added so far into a "oasis.ckpt/v1" buffer.
  [[nodiscard]] ByteBuffer finish() const;

 private:
  std::vector<std::pair<std::string, ByteBuffer>> sections_;
};

/// Immutable, fully validated view of a container buffer.
class Snapshot {
 public:
  /// Validates `bytes` exhaustively (see file comment for the order) and
  /// takes ownership. Throws CheckpointError on any damage.
  static Snapshot parse(ByteBuffer bytes);

  [[nodiscard]] bool has(const std::string& name) const;

  /// The named section's payload. Throws CheckpointError{kMissingSection}
  /// when absent.
  [[nodiscard]] const ByteBuffer& section(const std::string& name) const;

  /// Section names in directory (= write) order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  Snapshot() = default;
  std::vector<std::pair<std::string, ByteBuffer>> sections_;
};

}  // namespace oasis::ckpt
