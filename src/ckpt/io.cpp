#include "ckpt/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace oasis::ckpt {
namespace {

// Kill-point state. Plain globals: write_file_atomic is only ever called
// from serial checkpoint code (the round loop), never from parallel regions.
std::int64_t g_kill_save = -1;
std::int64_t g_kill_offset = -1;
std::int64_t g_save_count = 0;
bool g_env_checked = false;

void load_env_kill_point() {
  g_env_checked = true;
  const char* env = std::getenv("OASIS_CKPT_KILL_AT");
  if (env == nullptr || *env == '\0') return;
  char* colon = nullptr;
  const long long save = std::strtoll(env, &colon, 10);
  if (colon == nullptr || *colon != ':') return;
  const long long offset = std::strtoll(colon + 1, nullptr, 10);
  g_kill_save = save;
  g_kill_offset = offset;
}

[[noreturn]] void die_now() {
  // SIGKILL cannot be caught: this is indistinguishable from kill -9 /
  // OOM-kill from the checkpoint's point of view. raise() can only "return"
  // if the signal were blocked, which SIGKILL never is; abort as belt and
  // braces so the compiler sees noreturn.
  ::raise(SIGKILL);
  std::abort();
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void arm_kill_point(std::int64_t save_index, std::int64_t offset) {
  g_env_checked = true;  // explicit arming overrides the env var
  g_kill_save = save_index < 0 ? -1 : save_index + g_save_count;
  g_kill_offset = offset;
}

std::int64_t atomic_write_count() { return g_save_count; }

ByteBuffer read_file(const std::string& path) {
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (f.fd < 0) throw IoError("open", path, errno);
  const off_t size = ::lseek(f.fd, 0, SEEK_END);
  if (size < 0 || ::lseek(f.fd, 0, SEEK_SET) < 0) {
    throw IoError("lseek", path, errno);
  }
  ByteBuffer out(static_cast<std::size_t>(size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t got = ::read(f.fd, out.data() + done, out.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw IoError("read", path, errno);
    }
    if (got == 0) throw IoError("read (early EOF)", path, EIO);
    done += static_cast<std::size_t>(got);
  }
  return out;
}

void write_file_atomic(const std::string& path, const ByteBuffer& bytes) {
  if (!g_env_checked) load_env_kill_point();
  const bool kill_this_save = (g_save_count == g_kill_save);
  const std::int64_t n = static_cast<std::int64_t>(bytes.size());
  const std::int64_t kill_at =
      kill_this_save ? std::min(std::max<std::int64_t>(g_kill_offset, 0), n + 1)
                     : -1;
  ++g_save_count;

  const std::string tmp = path + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (f.fd < 0) throw IoError("open", tmp, errno);

    constexpr std::int64_t kChunk = 1 << 20;
    std::int64_t done = 0;
    while (done < n) {
      std::int64_t take = std::min(kChunk, n - done);
      // Land exactly on the armed offset so the tear is byte-precise.
      if (kill_at >= 0 && done < kill_at && kill_at <= n) {
        take = std::min(take, kill_at - done);
      }
      const ssize_t put = ::write(f.fd, bytes.data() + done, take);
      if (put < 0) {
        if (errno == EINTR) continue;
        throw IoError("write", tmp, errno);
      }
      done += put;
      if (kill_at >= 0 && done >= kill_at) die_now();
    }
    if (kill_at == 0 && n == 0) die_now();

    if (::fsync(f.fd) != 0) throw IoError("fsync", tmp, errno);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("rename", tmp, errno);
  }
  if (kill_at == n + 1) die_now();

  // Make the rename itself durable.
  const std::string dir = parent_dir(path);
  Fd d;
  d.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (d.fd < 0) throw IoError("open (dir)", dir, errno);
  if (::fsync(d.fd) != 0) throw IoError("fsync (dir)", dir, errno);
}

}  // namespace oasis::ckpt
