// Durable file I/O for checkpoint containers.
//
// write_file_atomic implements the classic crash-consistent sequence:
//
//   1. write the bytes to `<path>.tmp` (chunked),
//   2. fsync the tmp file (data hits the platter before the name does),
//   3. rename(tmp, path)  — atomic on POSIX: readers see old-or-new, never
//      a mix,
//   4. fsync the parent directory (the rename itself is durable).
//
// A crash at ANY byte of this sequence leaves either the previous generation
// intact (steps 1–3 incomplete) or the new file fully in place — never a
// half-written file under the final name. The kill-point hook below turns
// that argument into a testable property: the crash harness arms a byte
// offset and the writer SIGKILLs itself at exactly that point, across every
// offset, and restore must always find a valid (possibly older) generation.
//
// Failures throw IoError carrying the path and errno (disk-full = ENOSPC
// surfaces here like any other write failure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oasis::ckpt {

using ByteBuffer = std::vector<std::uint8_t>;

/// Reads an entire file. Throws IoError when it cannot be opened/read.
ByteBuffer read_file(const std::string& path);

/// Crash-consistently replaces `path` with `bytes` (see file comment).
void write_file_atomic(const std::string& path, const ByteBuffer& bytes);

/// Arms the crash-injection hook: during the `save_index`-th call (0-based)
/// to write_file_atomic from now on, the process raises SIGKILL after
/// exactly `offset` bytes of the tmp file have been written. Two offsets
/// past the payload extend coverage to the metadata steps:
///   offset == size      → killed after the data, before fsync/rename
///   offset == size + 1  → killed after the rename, before the dir fsync
/// (offsets are clamped to size + 1). Also armable without code via the
/// environment variable OASIS_CKPT_KILL_AT="<save_index>:<offset>", read on
/// the first write. Test-only; never armed in normal operation.
void arm_kill_point(std::int64_t save_index, std::int64_t offset);

/// Number of write_file_atomic calls completed so far in this process
/// (exposed so the harness can report where a crash landed).
std::int64_t atomic_write_count();

}  // namespace oasis::ckpt
