#include "ckpt/manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "ckpt/io.h"
#include "common/logging.h"
#include "obs/obs.h"

namespace oasis::ckpt {
namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".ckpt";

/// ckpt-<digits>.ckpt → generation; nullopt-like via bool return.
bool parse_generation(const std::string& filename, std::uint64_t& out) {
  const std::size_t plen = sizeof(kPrefix) - 1;
  const std::size_t slen = sizeof(kSuffix) - 1;
  if (filename.size() <= plen + slen) return false;
  if (filename.compare(0, plen, kPrefix) != 0) return false;
  if (filename.compare(filename.size() - slen, slen, kSuffix) != 0)
    return false;
  std::uint64_t gen = 0;
  for (std::size_t i = plen; i < filename.size() - slen; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return false;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = gen;
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep) {
  OASIS_CHECK_MSG(keep_ >= 1, "checkpoint keep must be >= 1, got " << keep_);
  OASIS_CHECK_MSG(!dir_.empty(), "checkpoint directory must be non-empty");
}

std::string CheckpointManager::path_for(std::uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return dir_ + "/" + name;
}

std::vector<std::uint64_t> CheckpointManager::generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::uint64_t gen = 0;
    if (parse_generation(entry.path().filename().string(), gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::string CheckpointManager::save(std::uint64_t generation,
                                    const ByteBuffer& bytes) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw IoError("create_directories", dir_, ec.value());

  const std::string path = path_for(generation);
  write_file_atomic(path, bytes);

  // Prune: keep the newest `keep_` generations (the one just written counts),
  // and sweep stale .tmp litter left by crashed earlier writers.
  auto gens = generations();
  if (gens.size() > static_cast<std::size_t>(keep_)) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(keep_) < gens.size();
         ++i) {
      if (gens[i] == generation) continue;  // never prune what we just wrote
      fs::remove(path_for(gens[i]), ec);    // best-effort; crash-safe anyway
    }
  }
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp" &&
        entry.path().string() != path + ".tmp") {
      fs::remove(entry.path(), ec);
    }
  }
  return path;
}

CheckpointManager::Loaded CheckpointManager::load_latest_valid() const {
  auto gens = generations();
  std::uint64_t skipped = 0;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = path_for(*it);
    try {
      Snapshot snap = Snapshot::parse(read_file(path));
      if (skipped != 0) {
        obs::counter("ckpt.restore.skipped_invalid").add(skipped);
        OASIS_LOG_WARN << "ckpt: skipped " << skipped
                       << " invalid generation(s), using " << path;
      }
      return Loaded{*it, std::move(snap)};
    } catch (const CheckpointError& e) {
      OASIS_LOG_WARN << "ckpt: generation " << *it << " invalid: " << e.what();
      ++skipped;
    } catch (const IoError& e) {
      OASIS_LOG_WARN << "ckpt: generation " << *it
                     << " unreadable: " << e.what();
      ++skipped;
    }
  }
  if (skipped != 0) obs::counter("ckpt.restore.skipped_invalid").add(skipped);
  throw CheckpointError(
      CheckpointError::Reason::kNoValidGeneration,
      "no valid checkpoint generation in '" + dir_ + "' (" +
          std::to_string(gens.size()) + " candidate(s), " +
          std::to_string(skipped) + " invalid)");
}

}  // namespace oasis::ckpt
