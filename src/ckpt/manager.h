// Checkpoint generation management: naming, retention, and restore-side
// fallback.
//
// A CheckpointManager owns one directory of snapshots named
// `ckpt-<generation>.ckpt` (generation = the protocol round the snapshot was
// taken after, zero-padded so lexicographic and numeric order agree). save()
// writes crash-consistently via write_file_atomic and prunes to the newest
// `keep` generations (plus any stale .tmp litter from earlier crashes).
// load_latest_valid() walks generations newest-first and returns the first
// one that passes full container validation — a torn or bit-rotted newest
// file silently falls back to its predecessor, and only when every retained
// generation is damaged (or none exists) does it throw
// CheckpointError{kNoValidGeneration}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/container.h"

namespace oasis::ckpt {

class CheckpointManager {
 public:
  /// `dir` is created (with parents) on the first save. `keep` must be ≥ 1.
  explicit CheckpointManager(std::string dir, int keep = 3);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] int keep() const noexcept { return keep_; }

  /// Durably writes `bytes` as generation `generation`, prunes old
  /// generations, and returns the snapshot's path. Throws IoError on
  /// filesystem failure.
  std::string save(std::uint64_t generation, const ByteBuffer& bytes);

  struct Loaded {
    std::uint64_t generation = 0;
    Snapshot snapshot;
  };

  /// Newest generation that passes full validation (see file comment).
  /// Invalid generations encountered on the way are tallied under the
  /// `ckpt.restore.` counter prefix. Throws CheckpointError —
  /// kNoValidGeneration when the directory has no loadable snapshot.
  [[nodiscard]] Loaded load_latest_valid() const;

  /// Generations currently on disk, ascending. Missing directory → empty.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  /// Path a given generation lives at (whether or not it exists).
  [[nodiscard]] std::string path_for(std::uint64_t generation) const;

 private:
  std::string dir_;
  int keep_;
};

}  // namespace oasis::ckpt
