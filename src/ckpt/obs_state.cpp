#include "ckpt/obs_state.h"

#include <string>
#include <utility>

namespace oasis::ckpt {

namespace {
constexpr char kRestorePrefix[] = "ckpt.restore";
}

ByteBuffer encode_obs(const obs::Registry& registry) {
  SectionWriter w;

  const auto counters = registry.counters();
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.str(name);
    w.u64(value);
  }

  const auto gauges = registry.gauges();
  w.u32(static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    w.str(name);
    w.f64(value);
  }

  const auto histograms = registry.histograms();
  w.u32(static_cast<std::uint32_t>(histograms.size()));
  for (const auto& [name, h] : histograms) {
    w.str(name);
    w.u64(h.count);
    w.f64(h.sum);
    w.f64(h.min);
    w.f64(h.max);
    w.u32(static_cast<std::uint32_t>(h.boundaries.size()));
    for (const double b : h.boundaries) w.f64(b);
    for (const std::uint64_t b : h.buckets) w.u64(b);
  }

  const auto spans = registry.spans();
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& [path, stats] : spans) {
    w.str(path);
    w.u64(stats.count);
  }

  return w.take();
}

void apply_obs(const ByteBuffer& payload) {
  obs::Registry& reg = obs::Registry::global();

  // Live restore-activity tallies survive the reset (added back on top of
  // whatever the snapshot itself recorded from earlier resumes).
  std::vector<std::pair<std::string, std::uint64_t>> carried;
  for (const auto& [name, value] : reg.counters()) {
    if (value != 0 && name.rfind(kRestorePrefix, 0) == 0) {
      carried.emplace_back(name, value);
    }
  }

  // Decode FULLY before mutating the registry: a malformed payload must not
  // leave it half-reset. (The section CRC already passed, so this only fires
  // on writer bugs or version skew, but the strong guarantee is cheap.)
  SectionReader r(payload, "obs");
  std::vector<std::pair<std::string, std::uint64_t>> counters(r.u32());
  for (auto& [name, value] : counters) {
    name = r.str();
    value = r.u64();
  }
  std::vector<std::pair<std::string, double>> gauges(r.u32());
  for (auto& [name, value] : gauges) {
    name = r.str();
    value = r.f64();
  }
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> histograms(
      r.u32());
  for (auto& [name, h] : histograms) {
    name = r.str();
    h.count = r.u64();
    h.sum = r.f64();
    h.min = r.f64();
    h.max = r.f64();
    h.boundaries.resize(r.u32());
    for (auto& b : h.boundaries) b = r.f64();
    h.buckets.resize(h.boundaries.size() + 1);
    for (auto& b : h.buckets) b = r.u64();
  }
  std::vector<std::pair<std::string, std::uint64_t>> spans(r.u32());
  for (auto& [path, count] : spans) {
    path = r.str();
    count = r.u64();
  }
  r.expect_end();

  reg.reset();
  for (const auto& [name, value] : counters) reg.restore_counter(name, value);
  for (const auto& [name, value] : gauges) reg.restore_gauge(name, value);
  for (const auto& [name, h] : histograms) reg.restore_histogram(name, h);
  for (const auto& [path, count] : spans) reg.restore_span(path, count);
  for (const auto& [name, value] : carried) reg.counter(name).add(value);
}

}  // namespace oasis::ckpt
