// (De)serialization of an oasis::obs registry for checkpoint snapshots.
//
// A snapshot stores the deterministic face of the registry: counter values,
// gauge values, histogram combined state (count/sum/min/max/boundaries/
// buckets — all deterministic for the library's workloads, see obs.h), and
// span COUNTS. Span nanosecond totals are wall-clock noise, excluded from
// the resume bit-identity contract, and restored as zero.
//
// apply_obs replaces the global registry's contents with the snapshot,
// EXCEPT for counters under the "ckpt.restore" prefix: those tally the very
// restore activity happening right now (invalid generations skipped, restores
// performed), so their live values are carried across the reset and added on
// top of the snapshot's. DESIGN.md §5g documents this as the one name prefix
// excluded from resume bit-identity.
#pragma once

#include <vector>

#include "ckpt/codec.h"
#include "obs/obs.h"

namespace oasis::ckpt {

/// Encodes a registry snapshot (counters, gauges, histograms, span counts).
ByteBuffer encode_obs(const obs::Registry& registry);

/// Resets the GLOBAL registry and restores `payload` into it, preserving
/// live "ckpt.restore"-prefixed counter tallies (see file comment). Throws
/// CheckpointError{kMalformedSection} on a damaged payload.
void apply_obs(const ByteBuffer& payload);

}  // namespace oasis::ckpt
