#include "common/cli.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.h"

namespace oasis::common {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  OASIS_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, /*is_bool=*/false};
  order_.push_back(name);
}

void CliParser::add_bool(const std::string& name, const std::string& help) {
  OASIS_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, "false", /*is_bool=*/true};
  order_.push_back(name);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      throw ConfigError("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw ConfigError("unknown flag --" + arg + "\n" + help());
    }
    if (it->second.is_bool) {
      it->second.value = has_value ? value : "true";
    } else if (has_value) {
      it->second.value = value;
    } else {
      if (i + 1 >= argc) throw ConfigError("flag --" + arg + " needs a value");
      it->second.value = argv[++i];
    }
  }
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  OASIS_CHECK_MSG(it != flags_.end(), "unregistered flag --" << name);
  return it->second;
}

std::string CliParser::get(const std::string& name) const {
  return find(name).value;
}

namespace {
/// strto* skip leading whitespace; a flag token starting with one is noise.
bool leading_space(const std::string& v) {
  return !v.empty() && std::isspace(static_cast<unsigned char>(v[0])) != 0;
}
}  // namespace

std::int64_t CliParser::get_int(const std::string& name) const {
  const auto& v = find(name).value;
  // strtoll instead of stoll: stoll accepts trailing garbage ("12x" → 12),
  // which turns a typo into a silently different run. Demand that the token
  // parses in full and fits the type.
  if (leading_space(v)) {
    throw ConfigError("flag --" + name + " expects an integer, got: " + v);
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw ConfigError("flag --" + name + " expects an integer, got: " + v);
  }
  return parsed;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const auto& v = find(name).value;
  // Reject the sign up front: strtoull happily parses "-1" and wraps it to
  // 2^64-1, the exact silent catastrophe this accessor exists to prevent.
  if (leading_space(v) || (!v.empty() && (v[0] == '-' || v[0] == '+'))) {
    throw ConfigError("flag --" + name +
                      " expects a non-negative integer, got: " + v);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw ConfigError("flag --" + name +
                      " expects a non-negative integer, got: " + v);
  }
  return parsed;
}

std::uint64_t CliParser::get_uint_range(const std::string& name,
                                        std::uint64_t lo,
                                        std::uint64_t hi) const {
  const std::uint64_t parsed = get_uint(name);
  if (parsed < lo || parsed > hi) {
    throw ConfigError("flag --" + name + " expects a value in [" +
                      std::to_string(lo) + ", " + std::to_string(hi) +
                      "], got: " + find(name).value);
  }
  return parsed;
}

real CliParser::get_real(const std::string& name) const {
  const auto& v = find(name).value;
  if (leading_space(v)) {
    throw ConfigError("flag --" + name + " expects a number, got: " + v);
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw ConfigError("flag --" + name + " expects a number, got: " + v);
  }
  return parsed;
}

bool CliParser::get_bool(const std::string& name) const {
  const auto& v = find(name).value;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw ConfigError("flag --" + name + " expects true/false, got: " + v);
}

HostPort parse_host_port(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw ConfigError("expected host:port, got: " + spec);
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  for (const char c : port_str) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw ConfigError("expected host:port with a numeric port, got: " +
                        spec);
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(port_str.c_str(), &end, 10);
  if (end != port_str.c_str() + port_str.size() || errno == ERANGE ||
      parsed < 1 || parsed > 65535) {
    throw ConfigError("port must be in [1, 65535], got: " + spec);
  }
  hp.port = static_cast<std::uint16_t>(parsed);
  return hp;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name;
    if (!f.is_bool) os << " <value>";
    os << "\n      " << f.help;
    os << " (default: " << f.value << ")\n";
  }
  return os.str();
}

}  // namespace oasis::common
