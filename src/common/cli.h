// Tiny command-line flag parser used by benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
// Unknown flags raise ConfigError so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace oasis::common {

/// Declarative flag registry + parser.
///
///   CliParser cli("fig03_rtf_defense", "Reproduces Figure 3");
///   cli.add_flag("batches", "number of attack batches", "16");
///   cli.add_bool("full", "run the paper-scale configuration");
///   cli.parse(argc, argv);
///   int batches = cli.get_int("batches");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a value flag with a default.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);

  /// Registers a boolean flag (defaults to false).
  void add_bool(const std::string& name, const std::string& help);

  /// Parses argv; prints help and exits(0) on --help. Throws ConfigError on
  /// unknown flags or missing values.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  /// Strict integer parse: the whole token must be a base-10 integer within
  /// std::int64_t range. "12x", "1e3", "" and overflowing values all throw
  /// ConfigError — a mistyped flag must fail loudly, not truncate silently.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  /// Strict unsigned parse: get_int plus a non-negativity check, for count
  /// flags (--rounds, --checkpoint-every) where -1 silently wrapping to a
  /// huge count would be catastrophic.
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  /// get_uint plus an inclusive [lo, hi] range check. The range flags of the
  /// sharded round engine (--shard-size, --population) go through this so a
  /// zero shard size or an absurd population fails with a typed ConfigError
  /// naming the accepted range instead of surfacing later as a division by
  /// zero or an allocation failure deep inside the engine.
  [[nodiscard]] std::uint64_t get_uint_range(const std::string& name,
                                             std::uint64_t lo,
                                             std::uint64_t hi) const;
  /// Strict floating parse: whole-token, finite-range (ERANGE throws).
  [[nodiscard]] real get_real(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Help text listing all registered flags.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

/// A parsed "host:port" endpoint.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Strict "host:port" parse for --connect/--listen style flags. The port
/// must be a full-token base-10 integer in [1, 65535]; a missing colon, an
/// empty host, trailing garbage ("7400x"), or an out-of-range port all throw
/// ConfigError. (The previous std::stoul path accepted "7400abc" and
/// silently truncated ports above 65535 through the uint16 cast.)
HostPort parse_host_port(const std::string& spec);

}  // namespace oasis::common
