#include "common/crc32c.h"

#include <array>

namespace oasis::common {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tables[k][b]: CRC contribution of byte b at lane k of a 4-byte slice.
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      for (int k = 1; k < 4; ++k) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables g;
  return g;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace oasis::common
