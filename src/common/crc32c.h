// CRC32C (Castagnoli) checksums for payload integrity.
//
// Used by two durability layers: tensor::serialize_tensors appends a payload
// checksum to every FL wire message, and the oasis::ckpt container carries a
// per-section CRC plus a whole-file footer CRC. CRC32C detects all single-bit
// and all burst errors up to 32 bits, which is exactly the torn-write /
// bit-rot threat model — it is NOT a cryptographic MAC and offers no defense
// against a deliberate forger (who controls the payload and can fix the CRC).
//
// The implementation is a portable slice-by-4 table walk (no SSE4.2
// dependency); at ~1-2 GB/s it is far from the bottleneck of any path that
// also touches the disk or the network.
#pragma once

#include <cstddef>
#include <cstdint>

namespace oasis::common {

/// CRC32C over `data[0, n)`, continuing from `seed` (pass the previous call's
/// result to checksum a buffer in pieces; the default starts a fresh stream).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace oasis::common
