// Error handling: exceptions thrown at API boundaries plus CHECK macros.
//
// Following the C++ Core Guidelines (E.2, E.3), programming errors and
// violated preconditions throw; callers that can recover catch
// `oasis::Error` (or a subclass) at a suitable boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>

namespace oasis {

/// Base class for all errors raised by the OASIS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when tensor shapes are incompatible for an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Raised on malformed serialized payloads (FL messages, model snapshots).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Raised when a payload's CRC32C trailer does not match its contents — the
/// bytes were damaged in flight (bit flip, truncation, torn write) even if
/// the structure still happens to parse. Subclasses SerializationError so
/// existing catch sites treat it as a malformed payload.
class ChecksumError : public SerializationError {
 public:
  explicit ChecksumError(const std::string& what) : SerializationError(what) {}
};

/// Raised on invalid user-supplied configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when gradient aggregation is impossible (empty or fully rejected
/// update set, zero total weight).
class AggregationError : public Error {
 public:
  explicit AggregationError(const std::string& what) : Error(what) {}
};

/// Raised when an FL round cannot reach its configured quorum of valid
/// client updates. The round is aborted and the global model rolled back.
class QuorumError : public Error {
 public:
  explicit QuorumError(const std::string& what) : Error(what) {}
};

/// Raised by a client's model-audit gate when a dispatched global model
/// looks implanted (RTF row duplication / bias ladder, CAH trap rows, norm
/// outliers). The client gracefully refuses the round: engines catch this,
/// tally fl.audit.* counters, and proceed with the remaining cohort.
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error(what) {}
};

/// Raised in strict collection mode when clients are lost to dropout or
/// missed deadlines after all retry attempts.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Raised on filesystem failures (open/write/fsync/rename/read). Captures
/// the failing path and the OS errno so a checkpoint failure in a log is
/// diagnosable without a debugger ("disk full writing /ckpt/x.tmp" rather
/// than a bare "io error").
class IoError : public Error {
 public:
  IoError(const std::string& op, const std::string& path, int err)
      : Error(op + " '" + path + "': " +
              (err != 0 ? describe_errno(err) : std::string("unknown error"))),
        path_(path),
        errno_(err) {}

  const std::string& path() const noexcept { return path_; }
  int error_number() const noexcept { return errno_; }

 private:
  // std::system_category is the thread-safe spelling of strerror().
  static std::string describe_errno(int err) {
    return std::error_code(err, std::system_category()).message() +
           " (errno " + std::to_string(err) + ")";
  }

  std::string path_;
  int errno_;
};

/// Raised when a checkpoint container cannot be loaded (or no valid
/// generation exists). The reason code distinguishes structural damage,
/// checksum damage, and state mismatches so callers can log precisely and
/// tests can assert the exact failure class.
class CheckpointError : public Error {
 public:
  enum class Reason {
    kBadMagic,            // not an oasis.ckpt container at all
    kBadVersion,          // container version not understood
    kTruncated,           // file smaller than a minimal container
    kFooterChecksum,      // whole-file CRC mismatch (torn / bit-rotted file)
    kSectionChecksum,     // a section's payload CRC mismatch
    kMalformedDirectory,  // directory entries out of bounds / overlapping
    kMalformedSection,    // a section parsed but its contents are invalid
    kMissingSection,      // a required section is absent
    kStateMismatch,       // snapshot disagrees with the live configuration
    kNoValidGeneration,   // every retained generation failed validation
    kIo,                  // underlying filesystem failure
  };

  CheckpointError(Reason reason, const std::string& what)
      : Error(std::string("checkpoint error [") + reason_name(reason) +
              "]: " + what),
        reason_(reason) {}

  Reason reason() const noexcept { return reason_; }

  static const char* reason_name(Reason r) noexcept {
    switch (r) {
      case Reason::kBadMagic: return "bad_magic";
      case Reason::kBadVersion: return "bad_version";
      case Reason::kTruncated: return "truncated";
      case Reason::kFooterChecksum: return "footer_checksum";
      case Reason::kSectionChecksum: return "section_checksum";
      case Reason::kMalformedDirectory: return "malformed_directory";
      case Reason::kMalformedSection: return "malformed_section";
      case Reason::kMissingSection: return "missing_section";
      case Reason::kStateMismatch: return "state_mismatch";
      case Reason::kNoValidGeneration: return "no_valid_generation";
      case Reason::kIo: return "io";
    }
    return "unknown";
  }

 private:
  Reason reason_;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OASIS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace oasis

/// Precondition check that throws oasis::Error with location info.
#define OASIS_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::oasis::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

/// Precondition check with a streamed message:
///   OASIS_CHECK_MSG(a == b, "mismatch: " << a << " vs " << b);
#define OASIS_CHECK_MSG(expr, stream_expr)                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream oasis_check_os_;                                  \
      oasis_check_os_ << stream_expr;                                      \
      ::oasis::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    oasis_check_os_.str());                \
    }                                                                      \
  } while (0)
