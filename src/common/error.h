// Error handling: exceptions thrown at API boundaries plus CHECK macros.
//
// Following the C++ Core Guidelines (E.2, E.3), programming errors and
// violated preconditions throw; callers that can recover catch
// `oasis::Error` (or a subclass) at a suitable boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oasis {

/// Base class for all errors raised by the OASIS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when tensor shapes are incompatible for an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Raised on malformed serialized payloads (FL messages, model snapshots).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Raised on invalid user-supplied configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when gradient aggregation is impossible (empty or fully rejected
/// update set, zero total weight).
class AggregationError : public Error {
 public:
  explicit AggregationError(const std::string& what) : Error(what) {}
};

/// Raised when an FL round cannot reach its configured quorum of valid
/// client updates. The round is aborted and the global model rolled back.
class QuorumError : public Error {
 public:
  explicit QuorumError(const std::string& what) : Error(what) {}
};

/// Raised in strict collection mode when clients are lost to dropout or
/// missed deadlines after all retry attempts.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OASIS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace oasis

/// Precondition check that throws oasis::Error with location info.
#define OASIS_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::oasis::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

/// Precondition check with a streamed message:
///   OASIS_CHECK_MSG(a == b, "mismatch: " << a << " vs " << b);
#define OASIS_CHECK_MSG(expr, stream_expr)                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream oasis_check_os_;                                  \
      oasis_check_os_ << stream_expr;                                      \
      ::oasis::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    oasis_check_os_.str());                \
    }                                                                      \
  } while (0)
