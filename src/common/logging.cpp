#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <iomanip>

#include "common/error.h"

namespace oasis::common {
namespace {

LogLevel& threshold_storage() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage(); }

void set_log_threshold(LogLevel level) { threshold_storage() = level; }

LogLevel parse_log_level(const std::string& s) {
  std::string lower(s.size(), '\0');
  std::transform(s.begin(), s.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  throw ConfigError("unknown log level: " + s);
}

namespace detail {

LogLine::LogLine(LogLevel level)
    : level_(level), enabled_(level >= log_threshold() &&
                              level != LogLevel::kOff) {}

LogLine::~LogLine() {
  if (!enabled_) return;
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch()) .count() % 1000;
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  std::ostringstream line;
  line << '[' << std::put_time(&tm_buf, "%H:%M:%S") << '.' << std::setw(3)
       << std::setfill('0') << ms << "] [" << tag(level_) << "] "
       << os_.str() << '\n';
  std::cerr << line.str();
}

}  // namespace detail
}  // namespace oasis::common
