// Minimal leveled logger writing to stderr.
//
// Usage:  OASIS_LOG(info) << "round " << r << " complete";
// Levels below the global threshold compile to a no-op stream evaluation.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace oasis::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are suppressed.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-insensitive).
LogLevel parse_log_level(const std::string& s);

namespace detail {

/// Accumulates one log line and flushes it (with level tag and timestamp)
/// on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace oasis::common

#define OASIS_LOG(level)                     \
  ::oasis::common::detail::LogLine(          \
      ::oasis::common::LogLevel::k##level)

// Convenience aliases matching common lowercase spellings.
#define OASIS_LOG_DEBUG ::oasis::common::detail::LogLine(::oasis::common::LogLevel::kDebug)
#define OASIS_LOG_INFO  ::oasis::common::detail::LogLine(::oasis::common::LogLevel::kInfo)
#define OASIS_LOG_WARN  ::oasis::common::detail::LogLine(::oasis::common::LogLevel::kWarn)
#define OASIS_LOG_ERROR ::oasis::common::detail::LogLine(::oasis::common::LogLevel::kError)
