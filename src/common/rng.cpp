#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace oasis::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) {
  // Mix a fresh draw with the stream id through SplitMix64 to seed the child.
  std::uint64_t s = (*this)() ^ (stream_id * 0xD2B74407B1CE6E93ULL + 1);
  return Rng(splitmix64(s));
}

real Rng::uniform(real lo, real hi) {
  // 53-bit mantissa yields uniform double in [0, 1).
  const real u01 =
      static_cast<real>((*this)() >> 11) * 0x1.0p-53;
  return lo + (hi - lo) * u01;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OASIS_CHECK_MSG(lo <= hi, "uniform_int: lo=" << lo << " > hi=" << hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

real Rng::normal(real mean, real stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  real u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const real factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

bool Rng::bernoulli(real p) { return uniform() < p; }

std::vector<index_t> Rng::sample_without_replacement(index_t n, index_t k) {
  OASIS_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  std::vector<index_t> all(n);
  for (index_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: only the first k positions need to be finalized.
  for (index_t i = 0; i < k; ++i) {
    const auto j = static_cast<index_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

real inverse_normal_cdf(real p) {
  OASIS_CHECK_MSG(p > 0.0 && p < 1.0, "inverse_normal_cdf: p=" << p);
  // Acklam's algorithm.
  static constexpr real a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr real b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
  static constexpr real c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr real d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
  constexpr real p_low = 0.02425;
  constexpr real p_high = 1.0 - p_low;

  real x = 0.0;
  if (p < p_low) {
    const real q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const real q = p - 0.5;
    const real r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const real q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step for ~1e-15 accuracy.
  const real e = normal_cdf(x) - p;
  const real u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                 std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

real normal_cdf(real x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace oasis::common
