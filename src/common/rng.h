// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (weight init, dataset synthesis,
// client sampling, attack calibration, augmentation parameters) draws from an
// explicitly seeded `Rng` so that a whole experiment is a pure function of
// its seed. The engine is xoshiro256** (Blackman & Vigna), which is fast,
// high-quality, and trivially splittable for per-component streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace oasis::common {

/// xoshiro256** PRNG with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the members below are preferred (stable across
/// standard-library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Derives an independent child stream; deterministic in (parent state
  /// consumed, `stream_id`). Used to give each FL client / dataset shard its
  /// own stream without coupling their sequences.
  [[nodiscard]] Rng split(std::uint64_t stream_id);

  /// Uniform real in [lo, hi).
  real uniform(real lo = 0.0, real hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (uses an internal cached spare).
  real normal(real mean = 0.0, real stddev = 1.0);

  /// Bernoulli trial with probability `p` of true.
  bool bernoulli(real p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<index_t> sample_without_replacement(index_t n, index_t k);

  /// Complete serializable engine state: the four xoshiro256** words plus
  /// the Box–Muller spare. Capturing and later restoring it resumes the
  /// stream at exactly the same position — the checkpoint subsystem depends
  /// on this to make resumed runs bit-identical.
  struct State {
    std::array<std::uint64_t, 4> words{};
    real spare_normal = 0.0;
    bool has_spare = false;
  };

  [[nodiscard]] State state() const {
    return State{state_, spare_normal_, has_spare_};
  }

  void set_state(const State& s) {
    state_ = s.words;
    spare_normal_ = s.spare_normal;
    has_spare_ = s.has_spare;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  real spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9
/// absolute error). Used by attack calibration to place RTF bin cutoffs and
/// CAH activation thresholds at Gaussian quantiles, exactly as the attack
/// papers prescribe.
real inverse_normal_cdf(real p);

/// Standard-normal CDF via std::erfc.
real normal_cdf(real x);

}  // namespace oasis::common
