// Wall-clock stopwatch for benchmark harnesses and progress logging.
#pragma once

#include <chrono>

namespace oasis::common {

/// Starts running on construction; `seconds()` reads elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Resets the start point to now.
  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace oasis::common
