// Fundamental scalar and index types shared by every OASIS subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace oasis {

/// Scalar type for all model/attack arithmetic.
///
/// Double precision is load-bearing: the paper's "perfect reconstruction"
/// signature (PSNR 130-145 dB) corresponds to a pixel-space MSE of ~1e-14,
/// which is only reachable when the gradient inversion arithmetic carries
/// ~1e-15 relative error. Single precision would cap PSNR near 120 dB.
using real = double;

/// Scalar type for the throughput paths (training, serving, million-client
/// aggregation bandwidth): half the bytes, twice the SIMD lanes of `real`.
/// The attack/PSNR evaluation never uses it — see the note above.
using real32 = float;

/// Index type for tensor shapes and loops.
using index_t = std::size_t;

}  // namespace oasis
