#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace oasis::core {

DpGaussianMechanism::DpGaussianMechanism(real clip_norm,
                                         real noise_multiplier)
    : clip_norm_(clip_norm), noise_multiplier_(noise_multiplier) {
  OASIS_CHECK(clip_norm_ > 0.0);
  OASIS_CHECK(noise_multiplier_ >= 0.0);
}

std::vector<tensor::Tensor> DpGaussianMechanism::process(
    std::vector<tensor::Tensor> gradients, common::Rng& rng) const {
  // Global L2 norm across the whole update (per-update sensitivity).
  real sq = 0.0;
  for (const auto& g : gradients) {
    for (const auto v : g.data()) sq += v * v;
  }
  const real norm = std::sqrt(sq);
  const real scale = norm > clip_norm_ ? clip_norm_ / norm : 1.0;
  const real stddev = noise_multiplier_ * clip_norm_;
  for (auto& g : gradients) {
    for (auto& v : g.data()) {
      v = v * scale + (stddev > 0.0 ? rng.normal(0.0, stddev) : 0.0);
    }
  }
  return gradients;
}

std::string DpGaussianMechanism::name() const {
  std::ostringstream os;
  os << "dp[C=" << clip_norm_ << ",sigma=" << noise_multiplier_ << "]";
  return os.str();
}

TopKPruning::TopKPruning(real keep_fraction) : keep_fraction_(keep_fraction) {
  OASIS_CHECK_MSG(keep_fraction_ > 0.0 && keep_fraction_ <= 1.0,
                  "keep fraction " << keep_fraction_);
}

std::vector<tensor::Tensor> TopKPruning::process(
    std::vector<tensor::Tensor> gradients, common::Rng& /*rng*/) const {
  for (auto& g : gradients) {
    if (g.size() == 0) continue;
    const auto keep = static_cast<index_t>(
        std::max<real>(1.0, std::floor(keep_fraction_ *
                                       static_cast<real>(g.size()))));
    if (keep >= g.size()) continue;
    // Per-tensor magnitude threshold via nth_element on |g|.
    std::vector<real> magnitudes(g.size());
    for (index_t i = 0; i < g.size(); ++i) magnitudes[i] = std::abs(g[i]);
    std::nth_element(magnitudes.begin(),
                     magnitudes.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     magnitudes.end(), std::greater<real>());
    const real threshold = magnitudes[keep - 1];
    for (auto& v : g.data()) {
      if (std::abs(v) < threshold) v = 0.0;
    }
  }
  return gradients;
}

std::string TopKPruning::name() const {
  std::ostringstream os;
  os << "prune[keep=" << keep_fraction_ << "]";
  return os.str();
}

}  // namespace oasis::core
