// Baseline defenses from the paper's Related Work, for ablation comparison:
//
//  * DP-SGD-style Gaussian mechanism (Abadi et al. 2016) — clip the update's
//    global L2 norm and add calibrated Gaussian noise. The paper (and Fowl /
//    Boenisch) argue the noise needed to blind gradient inversion destroys
//    model utility; `ablation_baselines` measures both sides.
//  * Gradient pruning / sparsification (Zhu et al. 2019; Sun et al. 2021) —
//    zero all but the largest-magnitude fraction of gradient entries. The
//    paper notes reconstructions remain recognizable even at heavy pruning.
#pragma once

#include "fl/postprocessor.h"

namespace oasis::core {

/// Gaussian mechanism on the flattened client update:
/// g ← g · min(1, clip/‖g‖₂) + N(0, (σ·clip)²·I).
class DpGaussianMechanism : public fl::UpdatePostprocessor {
 public:
  /// `clip_norm` is the L2 sensitivity bound C; `noise_multiplier` is σ
  /// (noise stddev = σ·C), the usual DP-SGD parameterization.
  DpGaussianMechanism(real clip_norm, real noise_multiplier);

  std::vector<tensor::Tensor> process(std::vector<tensor::Tensor> gradients,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] real clip_norm() const { return clip_norm_; }
  [[nodiscard]] real noise_multiplier() const { return noise_multiplier_; }

 private:
  real clip_norm_;
  real noise_multiplier_;
};

/// Keeps only the top `keep_fraction` of entries by magnitude in each
/// gradient tensor (per-tensor threshold), zeroing the rest.
class TopKPruning : public fl::UpdatePostprocessor {
 public:
  explicit TopKPruning(real keep_fraction);

  std::vector<tensor::Tensor> process(std::vector<tensor::Tensor> gradients,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] real keep_fraction() const { return keep_fraction_; }

 private:
  real keep_fraction_;
};

}  // namespace oasis::core
