#include "core/experiment.h"

#include <memory>

#include "attack/cah.h"
#include "attack/linear_inversion.h"
#include "attack/rtf.h"
#include "common/error.h"
#include "core/oasis.h"
#include "data/image.h"
#include "fl/client.h"
#include "fl/simulation.h"
#include "nn/models.h"

namespace oasis::core {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kRtf: return "RTF";
    case AttackKind::kCah: return "CAH";
    case AttackKind::kLinear: return "LinearInv";
  }
  return "?";
}

AttackKind parse_attack_kind(const std::string& name) {
  if (name == "RTF" || name == "rtf") return AttackKind::kRtf;
  if (name == "CAH" || name == "cah") return AttackKind::kCah;
  if (name == "LinearInv" || name == "linear") return AttackKind::kLinear;
  throw ConfigError("unknown attack: " + name);
}

real AttackExperimentResult::mean_psnr() const {
  OASIS_CHECK(!per_image_psnr.empty());
  real s = 0.0;
  for (const auto v : per_image_psnr) s += v;
  return s / static_cast<real>(per_image_psnr.size());
}

AttackExperimentResult run_attack_experiment(
    const data::InMemoryDataset& victim_data,
    const data::InMemoryDataset& aux_data,
    const AttackExperimentConfig& cfg) {
  OASIS_CHECK(!victim_data.empty() && !aux_data.empty());
  tensor::check_same_shape(victim_data.image_shape(), aux_data.image_shape(),
                           "victim vs aux image shape");
  const auto& ishape = victim_data.image_shape();
  const nn::ImageSpec spec{ishape[0], ishape[1], ishape[2]};
  const index_t classes = cfg.classes;

  // --- Attack object -------------------------------------------------------
  std::unique_ptr<attack::ActiveAttack> atk;
  switch (cfg.attack) {
    case AttackKind::kRtf:
      atk = std::make_unique<attack::RtfAttack>(spec, cfg.neurons, aux_data);
      break;
    case AttackKind::kCah:
      atk = std::make_unique<attack::CahAttack>(
          spec, cfg.neurons, 1.0 / static_cast<real>(cfg.batch_size),
          aux_data, cfg.seed ^ 0xCA44);
      break;
    case AttackKind::kLinear:
      atk = std::make_unique<attack::LinearInversionAttack>(spec, classes);
      break;
  }

  // --- Federation: dishonest server + one victim client --------------------
  common::Rng model_rng(cfg.seed ^ 0x5EED);
  fl::ModelFactory factory;
  if (cfg.attack == AttackKind::kLinear) {
    factory = [spec, classes, &model_rng] {
      return nn::make_linear_model(spec, classes, model_rng);
    };
  } else {
    const index_t n = cfg.neurons;
    factory = [spec, classes, n, &model_rng] {
      return nn::make_attack_host(spec, n, classes, model_rng);
    };
  }

  auto server = std::make_unique<fl::MaliciousServer>(
      factory(), /*learning_rate=*/1e-3, atk->manipulator());
  auto* malicious_server = server.get();

  const bool linear = cfg.attack == AttackKind::kLinear;
  const auto sampling = linear ? fl::BatchSampling::kUniqueLabels
                               : fl::BatchSampling::kUniform;
  const auto loss_kind = linear ? fl::LossKind::kSigmoidBce
                                : fl::LossKind::kSoftmaxCrossEntropy;
  std::vector<std::unique_ptr<fl::Client>> clients;
  clients.push_back(std::make_unique<fl::Client>(
      /*id=*/0, victim_data, factory, cfg.batch_size,
      make_preprocessor(cfg.transforms), common::Rng(cfg.seed ^ 0xC11E),
      sampling, loss_kind));
  if (cfg.postprocessor) {
    clients.front()->set_update_postprocessor(cfg.postprocessor);
  }
  auto* victim = clients.front().get();

  fl::Simulation sim(std::move(server), std::move(clients),
                     fl::SimulationConfig{/*clients_per_round=*/1,
                                          /*seed=*/cfg.seed});

  // --- Attack rounds --------------------------------------------------------
  AttackExperimentResult result;
  real loss_sum = 0.0;
  for (index_t round = 0; round < cfg.num_batches; ++round) {
    sim.run_round();
    loss_sum += victim->last_loss();

    const auto& captured = malicious_server->captured();
    OASIS_CHECK(!captured.empty());
    const auto grads =
        tensor::deserialize_tensors(captured.back().gradients);
    const auto candidates = atk->reconstruct(grads);

    const auto originals = data::unstack_images(victim->last_raw_batch().images);
    const auto scores = attack::best_match_psnr(candidates, originals);
    for (const auto& s : scores) result.per_image_psnr.push_back(s.best_psnr);

    if (cfg.collect_visuals && round == 0) {
      result.visual_originals = originals;
      for (const auto& s : scores) {
        if (s.best_psnr > 0.0 && s.best_candidate < candidates.size()) {
          result.visual_reconstructions.push_back(
              data::clamp01(candidates[s.best_candidate]));
        } else {
          // No candidate matched at all — emit a black frame placeholder.
          result.visual_reconstructions.emplace_back(
              originals.front().shape());
        }
      }
    }
  }
  result.mean_client_loss =
      loss_sum / static_cast<real>(cfg.num_batches);
  return result;
}

}  // namespace oasis::core
