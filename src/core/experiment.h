// Attack-vs-defense experiment harness.
//
// This is the shared engine behind every attack figure (3, 4, 9, 10, 13 and
// the visual panels 2, 5-8, 11-12): it stands up a real FL round — dishonest
// server, victim client, serialized messages — runs the chosen attack for a
// number of rounds, and scores reconstructions against the victim's
// pre-augmentation batch with the paper's best-match PSNR protocol.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/recon_eval.h"
#include "augment/transforms.h"
#include "data/dataset.h"
#include "fl/postprocessor.h"
#include "tensor/tensor.h"

namespace oasis::core {

enum class AttackKind { kRtf, kCah, kLinear };

std::string to_string(AttackKind kind);
AttackKind parse_attack_kind(const std::string& name);

struct AttackExperimentConfig {
  AttackKind attack = AttackKind::kRtf;
  /// Victim batch size B (the paper evaluates 8 and 64).
  index_t batch_size = 8;
  /// Attacked neurons n (ignored for the linear model, which uses one neuron
  /// per class by construction).
  index_t neurons = 256;
  /// Fresh victim batches to attack; PSNRs aggregate over all of them.
  index_t num_batches = 8;
  /// OASIS transform set; empty = undefended baseline (WO).
  std::vector<augment::TransformKind> transforms;
  /// Optional gradient postprocessor (baseline defenses: DP noise, pruning).
  fl::PostprocessorPtr postprocessor;
  /// Classes of the classification head.
  index_t classes = 10;
  std::uint64_t seed = 99;
  /// Keep the first round's originals and their best-matching
  /// reconstructions for visual output (Figures 2, 5-8, 11-12).
  bool collect_visuals = false;
};

struct AttackExperimentResult {
  /// Best-match PSNR of every original image across all batches — the raw
  /// sample behind one box of the paper's box plots.
  std::vector<real> per_image_psnr;
  /// Present when collect_visuals: the first batch's originals and the
  /// best-matching reconstruction for each (clamped to [0,1]).
  std::vector<tensor::Tensor> visual_originals;
  std::vector<tensor::Tensor> visual_reconstructions;
  /// Mean local loss observed by the victim (sanity signal that training
  /// still functions under the implant).
  real mean_client_loss = 0.0;

  [[nodiscard]] real mean_psnr() const;
};

/// Runs the experiment. `victim_data` is the targeted user's local dataset;
/// `aux_data` is the attacker-side public calibration sample (disjoint from
/// the victim's data in all benches).
AttackExperimentResult run_attack_experiment(
    const data::InMemoryDataset& victim_data,
    const data::InMemoryDataset& aux_data, const AttackExperimentConfig& cfg);

}  // namespace oasis::core
