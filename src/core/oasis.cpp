#include "core/oasis.h"

namespace oasis::core {

OasisDefense::OasisDefense(OasisConfig config)
    : policy_(augment::make_policy(config.transforms)) {}

OasisDefense::OasisDefense(augment::AugmentationPolicy policy)
    : policy_(std::move(policy)) {}

data::Batch OasisDefense::process(const data::Batch& batch,
                                  common::Rng& rng) const {
  return policy_.augment(batch, rng);
}

std::string OasisDefense::name() const {
  return "oasis[" + policy_.label() + "]";
}

fl::PreprocessorPtr make_preprocessor(
    const std::vector<augment::TransformKind>& transforms) {
  augment::AugmentationPolicy policy = augment::make_policy(transforms);
  if (policy.empty()) {
    return std::make_shared<fl::IdentityPreprocessor>();
  }
  return std::make_shared<OasisDefense>(std::move(policy));
}

}  // namespace oasis::core
