// OasisDefense — the paper's contribution as a client-side preprocessor.
//
// OASIS extends every local training batch D with augmented copies of each
// image (Eq. 4), chosen so original and copies activate the same attacked
// neurons (Proposition 1). The attacked gradients then memorize only linear
// combinations, and gradient inversion yields unrecognizable overlaps.
#pragma once

#include <memory>
#include <vector>

#include "augment/policy.h"
#include "fl/preprocessor.h"

namespace oasis::core {

/// Transform selection for the defense. The paper's strongest configurations
/// are {MajorRotation} against RTF and {MajorRotation, Shear} against CAH.
struct OasisConfig {
  std::vector<augment::TransformKind> transforms;
};

class OasisDefense : public fl::BatchPreprocessor {
 public:
  explicit OasisDefense(OasisConfig config);
  explicit OasisDefense(augment::AugmentationPolicy policy);

  /// D → D' = D ∪ ⋃_t X'_t, originals first, copied labels.
  data::Batch process(const data::Batch& batch,
                      common::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const augment::AugmentationPolicy& policy() const {
    return policy_;
  }

 private:
  augment::AugmentationPolicy policy_;
};

/// Builds the preprocessor for a transform list; an empty list yields the
/// identity preprocessor (the undefended baseline "WO").
fl::PreprocessorPtr make_preprocessor(
    const std::vector<augment::TransformKind>& transforms);

}  // namespace oasis::core
