#include "core/trainer.h"

#include <memory>

#include "augment/policy.h"
#include "ckpt/codec.h"
#include "ckpt/container.h"
#include "ckpt/manager.h"
#include "common/logging.h"
#include "metrics/accuracy.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "tensor/serialize.h"

namespace oasis::core {

namespace {

/// Everything the epoch loop reads: the trainer checkpoint payload.
struct TrainerState {
  index_t epochs_done = 0;
  std::vector<real> epoch_loss;
};

tensor::ByteBuffer encode_trainer_checkpoint(const TrainerConfig& config,
                                             nn::Sequential& model,
                                             const nn::Optimizer& optimizer,
                                             const common::Rng& rng,
                                             const TrainerState& state) {
  obs::counter("ckpt.save_total").add(1);
  ckpt::SnapshotBuilder builder;
  {
    ckpt::SectionWriter meta;
    meta.u64(state.epochs_done);
    meta.u64(config.seed);
    meta.u64(config.batch_size);
    builder.add("meta", meta.take());
  }
  builder.add("model", nn::serialize_state(model));
  builder.add("opt", tensor::serialize_tensors(optimizer.state_tensors()));
  {
    ckpt::SectionWriter w;
    const common::Rng::State s = rng.state();
    for (const auto word : s.words) w.u64(word);
    w.f64(s.spare_normal);
    w.u8(s.has_spare ? 1 : 0);
    builder.add("rng", w.take());
  }
  {
    ckpt::SectionWriter w;
    w.u32(static_cast<std::uint32_t>(state.epoch_loss.size()));
    for (const real l : state.epoch_loss) w.f64(static_cast<double>(l));
    builder.add("loss", w.take());
  }
  return builder.finish();
}

TrainerState apply_trainer_checkpoint(const ckpt::Snapshot& snap,
                                      const TrainerConfig& config,
                                      nn::Sequential& model,
                                      nn::Optimizer& optimizer,
                                      common::Rng& rng) {
  using Reason = CheckpointError::Reason;
  ckpt::SectionReader meta(snap.section("meta"), "meta");
  TrainerState state;
  state.epochs_done = static_cast<index_t>(meta.u64());
  const std::uint64_t seed = meta.u64();
  const std::uint64_t batch_size = meta.u64();
  meta.expect_end();
  if (seed != config.seed || batch_size != config.batch_size) {
    throw CheckpointError(Reason::kStateMismatch,
                          "trainer snapshot belongs to a different run (seed " +
                              std::to_string(seed) + ", batch " +
                              std::to_string(batch_size) + ")");
  }

  ckpt::SectionReader rng_r(snap.section("rng"), "rng");
  common::Rng::State rs;
  for (auto& word : rs.words) word = rng_r.u64();
  rs.spare_normal = rng_r.f64();
  rs.has_spare = rng_r.u8() != 0;
  rng_r.expect_end();

  ckpt::SectionReader loss_r(snap.section("loss"), "loss");
  state.epoch_loss.resize(loss_r.u32());
  for (auto& l : state.epoch_loss) l = static_cast<real>(loss_r.f64());
  loss_r.expect_end();

  try {
    nn::deserialize_state(model, snap.section("model"));
    optimizer.load_state_tensors(
        tensor::deserialize_tensors(snap.section("opt")));
  } catch (const Error& e) {
    throw CheckpointError(
        Reason::kStateMismatch,
        std::string("trainer snapshot does not fit the live model: ") +
            e.what());
  }
  rng.set_state(rs);
  obs::counter("ckpt.restore_total").add(1);
  return state;
}

}  // namespace

TrainResult train_classifier(nn::Sequential& model,
                             const data::InMemoryDataset& train,
                             const data::InMemoryDataset& test,
                             const TrainerConfig& config) {
  OASIS_CHECK(!train.empty() && !test.empty());
  OASIS_CHECK(config.epochs >= 1);
  const augment::AugmentationPolicy policy =
      augment::make_policy(config.transforms);
  common::Rng rng(config.seed);
  nn::Adam optimizer(model.parameters(), config.adam);
  nn::SoftmaxCrossEntropy loss_fn;

  static obs::Counter& step_counter = obs::counter("train.steps");
  static obs::Counter& epoch_counter = obs::counter("train.epochs");
  static obs::Counter& example_counter = obs::counter("train.examples");
  obs::Gauge& loss_gauge = obs::gauge("train.last_epoch_loss");

  TrainResult result;
  index_t start_epoch = 0;
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (!config.checkpoint_dir.empty()) {
    OASIS_CHECK_MSG(config.checkpoint_every >= 1,
                    "checkpoint_every must be >= 1");
    manager = std::make_unique<ckpt::CheckpointManager>(
        config.checkpoint_dir, config.checkpoint_keep);
    if (config.resume) {
      try {
        const ckpt::CheckpointManager::Loaded loaded =
            manager->load_latest_valid();
        const TrainerState state = apply_trainer_checkpoint(
            loaded.snapshot, config, model, optimizer, rng);
        start_epoch = state.epochs_done;
        result.epoch_loss = state.epoch_loss;
        OASIS_LOG_INFO << "trainer: resumed from epoch " << start_epoch
                       << " (generation " << loaded.generation << ")";
      } catch (const CheckpointError& e) {
        if (e.reason() != CheckpointError::Reason::kNoValidGeneration) throw;
        OASIS_LOG_INFO << "trainer: nothing to resume from, starting fresh";
      }
    }
  }

  for (index_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    const obs::ScopedTimer epoch_span("train.epoch");
    if (config.schedule) optimizer.set_lr(config.schedule->lr(epoch));
    real epoch_loss = 0.0;
    index_t steps = 0;
    for (const auto& indices :
         data::epoch_batches(train.size(), config.batch_size, rng,
                             /*drop_last=*/false)) {
      const obs::ScopedTimer step_span("step");
      data::Batch batch = data::gather(train, indices);
      if (!policy.empty()) batch = policy.augment(batch, rng);

      optimizer.zero_grad();
      const tensor::Tensor logits =
          model.forward(batch.images, /*training=*/true);
      const nn::LossResult loss = loss_fn.compute(logits, batch.labels);
      model.backward(loss.grad_logits);
      optimizer.step();

      epoch_loss += loss.loss;
      ++steps;
      step_counter.add(1);
      example_counter.add(indices.size());
    }
    epoch_loss /= static_cast<real>(steps == 0 ? 1 : steps);
    result.epoch_loss.push_back(epoch_loss);
    epoch_counter.add(1);
    loss_gauge.set(epoch_loss);

    if (manager != nullptr && ((epoch + 1) % config.checkpoint_every == 0 ||
                               epoch + 1 == config.epochs)) {
      const TrainerState state{epoch + 1, result.epoch_loss};
      manager->save(epoch + 1, encode_trainer_checkpoint(config, model,
                                                         optimizer, rng,
                                                         state));
    }

    if (config.on_epoch) {
      real acc = -1.0;
      if (config.eval_every != 0 &&
          ((epoch + 1) % config.eval_every == 0 ||
           epoch + 1 == config.epochs)) {
        acc = metrics::accuracy(model, test);
      }
      config.on_epoch(epoch, epoch_loss, acc);
    }
  }
  {
    const obs::ScopedTimer eval_span("train.final_eval");
    result.final_test_accuracy = metrics::accuracy(model, test);
    result.final_train_accuracy = metrics::accuracy(model, train);
  }
  obs::gauge("train.final_test_accuracy").set(result.final_test_accuracy);
  obs::gauge("train.final_train_accuracy").set(result.final_train_accuracy);
  return result;
}

}  // namespace oasis::core
