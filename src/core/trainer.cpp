#include "core/trainer.h"

#include "augment/policy.h"
#include "metrics/accuracy.h"
#include "nn/loss.h"
#include "obs/obs.h"

namespace oasis::core {

TrainResult train_classifier(nn::Sequential& model,
                             const data::InMemoryDataset& train,
                             const data::InMemoryDataset& test,
                             const TrainerConfig& config) {
  OASIS_CHECK(!train.empty() && !test.empty());
  OASIS_CHECK(config.epochs >= 1);
  const augment::AugmentationPolicy policy =
      augment::make_policy(config.transforms);
  common::Rng rng(config.seed);
  nn::Adam optimizer(model.parameters(), config.adam);
  nn::SoftmaxCrossEntropy loss_fn;

  static obs::Counter& step_counter = obs::counter("train.steps");
  static obs::Counter& epoch_counter = obs::counter("train.epochs");
  static obs::Counter& example_counter = obs::counter("train.examples");
  obs::Gauge& loss_gauge = obs::gauge("train.last_epoch_loss");

  TrainResult result;
  for (index_t epoch = 0; epoch < config.epochs; ++epoch) {
    const obs::ScopedTimer epoch_span("train.epoch");
    if (config.schedule) optimizer.set_lr(config.schedule->lr(epoch));
    real epoch_loss = 0.0;
    index_t steps = 0;
    for (const auto& indices :
         data::epoch_batches(train.size(), config.batch_size, rng,
                             /*drop_last=*/false)) {
      const obs::ScopedTimer step_span("step");
      data::Batch batch = data::gather(train, indices);
      if (!policy.empty()) batch = policy.augment(batch, rng);

      optimizer.zero_grad();
      const tensor::Tensor logits =
          model.forward(batch.images, /*training=*/true);
      const nn::LossResult loss = loss_fn.compute(logits, batch.labels);
      model.backward(loss.grad_logits);
      optimizer.step();

      epoch_loss += loss.loss;
      ++steps;
      step_counter.add(1);
      example_counter.add(indices.size());
    }
    epoch_loss /= static_cast<real>(steps == 0 ? 1 : steps);
    result.epoch_loss.push_back(epoch_loss);
    epoch_counter.add(1);
    loss_gauge.set(epoch_loss);

    if (config.on_epoch) {
      real acc = -1.0;
      if (config.eval_every != 0 &&
          ((epoch + 1) % config.eval_every == 0 ||
           epoch + 1 == config.epochs)) {
        acc = metrics::accuracy(model, test);
      }
      config.on_epoch(epoch, epoch_loss, acc);
    }
  }
  {
    const obs::ScopedTimer eval_span("train.final_eval");
    result.final_test_accuracy = metrics::accuracy(model, test);
    result.final_train_accuracy = metrics::accuracy(model, train);
  }
  obs::gauge("train.final_test_accuracy").set(result.final_test_accuracy);
  obs::gauge("train.final_train_accuracy").set(result.final_train_accuracy);
  return result;
}

}  // namespace oasis::core
