// Classifier training harness for the Table 1 experiment (model utility
// with vs without OASIS).
#pragma once

#include <functional>
#include <vector>

#include "augment/transforms.h"
#include "data/dataset.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "nn/sequential.h"

namespace oasis::core {

struct TrainerConfig {
  index_t epochs = 10;
  index_t batch_size = 32;
  nn::Adam::Options adam;  // paper: lr 1e-3; weight decay 1e-5 / 1e-3
  /// Optional learning-rate schedule evaluated at the start of each epoch
  /// (overrides adam.lr when set).
  nn::LrSchedulePtr schedule;
  /// OASIS transform set applied to every training batch (empty = without
  /// OASIS). Augmented copies inherit their original's label, per Section 4.
  std::vector<augment::TransformKind> transforms;
  std::uint64_t seed = 17;
  /// Optional per-epoch callback (epoch, train_loss, test_accuracy).
  std::function<void(index_t, real, real)> on_epoch;
  /// Evaluate test accuracy every `eval_every` epochs (and always at the
  /// end); 0 disables intermediate evaluation.
  index_t eval_every = 0;

  // --- Durable checkpointing (off by default) ---
  /// When non-empty, an "oasis.ckpt/v1" snapshot (model, optimizer slots,
  /// RNG stream position, loss history) is written here crash-consistently
  /// at every `checkpoint_every`-th epoch boundary.
  std::string checkpoint_dir;
  index_t checkpoint_every = 1;
  /// Retained generations (older ones are pruned).
  int checkpoint_keep = 3;
  /// Resume from the newest valid generation in checkpoint_dir before
  /// training. Starts fresh when the directory holds no loadable snapshot.
  /// A resumed run is bit-identical to an uninterrupted one (same model
  /// bytes, same epoch_loss history).
  bool resume = false;
};

struct TrainResult {
  std::vector<real> epoch_loss;
  real final_test_accuracy = 0.0;
  real final_train_accuracy = 0.0;
};

/// Trains `model` on `train` with Adam + softmax CE and returns accuracies
/// on `test`/`train`. Deterministic in (model init, config seed).
TrainResult train_classifier(nn::Sequential& model,
                             const data::InMemoryDataset& train,
                             const data::InMemoryDataset& test,
                             const TrainerConfig& config);

}  // namespace oasis::core
