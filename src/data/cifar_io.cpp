#include "data/cifar_io.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace oasis::data {
namespace {

constexpr index_t kImageBytes = 3 * 32 * 32;
constexpr index_t kRecordBytes = 2 + kImageBytes;

}  // namespace

InMemoryDataset load_cifar100_bin(const std::string& path,
                                  index_t max_examples) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("cannot open CIFAR file: " + path);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size == 0 || size % kRecordBytes != 0) {
    throw Error("malformed CIFAR-100 file (size " + std::to_string(size) +
                " not a multiple of " + std::to_string(kRecordBytes) + "): " +
                path);
  }
  in.seekg(0);
  index_t count = size / kRecordBytes;
  if (max_examples != 0) count = std::min(count, max_examples);

  InMemoryDataset dataset(100, {3, 32, 32});
  std::vector<std::uint8_t> record(kRecordBytes);
  for (index_t r = 0; r < count; ++r) {
    in.read(reinterpret_cast<char*>(record.data()), kRecordBytes);
    if (!in) throw Error("truncated CIFAR-100 record in " + path);
    const index_t fine_label = record[1];
    if (fine_label >= 100) {
      throw Error("CIFAR-100 fine label out of range in " + path);
    }
    tensor::Tensor image({3, 32, 32});
    for (index_t i = 0; i < kImageBytes; ++i) {
      // Record layout is already channel-major [3][32][32].
      image[i] = static_cast<real>(record[2 + i]) / 255.0;
    }
    dataset.push_back({std::move(image), fine_label});
  }
  return dataset;
}

std::optional<Cifar100Splits> try_load_cifar100(const std::string& dir,
                                                index_t max_train,
                                                index_t max_test) {
  namespace fs = std::filesystem;
  const fs::path train_path = fs::path(dir) / "train.bin";
  const fs::path test_path = fs::path(dir) / "test.bin";
  if (!fs::exists(train_path) || !fs::exists(test_path)) {
    return std::nullopt;
  }
  return Cifar100Splits{load_cifar100_bin(train_path.string(), max_train),
                        load_cifar100_bin(test_path.string(), max_test)};
}

void write_cifar100_bin(const InMemoryDataset& dataset,
                        const std::string& path) {
  OASIS_CHECK_MSG(dataset.image_shape() == tensor::Shape({3, 32, 32}),
                  "CIFAR format requires [3,32,32] images, dataset has "
                      << tensor::to_string(dataset.image_shape()));
  OASIS_CHECK_MSG(dataset.num_classes() <= 100,
                  "CIFAR-100 format holds at most 100 classes");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + path);
  std::vector<std::uint8_t> record(kRecordBytes);
  for (index_t r = 0; r < dataset.size(); ++r) {
    const Example& e = dataset.at(r);
    record[0] = static_cast<std::uint8_t>(e.label / 5);  // coarse ≈ fine/5
    record[1] = static_cast<std::uint8_t>(e.label);
    for (index_t i = 0; i < kImageBytes; ++i) {
      record[2 + i] = static_cast<std::uint8_t>(
          std::clamp(e.image[i] * 255.0, 0.0, 255.0) + 0.5);
    }
    out.write(reinterpret_cast<const char*>(record.data()), kRecordBytes);
  }
  if (!out) throw Error("write failed: " + path);
}

}  // namespace oasis::data
