// Loader for the real CIFAR-100 binary format.
//
// The paper evaluates on CIFAR100. This build environment has no dataset
// files, so every bench falls back to the synthetic stand-in — but a
// downstream user with the real data can drop the standard binary files
// (`train.bin` / `test.bin` from cifar-100-binary.tar.gz) into a directory
// and pass it via OASIS_CIFAR100_DIR; the loaders here parse the canonical
// record layout:
//
//   1 byte coarse label | 1 byte fine label | 3072 bytes pixels
//   (pixels channel-major: 1024 R, 1024 G, 1024 B, row-major within channel)
#pragma once

#include <optional>
#include <string>

#include "data/dataset.h"

namespace oasis::data {

/// Parses one CIFAR-100 binary file into a dataset of [3,32,32] images in
/// [0,1] labeled with the fine label (100 classes). `max_examples` == 0
/// loads everything. Throws Error on malformed files.
InMemoryDataset load_cifar100_bin(const std::string& path,
                                  index_t max_examples = 0);

/// Loads train.bin/test.bin from `dir` if both exist; std::nullopt if the
/// directory or files are absent (callers fall back to synthetic data).
struct Cifar100Splits {
  InMemoryDataset train;
  InMemoryDataset test;
};
std::optional<Cifar100Splits> try_load_cifar100(const std::string& dir,
                                                index_t max_train = 0,
                                                index_t max_test = 0);

/// Inverse of the record format — used by tests to synthesize valid files
/// and by users to export generated datasets for external tooling.
void write_cifar100_bin(const InMemoryDataset& dataset,
                        const std::string& path);

}  // namespace oasis::data
