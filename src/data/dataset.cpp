#include "data/dataset.h"

#include "common/error.h"
#include "tensor/shape.h"

namespace oasis::data {

void InMemoryDataset::push_back(Example e) {
  OASIS_CHECK_MSG(e.label < num_classes_,
                  "label " << e.label << " >= " << num_classes_);
  tensor::check_same_shape(e.image.shape(), image_shape_, "push_back");
  examples_.push_back(std::move(e));
}

const Example& InMemoryDataset::at(index_t i) const {
  OASIS_CHECK_MSG(i < examples_.size(),
                  "example " << i << " of " << examples_.size());
  return examples_[i];
}

InMemoryDataset InMemoryDataset::subset(
    std::span<const index_t> indices) const {
  InMemoryDataset out(num_classes_, image_shape_);
  for (const auto i : indices) out.push_back(at(i));
  return out;
}

std::vector<InMemoryDataset> InMemoryDataset::shard(index_t shards) const {
  OASIS_CHECK(shards >= 1);
  std::vector<InMemoryDataset> out;
  out.reserve(shards);
  for (index_t s = 0; s < shards; ++s) {
    out.emplace_back(num_classes_, image_shape_);
  }
  for (index_t i = 0; i < examples_.size(); ++i) {
    out[i % shards].push_back(examples_[i]);
  }
  return out;
}

Batch gather(const InMemoryDataset& dataset,
             std::span<const index_t> indices) {
  OASIS_CHECK(!indices.empty());
  const auto& shape = dataset.image_shape();
  tensor::Shape batch_shape;
  batch_shape.push_back(indices.size());
  batch_shape.insert(batch_shape.end(), shape.begin(), shape.end());
  Batch batch{tensor::Tensor(std::move(batch_shape)), {}};
  batch.labels.reserve(indices.size());
  const index_t stride = dataset.image_dim();
  for (index_t b = 0; b < indices.size(); ++b) {
    const Example& e = dataset.at(indices[b]);
    auto src = e.image.data();
    auto dst = batch.images.data();
    for (index_t i = 0; i < stride; ++i) dst[b * stride + i] = src[i];
    batch.labels.push_back(e.label);
  }
  return batch;
}

tensor::Tensor stack_images(const std::vector<tensor::Tensor>& images) {
  OASIS_CHECK(!images.empty());
  const auto& shape = images.front().shape();
  for (const auto& im : images) {
    tensor::check_same_shape(im.shape(), shape, "stack_images");
  }
  tensor::Shape batch_shape;
  batch_shape.push_back(images.size());
  batch_shape.insert(batch_shape.end(), shape.begin(), shape.end());
  tensor::Tensor out(std::move(batch_shape));
  const index_t stride = tensor::numel(shape);
  for (index_t b = 0; b < images.size(); ++b) {
    auto src = images[b].data();
    for (index_t i = 0; i < stride; ++i) out.data()[b * stride + i] = src[i];
  }
  return out;
}

std::vector<tensor::Tensor> unstack_images(const tensor::Tensor& batch) {
  OASIS_CHECK_MSG(batch.rank() >= 2, "unstack_images: rank " << batch.rank());
  std::vector<tensor::Tensor> out;
  out.reserve(batch.dim(0));
  for (index_t b = 0; b < batch.dim(0); ++b) out.push_back(batch.slice(b));
  return out;
}

std::vector<std::vector<index_t>> epoch_batches(index_t dataset_size,
                                                index_t batch_size,
                                                common::Rng& rng,
                                                bool drop_last) {
  OASIS_CHECK(batch_size >= 1);
  std::vector<index_t> order(dataset_size);
  for (index_t i = 0; i < dataset_size; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<index_t>> batches;
  for (index_t start = 0; start < dataset_size; start += batch_size) {
    const index_t end = std::min(start + batch_size, dataset_size);
    if (drop_last && end - start < batch_size) break;
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace oasis::data
