// Labeled image datasets and batching.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace oasis::data {

/// One labeled image: [C,H,W] tensor in [0,1] plus class index.
struct Example {
  tensor::Tensor image;
  index_t label = 0;
};

/// A training batch: images stacked into [B,C,H,W] plus parallel labels.
struct Batch {
  tensor::Tensor images;
  std::vector<index_t> labels;

  [[nodiscard]] index_t size() const { return labels.size(); }
};

/// Materialized dataset held in memory (all our datasets are synthetic and
/// small enough for this).
class InMemoryDataset {
 public:
  InMemoryDataset(index_t num_classes, tensor::Shape image_shape)
      : num_classes_(num_classes), image_shape_(std::move(image_shape)) {}

  void push_back(Example e);

  [[nodiscard]] index_t size() const { return examples_.size(); }
  [[nodiscard]] bool empty() const { return examples_.empty(); }
  [[nodiscard]] const Example& at(index_t i) const;
  [[nodiscard]] index_t num_classes() const { return num_classes_; }
  [[nodiscard]] const tensor::Shape& image_shape() const {
    return image_shape_;
  }
  /// Flattened image dimensionality d = C*H*W.
  [[nodiscard]] index_t image_dim() const {
    return tensor::numel(image_shape_);
  }

  /// New dataset containing the given examples (by index).
  [[nodiscard]] InMemoryDataset subset(std::span<const index_t> indices) const;

  /// Splits into `shards` near-equal datasets round-robin — used to hand FL
  /// clients disjoint local data.
  [[nodiscard]] std::vector<InMemoryDataset> shard(index_t shards) const;

 private:
  index_t num_classes_;
  tensor::Shape image_shape_;
  std::vector<Example> examples_;
};

/// Stacks the referenced examples into a batch.
Batch gather(const InMemoryDataset& dataset, std::span<const index_t> indices);

/// Stacks a list of standalone images (all same shape) into [B,C,H,W].
tensor::Tensor stack_images(const std::vector<tensor::Tensor>& images);

/// Splits [B,C,H,W] back into B images.
std::vector<tensor::Tensor> unstack_images(const tensor::Tensor& batch);

/// Shuffled batch index lists for one epoch. When `drop_last`, a trailing
/// partial batch is discarded.
std::vector<std::vector<index_t>> epoch_batches(index_t dataset_size,
                                                index_t batch_size,
                                                common::Rng& rng,
                                                bool drop_last = true);

}  // namespace oasis::data
