#include "data/image.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/error.h"

namespace oasis::data {

void check_image(const tensor::Tensor& image) {
  if (image.rank() != 3 || (image.dim(0) != 1 && image.dim(0) != 3)) {
    throw ShapeError("expected [C,H,W] image with C in {1,3}, got " +
                     tensor::to_string(image.shape()));
  }
}

tensor::Tensor clamp01(const tensor::Tensor& image) {
  tensor::Tensor out = image;
  for (auto& v : out.data()) v = std::clamp(v, 0.0, 1.0);
  return out;
}

void write_pnm(const tensor::Tensor& image, const std::string& path) {
  check_image(image);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + path);
  out << (c == 3 ? "P6" : "P5") << '\n' << w << ' ' << h << "\n255\n";
  std::vector<std::uint8_t> row(w * c);
  for (index_t i = 0; i < h; ++i) {
    for (index_t j = 0; j < w; ++j) {
      for (index_t ch = 0; ch < c; ++ch) {
        const real v = std::clamp(image.at3(ch, i, j) * 255.0, 0.0, 255.0);
        row[j * c + ch] = static_cast<std::uint8_t>(v + 0.5);
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw Error("write failed: " + path);
}

tensor::Tensor read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  std::string magic;
  index_t w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  if ((magic != "P6" && magic != "P5") || maxval != 255 || w == 0 || h == 0) {
    throw Error("unsupported PNM header in " + path);
  }
  in.get();  // single whitespace after header
  const index_t c = magic == "P6" ? 3 : 1;
  std::vector<std::uint8_t> raw(w * h * c);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!in) throw Error("truncated PNM payload in " + path);
  tensor::Tensor image({c, h, w});
  for (index_t i = 0; i < h; ++i)
    for (index_t j = 0; j < w; ++j)
      for (index_t ch = 0; ch < c; ++ch)
        image.at3(ch, i, j) =
            static_cast<real>(raw[(i * w + j) * c + ch]) / 255.0;
  return image;
}

tensor::Tensor tile_images(const std::vector<tensor::Tensor>& images,
                           index_t cols) {
  OASIS_CHECK(!images.empty() && cols >= 1);
  for (const auto& im : images) {
    check_image(im);
    tensor::check_same_shape(im.shape(), images.front().shape(),
                             "tile_images");
  }
  const index_t c = images[0].dim(0), h = images[0].dim(1),
                w = images[0].dim(2);
  const index_t rows = (images.size() + cols - 1) / cols;
  constexpr index_t gutter = 2;
  tensor::Tensor canvas = tensor::Tensor::full(
      {c, rows * h + (rows + 1) * gutter, cols * w + (cols + 1) * gutter},
      1.0);
  for (index_t idx = 0; idx < images.size(); ++idx) {
    const index_t r = idx / cols, col = idx % cols;
    const index_t oy = gutter + r * (h + gutter);
    const index_t ox = gutter + col * (w + gutter);
    const tensor::Tensor clamped = clamp01(images[idx]);
    for (index_t ch = 0; ch < c; ++ch)
      for (index_t i = 0; i < h; ++i)
        for (index_t j = 0; j < w; ++j)
          canvas.at3(ch, oy + i, ox + j) = clamped.at3(ch, i, j);
  }
  return canvas;
}

}  // namespace oasis::data
