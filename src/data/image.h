// Image conventions and PPM/PGM file I/O.
//
// Throughout the library an image is a rank-3 tensor [C, H, W] with values
// nominally in [0, 1] (C = 1 or 3). Attack reconstructions may exceed that
// range; writers clamp on output only.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace oasis::data {

/// Validates [C,H,W] layout with C ∈ {1, 3}. Throws ShapeError otherwise.
void check_image(const tensor::Tensor& image);

/// Clamps all values into [0, 1] (returns a copy).
tensor::Tensor clamp01(const tensor::Tensor& image);

/// Writes a binary PPM (C=3) or PGM (C=1), 8-bit, clamping to [0,1].
void write_pnm(const tensor::Tensor& image, const std::string& path);

/// Reads a binary PPM/PGM written by write_pnm back into a [C,H,W] tensor
/// with values in [0,1]. Throws Error on malformed files.
tensor::Tensor read_pnm(const std::string& path);

/// Arranges equally-sized [C,H,W] images into a grid (rows × cols) with a
/// 2-px white gutter — used by the visual-reconstruction benches to emit
/// side-by-side panels like the paper's Figures 5-8.
tensor::Tensor tile_images(const std::vector<tensor::Tensor>& images,
                           index_t cols);

}  // namespace oasis::data
