#include "data/shapes.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace oasis::data {
namespace {

constexpr real kPi = 3.14159265358979323846;

/// 0 → fully outside, 1 → fully inside, smooth ramp of `softness` pixels
/// around distance 0 (signed distance convention: negative = inside).
real coverage(real signed_distance, real softness) {
  const real t = std::clamp(0.5 - signed_distance / softness, 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

/// Signed distance (in pixels) from point (x, y) to the shape boundary.
/// Shapes are defined in a local frame already rotated/scaled by the caller.
real shape_sdf(ShapeKind kind, real x, real y, real r) {
  const real d = std::hypot(x, y);
  switch (kind) {
    case ShapeKind::kCircle:
      return d - r;
    case ShapeKind::kRing: {
      return std::abs(d - r) - r * 0.3;
    }
    case ShapeKind::kSquare: {
      const real dx = std::abs(x) - r, dy = std::abs(y) - r;
      return std::max(dx, dy);
    }
    case ShapeKind::kTriangle: {
      // Equilateral triangle pointing +y, inradius ~ r/2.
      const real k = std::sqrt(3.0);
      real px = std::abs(x);
      real py = y + r / k;
      if (px + k * py > 0.0) {
        const real nx = (px - k * py) / 2.0;
        const real ny = (-k * px - py) / 2.0;
        px = nx;
        py = ny;
      }
      px -= std::clamp(px, -2.0 * r / k, 0.0);
      const real sign = py < 0 ? 1.0 : -1.0;  // outside below base edge
      return -std::hypot(px, py) * sign;
    }
    case ShapeKind::kCross: {
      const real arm = r * 0.35;
      const real dx = std::max(std::abs(x) - r, std::abs(y) - arm);
      const real dy = std::max(std::abs(y) - r, std::abs(x) - arm);
      return std::min(dx, dy);
    }
    case ShapeKind::kStar: {
      // 5-point star via angular radius modulation.
      const real ang = std::atan2(y, x);
      const real modulation =
          0.55 + 0.45 * std::cos(5.0 * ang);
      return d - r * modulation;
    }
    default:
      return d - r;  // texture kinds fall back to a disc mask
  }
}

}  // namespace

void fill_gradient(tensor::Tensor& canvas, const Color& a, const Color& b,
                   real angle) {
  OASIS_CHECK(canvas.rank() == 3 && canvas.dim(0) == 3);
  const index_t h = canvas.dim(1), w = canvas.dim(2);
  const real ux = std::cos(angle), uy = std::sin(angle);
  const real diag = static_cast<real>(h + w);
  for (index_t i = 0; i < h; ++i) {
    for (index_t j = 0; j < w; ++j) {
      const real t = 0.5 + (static_cast<real>(j) * ux +
                            static_cast<real>(i) * uy) /
                               diag;
      const real tt = std::clamp(t, 0.0, 1.0);
      for (index_t c = 0; c < 3; ++c) {
        canvas.at3(c, i, j) = a[c] * (1.0 - tt) + b[c] * tt;
      }
    }
  }
}

void add_sine_texture(tensor::Tensor& canvas, real frequency, real phase,
                      real angle, real amplitude) {
  OASIS_CHECK(canvas.rank() == 3 && canvas.dim(0) == 3);
  const index_t h = canvas.dim(1), w = canvas.dim(2);
  const real ux = std::cos(angle), uy = std::sin(angle);
  for (index_t i = 0; i < h; ++i) {
    for (index_t j = 0; j < w; ++j) {
      const real coord = (static_cast<real>(j) * ux +
                          static_cast<real>(i) * uy) /
                         static_cast<real>(std::max(h, w));
      const real v =
          amplitude * std::sin(2.0 * kPi * frequency * coord + phase);
      for (index_t c = 0; c < 3; ++c) canvas.at3(c, i, j) += v;
    }
  }
}

void draw_shape(tensor::Tensor& canvas, ShapeKind kind, const Color& color,
                real cx, real cy, real r, real orientation, real softness) {
  OASIS_CHECK(canvas.rank() == 3 && canvas.dim(0) == 3);
  const index_t h = canvas.dim(1), w = canvas.dim(2);
  const real px_cx = cx * static_cast<real>(w);
  const real px_cy = cy * static_cast<real>(h);
  const real px_r = r * static_cast<real>(std::min(h, w));
  const real cos_t = std::cos(-orientation), sin_t = std::sin(-orientation);

  for (index_t i = 0; i < h; ++i) {
    for (index_t j = 0; j < w; ++j) {
      const real dx = static_cast<real>(j) - px_cx;
      const real dy = static_cast<real>(i) - px_cy;
      // Rotate into the shape's local frame.
      const real lx = dx * cos_t - dy * sin_t;
      const real ly = dx * sin_t + dy * cos_t;

      real alpha = 0.0;
      switch (kind) {
        case ShapeKind::kStripes: {
          const real mask = coverage(shape_sdf(ShapeKind::kSquare, lx, ly,
                                               px_r), softness);
          if (mask > 0.0) {
            const real stripe =
                0.5 + 0.5 * std::sin(2.0 * kPi * lx / (px_r * 0.45));
            alpha = mask * (stripe > 0.5 ? 1.0 : 0.15);
          }
          break;
        }
        case ShapeKind::kChecker: {
          const real mask = coverage(shape_sdf(ShapeKind::kSquare, lx, ly,
                                               px_r), softness);
          if (mask > 0.0) {
            const auto qx = static_cast<long>(std::floor(lx / (px_r * 0.5)));
            const auto qy = static_cast<long>(std::floor(ly / (px_r * 0.5)));
            alpha = mask * (((qx + qy) & 1) ? 1.0 : 0.2);
          }
          break;
        }
        case ShapeKind::kBlob: {
          // Three soft Gaussian bumps along the local x-axis.
          real v = 0.0;
          for (int b = -1; b <= 1; ++b) {
            const real bx = lx - static_cast<real>(b) * px_r * 0.8;
            const real d2 = (bx * bx + ly * ly) / (px_r * px_r * 0.5);
            v += std::exp(-d2);
          }
          alpha = std::clamp(v, 0.0, 1.0);
          break;
        }
        case ShapeKind::kGradientBar: {
          const real mask =
              coverage(std::max(std::abs(lx) - px_r,
                                std::abs(ly) - px_r * 0.4),
                       softness);
          alpha = mask * std::clamp(0.5 + lx / (2.0 * px_r), 0.1, 1.0);
          break;
        }
        default:
          alpha = coverage(shape_sdf(kind, lx, ly, px_r), softness);
      }

      if (alpha <= 0.0) continue;
      for (index_t c = 0; c < 3; ++c) {
        real& px = canvas.at3(c, i, j);
        px = px * (1.0 - alpha) + color[c] * alpha;
      }
    }
  }
}

void add_noise(tensor::Tensor& canvas, real stddev, common::Rng& rng) {
  for (auto& v : canvas.data()) v += rng.normal(0.0, stddev);
}

void clamp_canvas(tensor::Tensor& canvas) {
  for (auto& v : canvas.data()) v = std::clamp(v, 0.0, 1.0);
}

}  // namespace oasis::data
