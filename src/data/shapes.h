// Procedural raster primitives for the synthetic datasets.
//
// All drawing writes into a [3, H, W] canvas with soft (smoothstep) edges so
// the resulting images have the low-frequency structure of natural photos
// rather than hard binary masks — this matters because the RTF attack bins
// images by mean brightness and CAH by random projections, both of which are
// degenerate on binary images.
#pragma once

#include <array>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace oasis::data {

/// RGB color, components in [0,1].
using Color = std::array<real, 3>;

/// Shape families the generator can draw. Classes are built from these.
enum class ShapeKind {
  kCircle,
  kRing,
  kSquare,
  kTriangle,
  kCross,
  kStripes,
  kChecker,
  kBlob,      // soft Gaussian bump cluster
  kStar,
  kGradientBar,
};

inline constexpr index_t kShapeKindCount = 10;

/// Fills the canvas with a linear gradient between two colors along a
/// direction given by angle (radians).
void fill_gradient(tensor::Tensor& canvas, const Color& a, const Color& b,
                   real angle);

/// Adds a low-frequency sinusoidal texture of the given frequency (cycles
/// per image), phase and amplitude to all channels.
void add_sine_texture(tensor::Tensor& canvas, real frequency, real phase,
                      real angle, real amplitude);

/// Draws one shape centered at (cx, cy) (fractions of image size) with
/// characteristic radius r (fraction), rotated by `orientation` radians,
/// blended with soft edges of width `softness` (pixels).
void draw_shape(tensor::Tensor& canvas, ShapeKind kind, const Color& color,
                real cx, real cy, real r, real orientation,
                real softness = 1.5);

/// Adds i.i.d. Gaussian pixel noise with the given stddev.
void add_noise(tensor::Tensor& canvas, real stddev, common::Rng& rng);

/// Clamps the canvas into [0,1] in place.
void clamp_canvas(tensor::Tensor& canvas);

}  // namespace oasis::data
