#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace oasis::data {
namespace {

constexpr real kPi = 3.14159265358979323846;
constexpr real kGoldenRatioConjugate = 0.61803398874989484820;

Color jittered(const Color& c, real jitter, common::Rng& rng) {
  Color out = c;
  for (auto& v : out) {
    v = std::clamp(v + rng.uniform(-jitter, jitter), 0.0, 1.0);
  }
  return out;
}

}  // namespace

Color hsv_to_rgb(real h, real s, real v) {
  h = h - std::floor(h);
  const real hh = h * 6.0;
  const auto sector = static_cast<int>(hh) % 6;
  const real f = hh - std::floor(hh);
  const real p = v * (1.0 - s);
  const real q = v * (1.0 - s * f);
  const real t = v * (1.0 - s * (1.0 - f));
  switch (sector) {
    case 0: return {v, t, p};
    case 1: return {q, v, p};
    case 2: return {p, v, t};
    case 3: return {p, q, v};
    case 4: return {t, p, v};
    default: return {v, p, q};
  }
}

ClassSignature class_signature(const SynthConfig& cfg, index_t label) {
  OASIS_CHECK_MSG(label < cfg.num_classes,
                  "class " << label << " >= " << cfg.num_classes);
  ClassSignature sig{};
  // Shape cycles through the 10 families; palette advances per shape cycle so
  // (shape, palette) pairs are unique up to 100 classes and collide gracefully
  // beyond.
  sig.shape = static_cast<ShapeKind>(label % kShapeKindCount);
  const index_t palette_idx = label / kShapeKindCount;

  // Golden-angle hue spacing keeps any two palettes as far apart as possible;
  // `palette_overlap` pulls hues together to make classes confusable.
  const real base_hue =
      std::fmod(static_cast<real>(label) * kGoldenRatioConjugate, 1.0);
  const real palette_hue =
      std::fmod(static_cast<real>(palette_idx) * kGoldenRatioConjugate + 0.13,
                1.0);
  const real hue = cfg.palette_overlap * palette_hue +
                   (1.0 - cfg.palette_overlap) * base_hue;

  sig.foreground = hsv_to_rgb(hue, 0.85, 0.9);
  sig.background_a = hsv_to_rgb(std::fmod(hue + 0.45, 1.0), 0.35, 0.55);
  sig.background_b = hsv_to_rgb(std::fmod(hue + 0.55, 1.0), 0.25, 0.35);
  // Texture frequency distinguishes classes that share shape+palette.
  sig.texture_frequency = 2.0 + static_cast<real>(label % 5) * 1.5;
  return sig;
}

Example generate_example(const SynthConfig& cfg, index_t label,
                         common::Rng& rng) {
  const ClassSignature sig = class_signature(cfg, label);
  tensor::Tensor canvas({3, cfg.height, cfg.width});

  // Background: class palette, random direction, random brightness scale.
  const real brightness = rng.uniform(0.6, 1.3);
  Color bg_a = sig.background_a, bg_b = sig.background_b;
  for (auto& v : bg_a) v = std::clamp(v * brightness, 0.0, 1.0);
  for (auto& v : bg_b) v = std::clamp(v * brightness, 0.0, 1.0);
  fill_gradient(canvas, bg_a, bg_b, rng.uniform(0.0, 2.0 * kPi));

  // Class texture with random phase/orientation (orientation-free feature).
  add_sine_texture(canvas, sig.texture_frequency, rng.uniform(0.0, 2.0 * kPi),
                   rng.uniform(0.0, 2.0 * kPi), 0.06);

  // Main shape: random pose — class identity must not depend on orientation,
  // which is exactly what makes OASIS label-preserving on this data.
  const Color fg = jittered(sig.foreground, cfg.color_jitter, rng);
  draw_shape(canvas, sig.shape, fg, rng.uniform(0.32, 0.68),
             rng.uniform(0.32, 0.68), rng.uniform(0.18, 0.32),
             rng.uniform(0.0, 2.0 * kPi));

  // Occasional small distractor from another family (never another class's
  // full signature) to add clutter.
  if (rng.bernoulli(cfg.distractor_prob)) {
    const auto kind = static_cast<ShapeKind>(
        rng.uniform_int(0, static_cast<std::int64_t>(kShapeKindCount - 1)));
    const Color dc = hsv_to_rgb(rng.uniform(0.0, 1.0), 0.5, 0.8);
    draw_shape(canvas, kind, dc, rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
               rng.uniform(0.05, 0.1), rng.uniform(0.0, 2.0 * kPi));
  }

  add_noise(canvas, cfg.noise_stddev, rng);
  clamp_canvas(canvas);
  return Example{std::move(canvas), label};
}

SynthDataset generate(const SynthConfig& cfg) {
  OASIS_CHECK(cfg.num_classes >= 1 && cfg.height >= 8 && cfg.width >= 8);
  common::Rng rng(cfg.seed);
  SynthDataset out{
      InMemoryDataset(cfg.num_classes, {3, cfg.height, cfg.width}),
      InMemoryDataset(cfg.num_classes, {3, cfg.height, cfg.width})};
  for (index_t label = 0; label < cfg.num_classes; ++label) {
    common::Rng class_rng = rng.split(label + 1);
    for (index_t i = 0; i < cfg.train_per_class; ++i) {
      out.train.push_back(generate_example(cfg, label, class_rng));
    }
    for (index_t i = 0; i < cfg.test_per_class; ++i) {
      out.test.push_back(generate_example(cfg, label, class_rng));
    }
  }
  return out;
}

SynthConfig synth_imagenet_config() {
  SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.height = 64;
  cfg.width = 64;
  cfg.train_per_class = 60;
  cfg.test_per_class = 20;
  cfg.noise_stddev = 0.02;
  cfg.color_jitter = 0.06;
  cfg.palette_overlap = 0.0;
  cfg.distractor_prob = 0.25;
  cfg.seed = 20240103;
  return cfg;
}

SynthConfig synth_cifar100_config() {
  SynthConfig cfg;
  cfg.num_classes = 100;
  cfg.height = 32;
  cfg.width = 32;
  cfg.train_per_class = 24;
  cfg.test_per_class = 6;
  cfg.noise_stddev = 0.055;
  cfg.color_jitter = 0.12;
  cfg.palette_overlap = 0.35;
  cfg.distractor_prob = 0.4;
  cfg.seed = 20240104;
  return cfg;
}

}  // namespace oasis::data
