// Procedural stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on a 10-class ImageNet subset (Imagenette) and
// CIFAR100. Neither is available offline, so we synthesize datasets with the
// properties the experiments actually exercise:
//   * per-image pixel statistics vary smoothly across images (RTF bins images
//     by mean brightness — a degenerate dataset would break its cutoffs);
//   * class identity is carried by color/shape/texture, NOT by orientation,
//     so OASIS's rotations/flips/shears are label-preserving — the same
//     invariance argument the paper makes for natural images;
//   * classification difficulty is tunable (noise, jitter, palette overlap)
//     so model accuracy lands in the paper's reported bands.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/shapes.h"

namespace oasis::data {

/// Knobs controlling the generator. All randomness derives from `seed`.
struct SynthConfig {
  index_t num_classes = 10;
  index_t height = 32;
  index_t width = 32;
  index_t train_per_class = 100;
  index_t test_per_class = 20;
  real noise_stddev = 0.03;       // additive Gaussian pixel noise
  real color_jitter = 0.08;       // per-channel class-color perturbation
  real palette_overlap = 0.0;     // 0 = distinct class colors; 1 = shared
  real distractor_prob = 0.3;     // chance of a small off-class shape
  std::uint64_t seed = 1234;
};

/// Train + test splits drawn from the same class signatures.
struct SynthDataset {
  InMemoryDataset train;
  InMemoryDataset test;
};

/// Deterministic signature (shape family, colors, texture frequency) that
/// defines class `label` under the given config. Exposed for tests.
struct ClassSignature {
  ShapeKind shape;
  Color foreground;
  Color background_a;
  Color background_b;
  real texture_frequency;
};

ClassSignature class_signature(const SynthConfig& cfg, index_t label);

/// Generates one random example of class `label`.
Example generate_example(const SynthConfig& cfg, index_t label,
                         common::Rng& rng);

/// Generates the full train/test dataset for the config.
SynthDataset generate(const SynthConfig& cfg);

/// Config mirroring the paper's ImageNet (Imagenette) setting: 10 visually
/// distinctive classes, 64×64 RGB, low noise (a small CNN should exceed 90%).
SynthConfig synth_imagenet_config();

/// Config mirroring CIFAR100: 100 fine-grained classes, 32×32 RGB, heavier
/// noise and overlapping palettes (accuracy band ~70-75%).
SynthConfig synth_cifar100_config();

/// HSV → RGB helper (h ∈ [0,1), s,v ∈ [0,1]); used for palette construction.
Color hsv_to_rgb(real h, real s, real v);

}  // namespace oasis::data
