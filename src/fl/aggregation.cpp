#include "fl/aggregation.h"

#include "common/error.h"
#include "tensor/shape.h"

namespace oasis::fl {

void FedAvgAccumulator::add(const ClientUpdateMessage& update) {
  const real weight =
      weight_by_examples_ ? static_cast<real>(update.num_examples) : 1.0;
  if (weight <= 0.0) {
    throw AggregationError("client " + std::to_string(update.client_id) +
                           " reported zero examples");
  }
  add(tensor::deserialize_tensors(update.gradients), weight);
}

void FedAvgAccumulator::add(std::vector<tensor::Tensor> gradients,
                            real weight) {
  if (weight <= 0.0) {
    throw AggregationError("FedAvg weight must be positive");
  }
  if (total_.empty()) {
    // First update: scale in place rather than adding into zeros, so -0.0
    // payload values survive bitwise (0.0 + -0.0 is +0.0) and the stream
    // reproduces the historical batch fedavg() byte-for-byte.
    total_ = std::move(gradients);
    for (auto& t : total_) t *= weight;
  } else {
    OASIS_CHECK_MSG(gradients.size() == total_.size(),
                    "update tensor count mismatch: " << gradients.size()
                                                     << " vs "
                                                     << total_.size());
    for (std::size_t i = 0; i < gradients.size(); ++i) {
      total_[i].add_scaled_(gradients[i], weight);
    }
  }
  total_weight_ += weight;
  ++count_;
}

std::vector<tensor::Tensor> FedAvgAccumulator::average() const {
  if (count_ == 0) {
    // Typed so the round engine can distinguish "nothing valid survived
    // screening" from a programming error (and never divides by the zero
    // total weight below).
    throw AggregationError("FedAvg over an empty update set");
  }
  std::vector<tensor::Tensor> result = total_;
  for (auto& t : result) t /= total_weight_;
  return result;
}

void FedAvgAccumulator::reset() {
  total_.clear();
  total_weight_ = 0.0;
  count_ = 0;
}

void FedAvgAccumulator::restore(std::vector<tensor::Tensor> partials,
                                real total_weight, std::uint64_t count) {
  total_ = std::move(partials);
  total_weight_ = total_weight;
  count_ = count;
}

namespace {

std::vector<tensor::Tensor> weighted_average(
    std::span<const ClientUpdateMessage> updates, bool weight_by_examples) {
  FedAvgAccumulator acc(weight_by_examples);
  for (const auto& update : updates) acc.add(update);
  return acc.average();
}

}  // namespace

std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/true);
}

std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/false);
}

}  // namespace oasis::fl
