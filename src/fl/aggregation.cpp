#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "common/error.h"
#include "tensor/shape.h"

namespace oasis::fl {

void FedAvgAccumulator::add(const ClientUpdateMessage& update) {
  const real weight =
      weight_by_examples_ ? static_cast<real>(update.num_examples) : 1.0;
  if (weight <= 0.0) {
    throw AggregationError("client " + std::to_string(update.client_id) +
                           " reported zero examples");
  }
  add(tensor::deserialize_tensors(update.gradients), weight);
}

void FedAvgAccumulator::add(std::vector<tensor::Tensor> gradients,
                            real weight) {
  if (weight <= 0.0) {
    throw AggregationError("FedAvg weight must be positive");
  }
  if (total_.empty()) {
    // First update: scale in place rather than adding into zeros, so -0.0
    // payload values survive bitwise (0.0 + -0.0 is +0.0) and the stream
    // reproduces the historical batch fedavg() byte-for-byte.
    total_ = std::move(gradients);
    for (auto& t : total_) t *= weight;
  } else {
    OASIS_CHECK_MSG(gradients.size() == total_.size(),
                    "update tensor count mismatch: " << gradients.size()
                                                     << " vs "
                                                     << total_.size());
    for (std::size_t i = 0; i < gradients.size(); ++i) {
      total_[i].add_scaled_(gradients[i], weight);
    }
  }
  total_weight_ += weight;
  ++count_;
}

std::vector<tensor::Tensor> FedAvgAccumulator::average() const {
  if (count_ == 0) {
    // Typed so the round engine can distinguish "nothing valid survived
    // screening" from a programming error (and never divides by the zero
    // total weight below).
    throw AggregationError("FedAvg over an empty update set");
  }
  std::vector<tensor::Tensor> result = total_;
  for (auto& t : result) t /= total_weight_;
  return result;
}

void FedAvgAccumulator::reset() {
  total_.clear();
  total_weight_ = 0.0;
  count_ = 0;
}

void FedAvgAccumulator::restore(std::vector<tensor::Tensor> partials,
                                real total_weight, std::uint64_t count) {
  total_ = std::move(partials);
  total_weight_ = total_weight;
  count_ = count;
}

namespace {

std::vector<tensor::Tensor> weighted_average(
    std::span<const ClientUpdateMessage> updates, bool weight_by_examples) {
  FedAvgAccumulator acc(weight_by_examples);
  for (const auto& update : updates) acc.add(update);
  return acc.average();
}

}  // namespace

std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/true);
}

std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/false);
}

const char* to_string(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kFedAvg: return "fedavg";
    case AggregatorKind::kCoordinateMedian: return "median";
    case AggregatorKind::kTrimmedMean: return "trimmed_mean";
    case AggregatorKind::kNormBounded: return "norm_bounded";
  }
  return "?";
}

real clip_gradients_to_norm(std::vector<tensor::Tensor>& gradients,
                            real max_norm) {
  OASIS_CHECK_MSG(max_norm > 0.0, "clip bound must be positive");
  real sum_squares = 0.0;
  for (const auto& t : gradients) {
    for (const auto v : t.data()) sum_squares += v * v;
  }
  const real norm = std::sqrt(sum_squares);
  if (norm > max_norm) {
    const real scale = max_norm / norm;
    for (auto& t : gradients) t *= scale;
  }
  return norm;
}

namespace {

/// Validates a buffered update set and hands each output coordinate's value
/// column (sorted ascending) to `fold`, which returns the aggregated value.
template <typename Fold>
std::vector<tensor::Tensor> per_coordinate(
    std::span<const std::vector<tensor::Tensor>> updates, Fold&& fold) {
  if (updates.empty()) {
    throw AggregationError("robust aggregation over an empty update set");
  }
  const auto& first = updates.front();
  for (const auto& u : updates) {
    OASIS_CHECK_MSG(u.size() == first.size(),
                    "update tensor count mismatch: " << u.size() << " vs "
                                                     << first.size());
    for (std::size_t t = 0; t < u.size(); ++t) {
      OASIS_CHECK_MSG(u[t].shape() == first[t].shape(),
                      "update tensor " << t << " shape mismatch");
    }
  }
  std::vector<tensor::Tensor> result;
  result.reserve(first.size());
  std::vector<real> column(updates.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    tensor::Tensor out(first[t].shape());
    for (index_t j = 0; j < out.size(); ++j) {
      for (std::size_t u = 0; u < updates.size(); ++u) {
        column[u] = updates[u][t][j];
      }
      // Sorting makes the fold order a function of the VALUES: the result is
      // bit-identical under any permutation of the update set.
      std::sort(column.begin(), column.end());
      out[j] = fold(column);
    }
    result.push_back(std::move(out));
  }
  return result;
}

}  // namespace

std::vector<tensor::Tensor> coordinate_median(
    std::span<const std::vector<tensor::Tensor>> updates) {
  return per_coordinate(updates, [](const std::vector<real>& sorted) {
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  });
}

std::vector<tensor::Tensor> trimmed_mean(
    std::span<const std::vector<tensor::Tensor>> updates, real trim_fraction) {
  if (!(trim_fraction >= 0.0) || trim_fraction >= 0.5) {
    throw ConfigError("trim_fraction must be in [0, 0.5)");
  }
  const auto trim = static_cast<std::size_t>(
      std::floor(trim_fraction * static_cast<real>(updates.size())));
  if (updates.empty() || updates.size() <= 2 * trim) {
    throw AggregationError("trimmed mean over " +
                           std::to_string(updates.size()) +
                           " updates leaves nothing after trimming " +
                           std::to_string(trim) + " per tail");
  }
  const real kept = static_cast<real>(updates.size() - 2 * trim);
  return per_coordinate(updates, [&](const std::vector<real>& sorted) {
    real sum = 0.0;
    for (std::size_t u = trim; u < sorted.size() - trim; ++u) sum += sorted[u];
    return sum / kept;
  });
}

AggregatorConfig parse_aggregator(const std::string& spec) {
  std::string name = spec;
  std::string param;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    param = spec.substr(colon + 1);
  }
  const auto parse_param = [&](const char* what) {
    std::istringstream is(param);
    real value = 0.0;
    char trailing = 0;
    if (!(is >> value) || is.get(trailing) || !std::isfinite(value)) {
      throw ConfigError(std::string("aggregator ") + what +
                        " parameter is malformed: '" + param + "'");
    }
    return value;
  };

  AggregatorConfig config;
  if (name == "fedavg") {
    if (!param.empty()) throw ConfigError("fedavg takes no parameter");
  } else if (name == "median") {
    if (!param.empty()) throw ConfigError("median takes no parameter");
    config.kind = AggregatorKind::kCoordinateMedian;
  } else if (name == "trimmed") {
    config.kind = AggregatorKind::kTrimmedMean;
    if (!param.empty()) config.trim_fraction = parse_param("trimmed");
    if (config.trim_fraction < 0.0 || config.trim_fraction >= 0.5) {
      throw ConfigError("trim fraction must be in [0, 0.5)");
    }
  } else if (name == "normbound") {
    config.kind = AggregatorKind::kNormBounded;
    if (!param.empty()) config.norm_bound = parse_param("normbound");
    if (!(config.norm_bound > 0.0)) {
      throw ConfigError("norm bound must be positive");
    }
  } else {
    throw ConfigError("unknown aggregator '" + name +
                      "' (fedavg|median|trimmed[:f]|normbound[:b])");
  }
  return config;
}

}  // namespace oasis::fl
