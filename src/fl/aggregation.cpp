#include "fl/aggregation.h"

#include "common/error.h"
#include "tensor/shape.h"

namespace oasis::fl {
namespace {

std::vector<tensor::Tensor> weighted_average(
    std::span<const ClientUpdateMessage> updates, bool weight_by_examples) {
  if (updates.empty()) {
    // Typed so the round engine can distinguish "nothing valid survived
    // screening" from a programming error (and never divides by the zero
    // total weight below).
    throw AggregationError("FedAvg over an empty update set");
  }
  std::vector<tensor::Tensor> total;
  real total_weight = 0.0;
  for (const auto& update : updates) {
    const real weight =
        weight_by_examples ? static_cast<real>(update.num_examples) : 1.0;
    if (weight <= 0.0) {
      throw AggregationError("client " + std::to_string(update.client_id) +
                             " reported zero examples");
    }
    auto grads = tensor::deserialize_tensors(update.gradients);
    if (total.empty()) {
      total = std::move(grads);
      for (auto& t : total) t *= weight;
    } else {
      OASIS_CHECK_MSG(grads.size() == total.size(),
                      "update tensor count mismatch: " << grads.size()
                                                       << " vs "
                                                       << total.size());
      for (std::size_t i = 0; i < grads.size(); ++i) {
        total[i].add_scaled_(grads[i], weight);
      }
    }
    total_weight += weight;
  }
  for (auto& t : total) t /= total_weight;
  return total;
}

}  // namespace

std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/true);
}

std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates) {
  return weighted_average(updates, /*weight_by_examples=*/false);
}

}  // namespace oasis::fl
