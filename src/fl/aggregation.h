// Gradient aggregation rules.
#pragma once

#include <span>
#include <vector>

#include "fl/message.h"
#include "tensor/tensor.h"

namespace oasis::fl {

/// FedAvg (paper Eq. 1): example-weighted average of client gradients.
/// All updates must deserialize to identically-shaped tensor lists.
/// Throws AggregationError on an empty update set or a zero example count,
/// and Error on shape/count mismatch.
std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates);

/// Unweighted mean of client gradients (the plain 1/M average in Eq. 1).
std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates);

}  // namespace oasis::fl
