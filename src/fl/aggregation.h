// Gradient aggregation rules.
//
// Aggregation is built on one primitive — FedAvgAccumulator — a fixed-size
// streaming reducer that folds weighted client updates one at a time into a
// single running partial sum. Both the batch fedavg() entry points used by
// the materialized round path and the sharded million-client engine stream
// through the SAME accumulator, which is what makes the two paths
// bit-identical: the floating-point fold order is the order add() is called
// in, nothing else. See DESIGN.md §5i for the determinism argument.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fl/message.h"
#include "tensor/tensor.h"

namespace oasis::fl {

/// Fixed-size streaming (weighted) FedAvg reducer.
///
/// Memory is O(model): one tensor list shaped like the gradients plus a
/// scalar total weight, regardless of how many updates stream through —
/// the property that lets a round over 1M virtual clients run in O(shard)
/// memory. Determinism: the result is a pure function of the SEQUENCE of
/// add() calls; the first update is scaled in place and every later one is
/// folded with add_scaled_, exactly reproducing the historical batch
/// fedavg() byte-for-byte.
///
/// Checkpointable: partials()/total_weight()/count() expose the complete
/// accumulator state and restore() reinstates it bit-exactly, so a huge
/// round can resume from a mid-round shard-boundary snapshot.
class FedAvgAccumulator {
 public:
  /// `weight_by_examples` false gives the plain 1/M average (each update
  /// weighted 1 instead of by its example count).
  explicit FedAvgAccumulator(bool weight_by_examples = true)
      : weight_by_examples_(weight_by_examples) {}

  /// Deserializes and folds one update. Throws AggregationError on a zero
  /// FedAvg weight, Error on tensor count/shape mismatch with the running
  /// sum, and propagates SerializationError for malformed payloads (callers
  /// are expected to have screened updates already).
  void add(const ClientUpdateMessage& update);

  /// Folds pre-deserialized gradients with an explicit weight (> 0).
  void add(std::vector<tensor::Tensor> gradients, real weight);

  /// Updates folded so far.
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] real total_weight() const { return total_weight_; }
  [[nodiscard]] bool weight_by_examples() const { return weight_by_examples_; }
  /// The running weighted partial sum (empty before the first add()).
  [[nodiscard]] const std::vector<tensor::Tensor>& partials() const {
    return total_;
  }

  /// The weighted average over everything folded so far. Does not consume
  /// the accumulator. Throws AggregationError when count() == 0.
  [[nodiscard]] std::vector<tensor::Tensor> average() const;

  /// Drops all folded state (ready for the next round).
  void reset();

  /// Checkpoint restore: reinstates a previously captured state bit-exactly.
  void restore(std::vector<tensor::Tensor> partials, real total_weight,
               std::uint64_t count);

 private:
  bool weight_by_examples_;
  std::vector<tensor::Tensor> total_;
  real total_weight_ = 0.0;
  std::uint64_t count_ = 0;
};

/// FedAvg (paper Eq. 1): example-weighted average of client gradients.
/// All updates must deserialize to identically-shaped tensor lists.
/// Throws AggregationError on an empty update set or a zero example count,
/// and Error on shape/count mismatch.
std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates);

/// Unweighted mean of client gradients (the plain 1/M average in Eq. 1).
std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates);

// --- Byzantine-robust aggregation -------------------------------------------
//
// Memory/streaming trade-off (DESIGN.md §5l). FedAvg and the norm-bounded
// variant are linear folds: they stream through FedAvgAccumulator in O(model)
// memory at any cohort size. Coordinate-wise median and trimmed mean are
// per-coordinate ORDER STATISTICS — they need every accepted update resident
// at once, so selecting them buys an f < n/2 breakdown point at a documented
// O(cohort · model) memory cost. Server::finish_round buffers for them; the
// sharded streaming engine refuses them at construction (ConfigError) because
// buffering a million-client cohort would defeat its entire point.
//
// Both order-statistic aggregators are UNWEIGHTED (example counts are
// attacker-controlled inputs, so weighting by them would hand back the very
// lever robustness removes) and permutation-invariant bit-for-bit: values are
// sorted per coordinate, so the fold order is a function of the values, not
// of update arrival order.

/// Which rule Server::finish_round aggregates accepted updates with.
enum class AggregatorKind : std::uint8_t {
  kFedAvg = 0,        // example-weighted mean (paper Eq. 1) — streaming
  kCoordinateMedian,  // per-coordinate median — buffers the cohort
  kTrimmedMean,       // per-coordinate trimmed mean — buffers the cohort
  kNormBounded,       // FedAvg over per-update L2-clipped gradients — streaming
};

const char* to_string(AggregatorKind kind);

struct AggregatorConfig {
  AggregatorKind kind = AggregatorKind::kFedAvg;
  /// Fraction trimmed from EACH tail per coordinate (kTrimmedMean). The
  /// breakdown point: up to floor(trim_fraction·n) arbitrary updates cannot
  /// move the result outside the honest values' range. Must be in [0, 0.5).
  real trim_fraction = 0.1;
  /// Per-update L2 clip bound (kNormBounded). Must be > 0 for that kind.
  real norm_bound = 1.0;
};

/// Parses a CLI-style aggregator spec:
///   "fedavg" | "median" | "trimmed[:frac]" | "normbound[:bound]"
/// (omitted parameters keep the AggregatorConfig defaults). Throws
/// ConfigError on unknown names or malformed/out-of-range parameters.
AggregatorConfig parse_aggregator(const std::string& spec);

/// In-place global L2 clip of a tensor list to `max_norm` (no-op when the
/// norm is already within the bound). Returns the pre-clip norm.
real clip_gradients_to_norm(std::vector<tensor::Tensor>& gradients,
                            real max_norm);

/// Per-coordinate median over the update set (unweighted; even counts
/// average the two middle order statistics). Throws AggregationError on an
/// empty set, Error on shape/count mismatch.
std::vector<tensor::Tensor> coordinate_median(
    std::span<const std::vector<tensor::Tensor>> updates);

/// Per-coordinate trimmed mean: drop floor(trim_fraction·n) values from each
/// tail, average the rest (ascending order, so the sum is permutation
/// invariant). trim_fraction == 0 is the plain unweighted mean over sorted
/// values. Throws AggregationError when trimming leaves nothing, ConfigError
/// when trim_fraction is outside [0, 0.5).
std::vector<tensor::Tensor> trimmed_mean(
    std::span<const std::vector<tensor::Tensor>> updates, real trim_fraction);

}  // namespace oasis::fl
