// Gradient aggregation rules.
//
// Aggregation is built on one primitive — FedAvgAccumulator — a fixed-size
// streaming reducer that folds weighted client updates one at a time into a
// single running partial sum. Both the batch fedavg() entry points used by
// the materialized round path and the sharded million-client engine stream
// through the SAME accumulator, which is what makes the two paths
// bit-identical: the floating-point fold order is the order add() is called
// in, nothing else. See DESIGN.md §5i for the determinism argument.
#pragma once

#include <span>
#include <vector>

#include "fl/message.h"
#include "tensor/tensor.h"

namespace oasis::fl {

/// Fixed-size streaming (weighted) FedAvg reducer.
///
/// Memory is O(model): one tensor list shaped like the gradients plus a
/// scalar total weight, regardless of how many updates stream through —
/// the property that lets a round over 1M virtual clients run in O(shard)
/// memory. Determinism: the result is a pure function of the SEQUENCE of
/// add() calls; the first update is scaled in place and every later one is
/// folded with add_scaled_, exactly reproducing the historical batch
/// fedavg() byte-for-byte.
///
/// Checkpointable: partials()/total_weight()/count() expose the complete
/// accumulator state and restore() reinstates it bit-exactly, so a huge
/// round can resume from a mid-round shard-boundary snapshot.
class FedAvgAccumulator {
 public:
  /// `weight_by_examples` false gives the plain 1/M average (each update
  /// weighted 1 instead of by its example count).
  explicit FedAvgAccumulator(bool weight_by_examples = true)
      : weight_by_examples_(weight_by_examples) {}

  /// Deserializes and folds one update. Throws AggregationError on a zero
  /// FedAvg weight, Error on tensor count/shape mismatch with the running
  /// sum, and propagates SerializationError for malformed payloads (callers
  /// are expected to have screened updates already).
  void add(const ClientUpdateMessage& update);

  /// Folds pre-deserialized gradients with an explicit weight (> 0).
  void add(std::vector<tensor::Tensor> gradients, real weight);

  /// Updates folded so far.
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] real total_weight() const { return total_weight_; }
  [[nodiscard]] bool weight_by_examples() const { return weight_by_examples_; }
  /// The running weighted partial sum (empty before the first add()).
  [[nodiscard]] const std::vector<tensor::Tensor>& partials() const {
    return total_;
  }

  /// The weighted average over everything folded so far. Does not consume
  /// the accumulator. Throws AggregationError when count() == 0.
  [[nodiscard]] std::vector<tensor::Tensor> average() const;

  /// Drops all folded state (ready for the next round).
  void reset();

  /// Checkpoint restore: reinstates a previously captured state bit-exactly.
  void restore(std::vector<tensor::Tensor> partials, real total_weight,
               std::uint64_t count);

 private:
  bool weight_by_examples_;
  std::vector<tensor::Tensor> total_;
  real total_weight_ = 0.0;
  std::uint64_t count_ = 0;
};

/// FedAvg (paper Eq. 1): example-weighted average of client gradients.
/// All updates must deserialize to identically-shaped tensor lists.
/// Throws AggregationError on an empty update set or a zero example count,
/// and Error on shape/count mismatch.
std::vector<tensor::Tensor> fedavg(
    std::span<const ClientUpdateMessage> updates);

/// Unweighted mean of client gradients (the plain 1/M average in Eq. 1).
std::vector<tensor::Tensor> fedavg_unweighted(
    std::span<const ClientUpdateMessage> updates);

}  // namespace oasis::fl
