#include "fl/client.h"

#include "nn/model_io.h"

namespace oasis::fl {

Client::Client(std::uint64_t id, data::InMemoryDataset local_data,
               ModelFactory factory, index_t batch_size,
               PreprocessorPtr preprocessor, common::Rng rng,
               BatchSampling sampling, LossKind loss_kind)
    : id_(id),
      local_data_(std::move(local_data)),
      model_(factory()),
      batch_size_(batch_size),
      preprocessor_(std::move(preprocessor)),
      rng_(rng),
      sampling_(sampling),
      loss_kind_(loss_kind) {
  OASIS_CHECK(model_ != nullptr);
  OASIS_CHECK(preprocessor_ != nullptr);
  OASIS_CHECK_MSG(batch_size_ >= 1 && batch_size_ <= local_data_.size(),
                  "client " << id_ << ": batch " << batch_size_ << " vs "
                            << local_data_.size() << " local examples");
}

void Client::set_update_postprocessor(PostprocessorPtr postprocessor) {
  postprocessor_ = std::move(postprocessor);
}

void Client::set_model_auditor(ModelAuditor auditor) {
  auditor_ = std::move(auditor);
}

void Client::set_round_keyed_rng(std::uint64_t base_seed) {
  round_keyed_rng_ = true;
  round_key_seed_ = base_seed;
}

common::Rng client_round_stream(std::uint64_t base_seed, std::uint64_t round,
                                std::uint64_t client_id) {
  // Fresh root each call keeps this a pure function of the tuple: split()
  // consumes parent state, but the parent is rebuilt from the seed here.
  common::Rng root(base_seed);
  common::Rng per_round = root.split(round * 0x9E3779B97F4A7C15ULL + 1);
  return per_round.split(client_id);
}

void Client::set_local_training(index_t steps, real lr) {
  OASIS_CHECK(steps >= 1 && lr > 0.0);
  local_steps_ = steps;
  local_lr_ = lr;
}

std::vector<index_t> Client::sample_batch_indices() {
  if (sampling_ == BatchSampling::kUniform) {
    return rng_.sample_without_replacement(local_data_.size(), batch_size_);
  }
  // Unique labels: walk a fresh permutation, taking the first example of
  // each class until the batch is full.
  std::vector<index_t> order(local_data_.size());
  for (index_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  std::vector<index_t> picked;
  std::vector<bool> used(local_data_.num_classes(), false);
  for (const auto idx : order) {
    const index_t label = local_data_.at(idx).label;
    if (used[label]) continue;
    used[label] = true;
    picked.push_back(idx);
    if (picked.size() == batch_size_) break;
  }
  OASIS_CHECK_MSG(picked.size() == batch_size_,
                  "client " << id_ << ": only " << picked.size()
                            << " distinct-label examples for batch "
                            << batch_size_);
  return picked;
}

ClientUpdateMessage Client::handle_round(const GlobalModelMessage& msg) {
  if (round_keyed_rng_) {
    rng_ = client_round_stream(round_key_seed_, msg.round, id_);
  }
  nn::deserialize_state(*model_, msg.model_state);
  // Audit gate: runs before any batch sampling or rng draw so a refusal
  // (AuditError) leaves this client's stream untouched for future rounds.
  if (auditor_) auditor_(*model_, msg.round);

  // Parameter snapshot for multi-step pseudo-gradient mode.
  std::vector<tensor::Tensor> before;
  if (local_steps_ > 1) {
    for (const auto* p : model_->parameters()) before.push_back(p->value);
  }

  index_t examples = 0;
  for (index_t step = 0; step < local_steps_; ++step) {
    // Sample the local batch D; defense hook maps D -> D'.
    const auto indices = sample_batch_indices();
    last_raw_batch_ = data::gather(local_data_, indices);
    const data::Batch training_batch =
        preprocessor_->process(last_raw_batch_, rng_);
    examples += training_batch.size();

    model_->zero_grad();
    const tensor::Tensor logits =
        model_->forward(training_batch.images, /*training=*/true);
    const nn::LossResult loss =
        loss_kind_ == LossKind::kSoftmaxCrossEntropy
            ? ce_loss_.compute(logits, training_batch.labels)
            : bce_loss_.compute(logits, training_batch.labels);
    last_loss_ = loss.loss;
    model_->backward(loss.grad_logits);

    if (local_steps_ > 1) {
      // Plain local SGD step; the accumulated drift is uploaded below.
      for (auto* p : model_->parameters()) {
        p->value.add_scaled_(p->grad, -local_lr_);
      }
    }
  }

  std::vector<tensor::Tensor> gradients;
  if (local_steps_ > 1) {
    // Pseudo-gradient (w_received − w_local) / lr, FedAvg-compatible.
    auto params = model_->parameters();
    gradients.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      tensor::Tensor delta = before[i];
      delta -= params[i]->value;
      delta /= local_lr_;
      gradients.push_back(std::move(delta));
    }
  } else {
    gradients = nn::snapshot_gradients(*model_);
  }
  if (postprocessor_) {
    gradients = postprocessor_->process(std::move(gradients), rng_);
  }

  ClientUpdateMessage update;
  update.round = msg.round;
  update.client_id = id_;
  update.num_examples = examples;
  update.gradients = tensor::serialize_tensors(gradients);
  return update;
}

}  // namespace oasis::fl
