// FL client: local data, local model replica, gradient computation.
#pragma once

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "fl/message.h"
#include "fl/postprocessor.h"
#include "fl/preprocessor.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace oasis::fl {

/// Builds a fresh model replica with the architecture the federation agreed
/// on. Clients instantiate locally and load the server's weights into it.
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>()>;

/// Client-side audit gate over the dispatched global model, invoked on the
/// freshly loaded replica at the top of every handle_round — BEFORE any
/// local randomness is consumed, so a refusal leaves the client's RNG
/// stream untouched. The auditor refuses the round by throwing
/// common AuditError (attack::make_model_auditor builds one from the
/// implant-detection screens); engines catch it and proceed with the
/// remaining cohort.
using ModelAuditor = std::function<void(nn::Sequential& model,
                                        std::uint64_t round)>;

/// How the client draws its local batch each round.
/// Which training loss the federation runs.
enum class LossKind {
  /// Softmax cross-entropy — standard classification (all CNN experiments).
  kSoftmaxCrossEntropy,
  /// One-vs-all logistic regression — the Appendix D linear-model setting.
  kSigmoidBce,
};

enum class BatchSampling {
  /// Uniform without replacement — the standard FL setting.
  kUniform,
  /// At most one example per class — the Appendix D linear-model setting,
  /// where the inversion requires unique labels per batch.
  kUniqueLabels,
};

/// One federated user u_j.
///
/// Per round: deserializes the dispatched global model into its replica,
/// samples a local batch D of `batch_size`, runs the (possibly OASIS)
/// preprocessor to get D', computes batch gradients of the cross-entropy
/// loss, and returns them serialized.
class Client {
 public:
  Client(std::uint64_t id, data::InMemoryDataset local_data,
         ModelFactory factory, index_t batch_size,
         PreprocessorPtr preprocessor, common::Rng rng,
         BatchSampling sampling = BatchSampling::kUniform,
         LossKind loss_kind = LossKind::kSoftmaxCrossEntropy);

  /// Installs a gradient postprocessor (DP noise, pruning, ...) applied to
  /// every update before upload. Default: upload exact gradients.
  void set_update_postprocessor(PostprocessorPtr postprocessor);

  /// Installs the model-audit gate run on every dispatched global model
  /// immediately after it is loaded into the local replica. The auditor
  /// refuses the round by throwing AuditError, which propagates out of
  /// handle_round untouched; because it runs before any batch sampling or
  /// rng draw, a refused round consumes no client randomness and a
  /// re-dispatch of the same model re-refuses deterministically. Default:
  /// no audit.
  void set_model_auditor(ModelAuditor auditor);

  /// Switches the client to ROUND-KEYED stateless randomness: at the top of
  /// every handle_round the rng is re-derived as a pure function of
  /// (base_seed, dispatched round id, client id) via client_round_stream().
  /// This removes the only per-client state that persists across rounds,
  /// which is what lets the sharded engine generate clients lazily — a
  /// virtual client materialized fresh for round t behaves byte-identically
  /// to one that lived through rounds 0..t-1. A materialized fl::Simulation
  /// over round-keyed clients and the sharded streaming engine over the same
  /// population therefore produce the same bytes (the differential shard
  /// tests' contract).
  void set_round_keyed_rng(std::uint64_t base_seed);

  /// Switches the client to classic FedAvg local training: per round it runs
  /// `steps` local SGD steps (each on a fresh preprocessed batch) with the
  /// given learning rate and uploads the pseudo-gradient
  /// (w_received − w_local) / lr. With steps == 1 this equals the raw batch
  /// gradient, so the default single-step mode is the special case the
  /// paper's attack analysis assumes.
  void set_local_training(index_t steps, real lr);

  /// Handles one training round. Throws SerializationError on a malformed
  /// model payload.
  ClientUpdateMessage handle_round(const GlobalModelMessage& msg);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const data::InMemoryDataset& local_data() const {
    return local_data_;
  }
  /// The batch D sampled in the most recent round (pre-augmentation) — used
  /// by attack-evaluation harnesses as the reconstruction ground truth.
  [[nodiscard]] const data::Batch& last_raw_batch() const {
    return last_raw_batch_;
  }
  /// Loss of the most recent local step (diagnostics).
  [[nodiscard]] real last_loss() const { return last_loss_; }

  /// Checkpoint hooks. The RNG stream position is the ONLY per-client state
  /// a snapshot must carry: the model replica is overwritten from the
  /// dispatched global state at the top of every handle_round, and
  /// last_raw_batch_/last_loss_ are diagnostics regenerated by the next
  /// round before anything reads them.
  [[nodiscard]] common::Rng::State rng_state() const { return rng_.state(); }
  void restore_rng_state(const common::Rng::State& s) { rng_.set_state(s); }

 private:
  /// Indices of this round's batch under the configured sampling mode.
  std::vector<index_t> sample_batch_indices();

  std::uint64_t id_;
  data::InMemoryDataset local_data_;
  std::unique_ptr<nn::Sequential> model_;
  index_t batch_size_;
  PreprocessorPtr preprocessor_;
  PostprocessorPtr postprocessor_;  // nullptr = identity
  ModelAuditor auditor_;            // empty = accept every model
  index_t local_steps_ = 1;
  real local_lr_ = 0.0;  // 0 → raw-gradient mode
  bool round_keyed_rng_ = false;
  std::uint64_t round_key_seed_ = 0;
  common::Rng rng_;
  BatchSampling sampling_;
  LossKind loss_kind_;
  nn::SoftmaxCrossEntropy ce_loss_;
  nn::SigmoidBce bce_loss_;
  data::Batch last_raw_batch_;
  real last_loss_ = 0.0;
};

/// The per-(round, client) rng stream of round-keyed clients: a pure
/// function of the tuple, derived through fresh split streams (the
/// fl::FaultPlan idiom) so no shared mutable state couples clients. Exposed
/// so tests and the virtual-population machinery agree on the derivation.
common::Rng client_round_stream(std::uint64_t base_seed, std::uint64_t round,
                                std::uint64_t client_id);

}  // namespace oasis::fl
