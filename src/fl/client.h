// FL client: local data, local model replica, gradient computation.
#pragma once

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "fl/message.h"
#include "fl/postprocessor.h"
#include "fl/preprocessor.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace oasis::fl {

/// Builds a fresh model replica with the architecture the federation agreed
/// on. Clients instantiate locally and load the server's weights into it.
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>()>;

/// How the client draws its local batch each round.
/// Which training loss the federation runs.
enum class LossKind {
  /// Softmax cross-entropy — standard classification (all CNN experiments).
  kSoftmaxCrossEntropy,
  /// One-vs-all logistic regression — the Appendix D linear-model setting.
  kSigmoidBce,
};

enum class BatchSampling {
  /// Uniform without replacement — the standard FL setting.
  kUniform,
  /// At most one example per class — the Appendix D linear-model setting,
  /// where the inversion requires unique labels per batch.
  kUniqueLabels,
};

/// One federated user u_j.
///
/// Per round: deserializes the dispatched global model into its replica,
/// samples a local batch D of `batch_size`, runs the (possibly OASIS)
/// preprocessor to get D', computes batch gradients of the cross-entropy
/// loss, and returns them serialized.
class Client {
 public:
  Client(std::uint64_t id, data::InMemoryDataset local_data,
         ModelFactory factory, index_t batch_size,
         PreprocessorPtr preprocessor, common::Rng rng,
         BatchSampling sampling = BatchSampling::kUniform,
         LossKind loss_kind = LossKind::kSoftmaxCrossEntropy);

  /// Installs a gradient postprocessor (DP noise, pruning, ...) applied to
  /// every update before upload. Default: upload exact gradients.
  void set_update_postprocessor(PostprocessorPtr postprocessor);

  /// Switches the client to classic FedAvg local training: per round it runs
  /// `steps` local SGD steps (each on a fresh preprocessed batch) with the
  /// given learning rate and uploads the pseudo-gradient
  /// (w_received − w_local) / lr. With steps == 1 this equals the raw batch
  /// gradient, so the default single-step mode is the special case the
  /// paper's attack analysis assumes.
  void set_local_training(index_t steps, real lr);

  /// Handles one training round. Throws SerializationError on a malformed
  /// model payload.
  ClientUpdateMessage handle_round(const GlobalModelMessage& msg);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const data::InMemoryDataset& local_data() const {
    return local_data_;
  }
  /// The batch D sampled in the most recent round (pre-augmentation) — used
  /// by attack-evaluation harnesses as the reconstruction ground truth.
  [[nodiscard]] const data::Batch& last_raw_batch() const {
    return last_raw_batch_;
  }
  /// Loss of the most recent local step (diagnostics).
  [[nodiscard]] real last_loss() const { return last_loss_; }

 private:
  /// Indices of this round's batch under the configured sampling mode.
  std::vector<index_t> sample_batch_indices();

  std::uint64_t id_;
  data::InMemoryDataset local_data_;
  std::unique_ptr<nn::Sequential> model_;
  index_t batch_size_;
  PreprocessorPtr preprocessor_;
  PostprocessorPtr postprocessor_;  // nullptr = identity
  index_t local_steps_ = 1;
  real local_lr_ = 0.0;  // 0 → raw-gradient mode
  common::Rng rng_;
  BatchSampling sampling_;
  LossKind loss_kind_;
  nn::SoftmaxCrossEntropy ce_loss_;
  nn::SigmoidBce bce_loss_;
  data::Batch last_raw_batch_;
  real last_loss_ = 0.0;
};

}  // namespace oasis::fl
