#include "fl/defense.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "fl/secure_agg.h"
#include "obs/obs.h"
#include "tensor/serialize.h"

namespace oasis::fl {

ClipDefense::ClipDefense(real max_norm) : max_norm_(max_norm) {
  if (!(max_norm > 0.0)) {
    throw ConfigError("clip defense needs max_norm > 0");
  }
}

void ClipDefense::apply(std::vector<tensor::Tensor>& gradients,
                        common::Rng& /*rng*/,
                        const DefenseContext& /*ctx*/) const {
  static obs::Counter& applied = obs::counter("fl.defense.clip");
  static obs::Counter& active = obs::counter("fl.defense.clip.active");
  applied.add(1);
  real sum_squares = 0.0;
  for (const auto& t : gradients) {
    for (const auto v : t.data()) sum_squares += v * v;
  }
  const real norm = std::sqrt(sum_squares);
  if (norm <= max_norm_) return;
  active.add(1);
  const real scale = max_norm_ / norm;
  for (auto& t : gradients) t *= scale;
}

std::string ClipDefense::name() const {
  std::ostringstream os;
  os << "clip(" << max_norm_ << ")";
  return os.str();
}

GaussianNoiseDefense::GaussianNoiseDefense(real stddev) : stddev_(stddev) {
  if (!(stddev > 0.0)) {
    throw ConfigError("noise defense needs stddev > 0");
  }
}

void GaussianNoiseDefense::apply(std::vector<tensor::Tensor>& gradients,
                                 common::Rng& rng,
                                 const DefenseContext& /*ctx*/) const {
  static obs::Counter& applied = obs::counter("fl.defense.noise");
  applied.add(1);
  for (auto& t : gradients) {
    for (auto& v : t.data()) v += rng.normal(0.0, stddev_);
  }
}

std::string GaussianNoiseDefense::name() const {
  std::ostringstream os;
  os << "noise(" << stddev_ << ")";
  return os.str();
}

void SecAggMaskDefense::apply(std::vector<tensor::Tensor>& gradients,
                              common::Rng& /*rng*/,
                              const DefenseContext& ctx) const {
  static obs::Counter& applied = obs::counter("fl.defense.mask");
  if (ctx.cohort.empty()) {
    throw ConfigError(
        "mask defense needs a cohort: the engine supplies one per round, the "
        "socket path needs DefenseStack::set_static_cohort");
  }
  applied.add(1);
  std::vector<tensor::Shape> shapes;
  shapes.reserve(gradients.size());
  for (const auto& t : gradients) shapes.push_back(t.shape());
  const SecureAggregationSession session(
      std::vector<std::uint64_t>(ctx.cohort.begin(), ctx.cohort.end()),
      /*round_nonce=*/ctx.round);
  const auto mask = session.mask_for(ctx.client_id, shapes);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    gradients[i] += mask[i];
  }
}

std::string SecAggMaskDefense::name() const { return "mask"; }

void DefenseStack::add(std::unique_ptr<Defense> defense) {
  OASIS_CHECK(defense != nullptr);
  defenses_.push_back(std::move(defense));
}

bool DefenseStack::requires_cohort() const {
  for (const auto& d : defenses_) {
    if (d->requires_cohort()) return true;
  }
  return false;
}

common::Rng DefenseStack::stream(std::uint64_t round, std::uint64_t client_id,
                                 std::size_t index) const {
  // Fresh root each call keeps this a pure function of the tuple: split()
  // consumes parent state, but the parent is rebuilt from the seed here.
  common::Rng root(seed_);
  common::Rng per_round = root.split(round * 0x9E3779B97F4A7C15ULL + 2);
  common::Rng per_client = per_round.split(client_id);
  return per_client.split(static_cast<std::uint64_t>(index));
}

void DefenseStack::apply(std::vector<tensor::Tensor>& gradients,
                         const DefenseContext& ctx) const {
  static obs::Counter& applied = obs::counter("fl.defense.applied");
  if (defenses_.empty()) return;
  applied.add(1);
  for (std::size_t i = 0; i < defenses_.size(); ++i) {
    common::Rng rng = stream(ctx.round, ctx.client_id, i);
    defenses_[i]->apply(gradients, rng, ctx);
  }
}

void DefenseStack::apply(ClientUpdateMessage& update,
                         std::span<const std::uint64_t> cohort) const {
  if (defenses_.empty()) return;
  DefenseContext ctx;
  ctx.round = update.round;
  ctx.client_id = update.client_id;
  ctx.cohort = cohort.empty()
                   ? std::span<const std::uint64_t>(static_cohort_)
                   : cohort;
  auto gradients = tensor::deserialize_tensors(update.gradients);
  apply(gradients, ctx);
  update.gradients = tensor::serialize_tensors(gradients);
}

std::string DefenseStack::name() const {
  if (defenses_.empty()) return "none";
  std::string out;
  for (const auto& d : defenses_) {
    if (!out.empty()) out += "+";
    out += d->name();
  }
  return out;
}

std::shared_ptr<DefenseStack> parse_defense_stack(const std::string& spec,
                                                  std::uint64_t seed) {
  auto stack = std::make_shared<DefenseStack>(seed);
  if (spec.empty() || spec == "none") return stack;
  std::istringstream tokens(spec);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const auto colon = token.find(':');
    const std::string kind = token.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : token.substr(colon + 1);
    const auto parse_arg = [&](const char* what) {
      std::istringstream in(arg);
      real value = 0.0;
      char trailing = 0;
      if (!(in >> value) || in.get(trailing) || !(value > 0.0) ||
          !std::isfinite(value)) {
        throw ConfigError("defense spec '" + token + "': " + what +
                          " must be a positive number");
      }
      return value;
    };
    if (kind == "clip") {
      stack->add(std::make_unique<ClipDefense>(parse_arg("max_norm")));
    } else if (kind == "noise") {
      stack->add(std::make_unique<GaussianNoiseDefense>(parse_arg("stddev")));
    } else if (kind == "mask") {
      stack->add(std::make_unique<SecAggMaskDefense>());
    } else if (kind == "oasis") {
      stack->request_augmentation();
    } else {
      throw ConfigError("unknown defense '" + token +
                        "' (expected clip:<norm>, noise:<stddev>, mask, or "
                        "oasis)");
    }
  }
  return stack;
}

}  // namespace oasis::fl
