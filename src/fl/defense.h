// Composable client-side update defenses (ROADMAP item 5).
//
// A Defense is one per-update transform of the gradient tensors a client is
// about to upload: L2 norm clipping, Gaussian DP noise, pairwise
// secure-aggregation masking (wrapping fl::SecureAggregationSession). An
// ordered DefenseStack composes them; the OASIS augmentation itself is
// carried as a hook on the stack (it operates on the training BATCH before
// gradients exist — see fl/preprocessor.h — so the stack records the request
// and federation builders install the preprocessor on their clients).
//
// Determinism contract. Every randomized stage draws from a stream that is a
// pure function of (stack seed, defense index, round, client id), derived
// through fresh common::Rng split roots exactly like fl::FaultPlan. Applying
// the stack inside a parallel training region is therefore safe: no state is
// shared between clients, and the bytes a client uploads are identical at
// any thread count and any stack-internal ordering of parallel bodies.
//
// Obs: fl.defense.applied counts updates that passed through a non-empty
// stack; each stage tallies fl.defense.<stage> (and fl.defense.clip.active
// when the clip actually bit).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fl/message.h"
#include "fl/preprocessor.h"
#include "tensor/tensor.h"

namespace oasis::fl {

/// Per-application context a Defense may consult. `cohort` is the round's
/// full participant list when the engine knows it (fl::Simulation and the
/// sharded engine supply it); empty on the socket path, where cohort-aware
/// stages fall back to the stack's static cohort.
struct DefenseContext {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  std::span<const std::uint64_t> cohort{};
};

/// One per-update gradient transform. Implementations must be stateless
/// across apply() calls (a const stack is shared by every client on every
/// thread); all randomness comes from the caller-provided split stream.
class Defense {
 public:
  Defense() = default;
  Defense(const Defense&) = delete;
  Defense& operator=(const Defense&) = delete;
  virtual ~Defense() = default;

  virtual void apply(std::vector<tensor::Tensor>& gradients, common::Rng& rng,
                     const DefenseContext& ctx) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// True when apply() needs ctx.cohort — lets engines skip materializing
  /// the (possibly million-entry) cohort id list for cohort-free stacks.
  [[nodiscard]] virtual bool requires_cohort() const { return false; }
};

/// Clips the update to a global L2 norm bound (over ALL tensors): the
/// norm-bounded-sensitivity half of DP-SGD, and on its own a cheap guard
/// against scale-blowup uploads.
class ClipDefense : public Defense {
 public:
  /// Throws ConfigError unless max_norm > 0.
  explicit ClipDefense(real max_norm);
  void apply(std::vector<tensor::Tensor>& gradients, common::Rng& rng,
             const DefenseContext& ctx) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] real max_norm() const { return max_norm_; }

 private:
  real max_norm_;
};

/// Adds i.i.d. Gaussian noise to every gradient element — the DP noise
/// stage. Element order is the tensor-list order, so the draw sequence is a
/// pure function of the stream.
class GaussianNoiseDefense : public Defense {
 public:
  /// Throws ConfigError unless stddev > 0.
  explicit GaussianNoiseDefense(real stddev);
  void apply(std::vector<tensor::Tensor>& gradients, common::Rng& rng,
             const DefenseContext& ctx) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] real stddev() const { return stddev_; }

 private:
  real stddev_;
};

/// Pairwise secure-aggregation masking: wraps SecureAggregationSession with
/// the round id as the nonce. Uses ctx.cohort when the engine supplies it;
/// masks cancel in the cohort SUM only when every member's masked update is
/// aggregated with equal weight (the honest, no-dropout case the secagg_test
/// suite pins) — a rejected or dropped member leaves its pairwise masks in
/// the aggregate as noise, which is the protocol's documented behavior
/// without dropout-recovery shares.
class SecAggMaskDefense : public Defense {
 public:
  void apply(std::vector<tensor::Tensor>& gradients, common::Rng& rng,
             const DefenseContext& ctx) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool requires_cohort() const override { return true; }
};

/// Ordered, composable stack of defenses applied to every update before
/// upload. Stages run in add() order; the canonical DP composition is
/// clip → noise (clipping bounds sensitivity BEFORE noise calibrated to it),
/// with masking last so the wire payload is already defended when masked.
class DefenseStack {
 public:
  explicit DefenseStack(std::uint64_t seed = kDefaultSeed) : seed_(seed) {}
  DefenseStack(const DefenseStack&) = delete;
  DefenseStack& operator=(const DefenseStack&) = delete;

  static constexpr std::uint64_t kDefaultSeed = 0xDEF5;

  void add(std::unique_ptr<Defense> defense);
  [[nodiscard]] std::size_t size() const { return defenses_.size(); }
  [[nodiscard]] bool empty() const { return defenses_.empty(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// True when any stage needs the round cohort (see Defense).
  [[nodiscard]] bool requires_cohort() const;

  /// The OASIS augmentation hook. The stack cannot apply augmentation itself
  /// (it transforms the training batch, not the gradients), so it carries
  /// the preprocessor for federation builders to install on their clients;
  /// augmentation_requested() additionally records an "oasis" spec token
  /// whose preprocessor the builder constructs.
  void set_augmentation(PreprocessorPtr augmentation) {
    augmentation_ = std::move(augmentation);
  }
  [[nodiscard]] const PreprocessorPtr& augmentation() const {
    return augmentation_;
  }
  void request_augmentation() { augmentation_requested_ = true; }
  [[nodiscard]] bool augmentation_requested() const {
    return augmentation_requested_;
  }

  /// Fallback cohort for cohort-aware stages when the engine cannot supply
  /// one (the socket path, where a client never learns the round cohort).
  void set_static_cohort(std::vector<std::uint64_t> cohort) {
    static_cohort_ = std::move(cohort);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& static_cohort() const {
    return static_cohort_;
  }

  /// Applies every stage in order to already-deserialized gradients.
  void apply(std::vector<tensor::Tensor>& gradients,
             const DefenseContext& ctx) const;

  /// Wire-level convenience: deserialize → apply → reserialize. No-op for an
  /// empty stack (the honest path stays copy-free). `cohort` empty falls
  /// back to the static cohort.
  void apply(ClientUpdateMessage& update,
             std::span<const std::uint64_t> cohort = {}) const;

  /// "clip(10)+noise(0.01)+mask" — stage names joined in order.
  [[nodiscard]] std::string name() const;

 private:
  /// The per-(round, client, stage) stream: a pure function of the tuple,
  /// derived through fresh split roots (the fl::FaultPlan idiom).
  [[nodiscard]] common::Rng stream(std::uint64_t round,
                                   std::uint64_t client_id,
                                   std::size_t index) const;

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Defense>> defenses_;
  PreprocessorPtr augmentation_;
  bool augmentation_requested_ = false;
  std::vector<std::uint64_t> static_cohort_;
};

using DefenseStackPtr = std::shared_ptr<const DefenseStack>;

/// Builds a stack from a comma-separated spec, preserving stage order:
///   "clip:10,noise:0.01,mask,oasis"   (also "none" / "" → empty stack)
/// clip:<max_norm> and noise:<stddev> require positive parameters; "mask"
/// adds SecAggMaskDefense; "oasis" sets augmentation_requested() for the
/// caller to honor. Throws ConfigError on an unknown token or bad parameter.
std::shared_ptr<DefenseStack> parse_defense_stack(
    const std::string& spec, std::uint64_t seed = DefenseStack::kDefaultSeed);

}  // namespace oasis::fl
