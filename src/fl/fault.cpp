#include "fl/fault.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "tensor/serialize.h"

namespace oasis::fl {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPoison: return "poison";
    case FaultKind::kByzantine: return "byzantine";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultConfig config) : config_(config) {
  const real probs[] = {config.dropout_prob, config.straggler_prob,
                        config.corrupt_prob, config.poison_prob};
  real sum = 0.0;
  for (const real p : probs) {
    if (p < 0.0 || p > 1.0) {
      throw ConfigError("fault probability outside [0, 1]");
    }
    sum += p;
  }
  if (sum > 1.0 + 1e-12) {
    throw ConfigError("fault probabilities sum past 1");
  }
  if (config.byzantine_fraction < 0.0 || config.byzantine_fraction > 1.0) {
    throw ConfigError("byzantine_fraction outside [0, 1]");
  }
  if (config.straggler_min_ticks > config.straggler_max_ticks) {
    throw ConfigError("straggler tick range inverted");
  }
}

bool FaultPlan::byzantine(std::uint64_t client_id) const {
  if (config_.byzantine_fraction <= 0.0) return false;
  // Round- and attempt-free stream: the attacker set is fixed for the plan's
  // lifetime, the way a compromised device population actually behaves.
  common::Rng root(config_.seed);
  common::Rng stream = root.split(0xB42A11CEULL).split(client_id);
  return stream.uniform() < config_.byzantine_fraction;
}

common::Rng FaultPlan::stream(std::uint64_t ticket, std::uint64_t attempt,
                              std::uint64_t client_id,
                              std::uint64_t salt) const {
  // Fresh root each call keeps this a pure function of the tuple: split()
  // consumes parent state, but the parent is rebuilt from the seed here.
  common::Rng root(config_.seed);
  common::Rng per_round = root.split(ticket * 0x9E3779B97F4A7C15ULL + attempt);
  return per_round.split(client_id * 2 + salt);
}

ClientFault FaultPlan::decide(std::uint64_t ticket, std::uint64_t attempt,
                              std::uint64_t client_id) const {
  ClientFault fault;
  if (!active()) return fault;
  if (byzantine(client_id)) {
    // Persistent attackers override the per-delivery partition: a colluding
    // client delivers its hostile update reliably, every round, every
    // attempt — reliability is what makes it dangerous.
    fault.kind = FaultKind::kByzantine;
    return fault;
  }
  common::Rng rng = stream(ticket, attempt, client_id, /*salt=*/0);
  // One uniform draw partitioned by the (mutually exclusive) class probs so
  // a config's rates compose exactly.
  const real u = rng.uniform();
  real edge = config_.dropout_prob;
  if (u < edge) {
    fault.kind = FaultKind::kDropout;
    return fault;
  }
  edge += config_.straggler_prob;
  if (u < edge) {
    fault.kind = FaultKind::kStraggler;
    fault.delay_ticks = static_cast<std::uint64_t>(rng.uniform_int(
        static_cast<std::int64_t>(config_.straggler_min_ticks),
        static_cast<std::int64_t>(config_.straggler_max_ticks)));
    return fault;
  }
  edge += config_.corrupt_prob;
  if (u < edge) {
    fault.kind = FaultKind::kCorrupt;
    fault.corruption =
        static_cast<CorruptionKind>(rng.uniform_int(0, 3));
    return fault;
  }
  edge += config_.poison_prob;
  if (u < edge) {
    fault.kind = FaultKind::kPoison;
    fault.poison = static_cast<PoisonKind>(rng.uniform_int(0, 2));
    return fault;
  }
  return fault;
}

void FaultPlan::apply(ClientUpdateMessage& update, const ClientFault& fault,
                      std::uint64_t ticket, std::uint64_t attempt,
                      std::uint64_t client_id) const {
  if (fault.kind == FaultKind::kByzantine) {
    // Byzantine updates stay well-formed and finite: they must survive every
    // structural/numeric screen and reach the aggregator, where robustness
    // is decided.
    auto grads = tensor::deserialize_tensors(update.gradients);
    switch (config_.byzantine_kind) {
      case ByzantineKind::kSignFlip:
        for (auto& t : grads) t *= -config_.byzantine_scale;
        break;
      case ByzantineKind::kScaleBlowup:
        for (auto& t : grads) t *= config_.byzantine_scale;
        break;
      case ByzantineKind::kColludingDuplicate: {
        // One shared direction per round ticket, identical across ALL
        // colluders (the stream is keyed on the ticket alone): the bloc
        // votes the same value in every coordinate.
        common::Rng root(config_.seed);
        common::Rng shared = root.split(0xC011DDE5ULL).split(ticket);
        for (auto& t : grads) {
          for (auto& v : t.data()) {
            v = shared.normal(0.0, config_.byzantine_scale);
          }
        }
        break;
      }
    }
    update.gradients = tensor::serialize_tensors(grads);
    return;
  }
  if (fault.kind != FaultKind::kCorrupt && fault.kind != FaultKind::kPoison) {
    return;
  }
  common::Rng rng = stream(ticket, attempt, client_id, /*salt=*/1);
  if (fault.kind == FaultKind::kCorrupt) {
    auto& bytes = update.gradients;
    switch (fault.corruption) {
      case CorruptionKind::kTruncate: {
        if (bytes.empty()) return;
        bytes.resize(static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(bytes.size()) - 1)));
        return;
      }
      case CorruptionKind::kBitFlip: {
        if (bytes.empty()) return;
        const std::int64_t flips = rng.uniform_int(1, 8);
        for (std::int64_t f = 0; f < flips; ++f) {
          const auto pos = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(bytes.size()) - 1));
          bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        }
        return;
      }
      case CorruptionKind::kWrongRound:
        update.round += static_cast<std::uint64_t>(rng.uniform_int(1, 4));
        return;
      case CorruptionKind::kDuplicate:
        return;  // delivery-level: the engine posts the update twice
    }
    return;
  }
  // Poison: mutate through the typed layer so the payload stays well-formed
  // and reaches the server's numeric screens rather than the parser.
  auto grads = tensor::deserialize_tensors(update.gradients);
  if (grads.empty()) return;
  switch (fault.poison) {
    case PoisonKind::kNaN:
    case PoisonKind::kInf: {
      const real bad = fault.poison == PoisonKind::kNaN
                           ? std::numeric_limits<real>::quiet_NaN()
                           : std::numeric_limits<real>::infinity();
      const std::int64_t hits = rng.uniform_int(1, 4);
      for (std::int64_t h = 0; h < hits; ++h) {
        auto& t = grads[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(grads.size()) - 1))];
        if (t.size() == 0) continue;
        t[static_cast<index_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(t.size()) - 1))] = bad;
      }
      break;
    }
    case PoisonKind::kNormScale:
      for (auto& t : grads) t *= config_.poison_scale;
      break;
  }
  update.gradients = tensor::serialize_tensors(grads);
}

}  // namespace oasis::fl
