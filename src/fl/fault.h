// Seeded fault injection for the FL round engine.
//
// A FaultPlan decides, for every (round ticket, attempt, client) tuple,
// whether that client's reply is dropped, delayed past the deadline,
// corrupted on the wire, or numerically poisoned. Decisions are a pure
// function of (plan seed, ticket, attempt, client id) — derived through
// common::Rng split streams, never from shared mutable state — so a chaos
// run reproduces bit-identically at any thread count (the PR-1 determinism
// contract) and a single client's fault history can be queried without
// simulating anyone else.
//
// Fault taxonomy (motivated by the Carletti et al. detectability study and
// the Pasquini et al. inconsistent-model primitive already in
// fl/inconsistent_server.h — both argue the server must screen updates):
//   dropout    client never replies (crash / network partition)
//   straggler  reply delayed by a uniform tick count on the virtual clock;
//              delays past the per-attempt deadline become timeouts
//   corrupt    wire-level damage: payload truncation, random bit flips,
//              a stale/wrong round id, or duplicate delivery
//   poison     well-formed payload with hostile numerics: NaN/Inf values or
//              gradients scaled far outside the plausible norm band
//   byzantine  a PERSISTENT adversarial client: membership is a pure function
//              of (seed, client id) alone — the same clients attack every
//              round, modelling a colluding compromised fraction f of the
//              population rather than transient wire damage. Byzantine
//              updates are well-formed and finite on purpose: they pass every
//              structural screen and must be absorbed by a robust AGGREGATOR
//              (coordinate median / trimmed mean — see aggregation.h), which
//              is exactly what the Byzantine chaos suite proves.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "fl/message.h"

namespace oasis::fl {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDropout,
  kStraggler,
  kCorrupt,
  kPoison,
  kByzantine,
};

enum class CorruptionKind : std::uint8_t {
  kTruncate = 0,  // payload cut short at a random byte offset
  kBitFlip,       // 1-8 random bits flipped anywhere in the payload
  kWrongRound,    // round id bumped: stale or replayed message
  kDuplicate,     // the (valid) update is delivered twice
};

enum class PoisonKind : std::uint8_t {
  kNaN = 0,    // a handful of gradient values replaced with quiet NaN
  kInf,        // ...or with ±infinity
  kNormScale,  // all gradients multiplied by `poison_scale`
};

enum class ByzantineKind : std::uint8_t {
  /// g → −byzantine_scale · g: the classic gradient-ascent attack. The mean
  /// is pulled off course once f·scale > (1 − f); the median is not.
  kSignFlip = 0,
  /// g → byzantine_scale · g: magnitude inflation that stays finite (and,
  /// with the norm screen off, passes validation untouched).
  kScaleBlowup,
  /// Every colluder replaces its gradients with ONE shared direction drawn
  /// from a stream keyed on (seed, ticket) only — identical payload bytes
  /// under distinct client ids, so the duplicate screen cannot see it and
  /// the colluders vote as a bloc per coordinate.
  kColludingDuplicate,
};

const char* to_string(FaultKind kind);

/// Per-fault-class injection probabilities plus shape parameters. The four
/// probabilities partition a single uniform draw, so they are mutually
/// exclusive per (ticket, attempt, client) and must sum to at most 1.
struct FaultConfig {
  real dropout_prob = 0.0;
  real straggler_prob = 0.0;
  real corrupt_prob = 0.0;
  real poison_prob = 0.0;
  /// Straggler delay drawn uniformly from [min, max] virtual-clock ticks.
  std::uint64_t straggler_min_ticks = 50;
  std::uint64_t straggler_max_ticks = 400;
  /// Gradient multiplier for PoisonKind::kNormScale.
  real poison_scale = 1e9;
  /// Fraction of the POPULATION that is persistently Byzantine. Membership
  /// is a pure function of (seed, client id) — independent of round and
  /// attempt, and NOT part of the per-delivery probability partition above
  /// (a compromised client attacks reliably, it does not also drop out).
  real byzantine_fraction = 0.0;
  ByzantineKind byzantine_kind = ByzantineKind::kSignFlip;
  /// Magnitude factor for every ByzantineKind (sign-flip uploads
  /// −byzantine_scale·g).
  real byzantine_scale = 10.0;
  std::uint64_t seed = 0x0A5150;

  [[nodiscard]] bool any() const {
    return dropout_prob > 0.0 || straggler_prob > 0.0 || corrupt_prob > 0.0 ||
           poison_prob > 0.0 || byzantine_fraction > 0.0;
  }
};

/// The fault decided for one delivery attempt of one client's update.
struct ClientFault {
  FaultKind kind = FaultKind::kNone;
  CorruptionKind corruption = CorruptionKind::kTruncate;  // when kCorrupt
  PoisonKind poison = PoisonKind::kNaN;                   // when kPoison
  std::uint64_t delay_ticks = 0;                          // when kStraggler
};

/// Deterministic fault schedule. Default-constructed plans are inert
/// (active() == false, every decision kNone) so the honest path carries no
/// fault machinery.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Throws ConfigError when the probabilities are invalid (negative or
  /// summing past 1) or the straggler tick range is inverted.
  explicit FaultPlan(FaultConfig config);

  [[nodiscard]] bool active() const { return config_.any(); }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Pure function of (seed, ticket, attempt, client_id); safe to call from
  /// any thread in any order. `ticket` is the engine's monotone round-start
  /// counter (not the protocol round id, which repeats after an abort).
  [[nodiscard]] ClientFault decide(std::uint64_t ticket, std::uint64_t attempt,
                                   std::uint64_t client_id) const;

  /// Is `client_id` a persistent Byzantine attacker under this plan? Pure
  /// function of (seed, client_id); exposed so tests can count the attacker
  /// set a seed produces before asserting on its effects.
  [[nodiscard]] bool byzantine(std::uint64_t client_id) const;

  /// Applies a kCorrupt/kPoison fault to a collected update in place, using
  /// the same split-stream derivation as decide() so the damage bytes are
  /// reproducible. kDuplicate is a delivery-level fault — the engine posts
  /// the update twice — so apply() leaves the payload intact for it.
  void apply(ClientUpdateMessage& update, const ClientFault& fault,
             std::uint64_t ticket, std::uint64_t attempt,
             std::uint64_t client_id) const;

 private:
  [[nodiscard]] common::Rng stream(std::uint64_t ticket, std::uint64_t attempt,
                                   std::uint64_t client_id,
                                   std::uint64_t salt) const;

  FaultConfig config_;
};

}  // namespace oasis::fl
