#include "fl/inconsistent_server.h"

#include "nn/dense.h"
#include "nn/model_io.h"

namespace oasis::fl {

InconsistentMaliciousServer::InconsistentMaliciousServer(
    std::unique_ptr<nn::Sequential> global_model, real learning_rate,
    ModelManipulator manipulator, std::uint64_t target, real dead_bias)
    : MaliciousServer(std::move(global_model), learning_rate,
                      std::move(manipulator)),
      target_(target),
      dead_bias_(dead_bias) {
  OASIS_CHECK_MSG(dead_bias_ < 0.0, "dead bias must be negative");
}

GlobalModelMessage InconsistentMaliciousServer::begin_round() {
  // Manipulate + serialize the live malicious model (for the target).
  const GlobalModelMessage live = MaliciousServer::begin_round();

  // Deaden a copy for everyone else: push the malicious layer's biases so
  // far negative that its ReLU can never fire, leaving those clients'
  // malicious-layer gradients identically zero.
  auto state = nn::snapshot_state(*model_);
  {
    // Find the first Dense the same way the attacks do and overwrite its
    // bias inside the snapshot. Parameters precede buffers in the snapshot,
    // in model order: locate the bias by matching the Dense's tensor.
    for (index_t i = 0; i < model_->size(); ++i) {
      if (auto* dense = dynamic_cast<nn::Dense*>(&model_->at(i))) {
        // Position of this Dense's bias within parameters().
        const auto params = model_->parameters();
        for (std::size_t p = 0; p < params.size(); ++p) {
          if (params[p] == &dense->bias()) {
            state[p].fill(dead_bias_);
            break;
          }
        }
        break;
      }
    }
  }
  dead_dispatch_.round = live.round;
  dead_dispatch_.model_state = tensor::serialize_tensors(state);
  return live;
}

GlobalModelMessage InconsistentMaliciousServer::dispatch_to(
    std::uint64_t client_id) {
  return client_id == target_ ? MaliciousServer::dispatch_to(client_id)
                              : dead_dispatch_;
}

}  // namespace oasis::fl
