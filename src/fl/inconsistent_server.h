// Model-inconsistency attack server (Pasquini et al., CCS 2022).
//
// Under secure aggregation the server only sees Σ_j G_j, which mixes the
// victim's gradients with everyone else's. A dishonest server eludes this
// WITHOUT breaking the aggregation protocol: it sends the live malicious
// model only to the target and a "deadened" variant (malicious-layer biases
// at −∞ for ReLU, so the layer never fires) to every other cohort member.
// The non-targets' malicious-layer gradients are then exactly zero, and the
// aggregate's malicious-layer rows equal the victim's alone — gradient
// inversion proceeds as if there were no secure aggregation at all.
#pragma once

#include "fl/server.h"

namespace oasis::fl {

class InconsistentMaliciousServer : public MaliciousServer {
 public:
  /// `target` is the victim's client id; everyone else receives the
  /// deadened model. `dead_bias` must be negative enough that no input can
  /// activate the malicious layer (−1e9 dwarfs any pixel measurement).
  InconsistentMaliciousServer(std::unique_ptr<nn::Sequential> global_model,
                              real learning_rate,
                              ModelManipulator manipulator,
                              std::uint64_t target, real dead_bias = -1e9);

  GlobalModelMessage begin_round() override;
  GlobalModelMessage dispatch_to(std::uint64_t client_id) override;

  [[nodiscard]] std::uint64_t target() const { return target_; }

 private:
  std::uint64_t target_;
  real dead_bias_;
  GlobalModelMessage dead_dispatch_;  // rebuilt each round
};

}  // namespace oasis::fl
