// Wire messages of the FL protocol.
//
// The simulator runs in one process but all server↔client traffic passes
// through these serialized payloads, so the byte-level protocol is exercised
// end-to-end (and a malicious server sees exactly what a real one would: the
// serialized batch-summed gradients).
#pragma once

#include <cstdint>

#include "tensor/serialize.h"

namespace oasis::fl {

/// Server → client: the (possibly maliciously modified) global model.
struct GlobalModelMessage {
  std::uint64_t round = 0;
  tensor::ByteBuffer model_state;  // serialize_state() of the global model
};

/// Client → server: batch-summed gradients for every model parameter, in
/// model.parameters() order.
struct ClientUpdateMessage {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  /// Number of examples the gradients were computed over (FedAvg weight).
  std::uint64_t num_examples = 0;
  tensor::ByteBuffer gradients;  // serialize_tensors() of parameter grads
};

}  // namespace oasis::fl
