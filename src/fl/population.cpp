#include "fl/population.h"

#include "common/error.h"

namespace oasis::fl {

namespace {

// Stream salts for the per-client derivations. Distinct constants keep the
// data stream and the (dead-on-arrival, see below) constructor rng stream
// decoupled from each other and from client_round_stream's round streams.
constexpr std::uint64_t kDataSalt = 0xDA7A;
constexpr std::uint64_t kCtorSalt = 0xC11E;

common::Rng population_stream(std::uint64_t seed, std::uint64_t salt,
                              std::uint64_t client_id) {
  // Fresh root per call: split() consumes parent state, and rebuilding the
  // parent from the seed is what makes the derivation a pure function of
  // (seed, salt, client_id) — materialization order cannot matter.
  common::Rng root(seed);
  common::Rng per_salt = root.split(salt);
  return per_salt.split(client_id);
}

}  // namespace

VirtualPopulation::VirtualPopulation(VirtualPopulationConfig config)
    : config_(std::move(config)) {
  if (config_.num_clients == 0) {
    throw ConfigError("virtual population needs at least one client");
  }
  if (config_.factory == nullptr) {
    throw ConfigError("virtual population needs a model factory");
  }
  if (config_.num_classes == 0) {
    throw ConfigError("virtual population needs at least one class");
  }
  if (config_.batch_size < 1 ||
      config_.batch_size > config_.examples_per_client) {
    throw ConfigError("virtual population batch_size " +
                      std::to_string(config_.batch_size) + " outside [1, " +
                      std::to_string(config_.examples_per_client) +
                      "] (examples_per_client)");
  }
  if (config_.preprocessor == nullptr) {
    config_.preprocessor = std::make_shared<IdentityPreprocessor>();
  }
  // One synth config shared by every client: the class palette is a function
  // of (synth seed, label), so all clients agree on what each class looks
  // like; only the per-example noise draws differ, through per-client
  // streams.
  synth_.num_classes = config_.num_classes;
  synth_.height = config_.height;
  synth_.width = config_.width;
  synth_.seed = config_.seed;
}

std::unique_ptr<Client> VirtualPopulation::make_client(std::uint64_t id) const {
  OASIS_CHECK_MSG(id < config_.num_clients,
                  "virtual client id " << id << " outside population of "
                                       << config_.num_clients);
  common::Rng data_rng = population_stream(config_.seed, kDataSalt, id);
  data::InMemoryDataset local(
      config_.num_classes,
      tensor::Shape{3, config_.height, config_.width});
  for (index_t k = 0; k < config_.examples_per_client; ++k) {
    const index_t label = (id + k) % config_.num_classes;
    local.push_back(data::generate_example(synth_, label, data_rng));
  }
  // The constructor rng is dead state in round-keyed mode (handle_round
  // re-derives before the first draw), but hand each client its own stream
  // anyway so nothing aliases if a caller ever opts out of round keying.
  auto client = std::make_unique<Client>(
      id, std::move(local), config_.factory, config_.batch_size,
      config_.preprocessor, population_stream(config_.seed, kCtorSalt, id),
      config_.sampling, config_.loss_kind);
  client->set_round_keyed_rng(config_.seed);
  if (config_.auditor) client->set_model_auditor(config_.auditor);
  return client;
}

std::vector<std::unique_ptr<Client>> VirtualPopulation::materialize() const {
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(config_.num_clients);
  for (index_t id = 0; id < config_.num_clients; ++id) {
    clients.push_back(make_client(id));
  }
  return clients;
}

}  // namespace oasis::fl
