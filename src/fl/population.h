// Lazy virtual client populations for million-scale federations.
//
// A VirtualPopulation is a DESCRIPTION of N federated clients, not N live
// objects: make_client(id) materializes client `id` on demand as a pure
// function of (population config, id). Every stochastic ingredient — the
// client's local synthetic dataset, its model replica, its per-round batch
// sampling — derives from fresh split streams keyed on the population seed
// and the client id (the fl::FaultPlan idiom), so materializing a client
// twice, in any order, on any thread, yields byte-identical behaviour.
//
// This is what lets the sharded round engine (fl/shard.h) run a round over
// 10^6 clients in O(shard) memory: clients exist only while their shard is
// in flight. materialize() builds the whole population as regular
// fl::Simulation clients — the differential shard tests run both engines
// over the SAME population description and compare bytes.
//
// Purity requirements on the config:
//   * `factory` must be pure (no captured mutable state such as a shared
//     init RNG) — it is invoked from pool workers, possibly concurrently.
//   * `preprocessor` is shared across all clients and must be stateless
//     (the BatchPreprocessor contract already requires const process()).
// Clients are created in ROUND-KEYED rng mode (Client::set_round_keyed_rng)
// so they carry no cross-round state.
#pragma once

#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "fl/client.h"

namespace oasis::fl {

/// Describes a population of `num_clients` virtual clients. All per-client
/// randomness derives from `seed`; two configs differing only in
/// num_clients agree on every client id both contain.
struct VirtualPopulationConfig {
  index_t num_clients = 0;
  std::uint64_t seed = 7;

  // --- Local dataset shape (per-client synthetic data) ---
  index_t num_classes = 10;
  index_t height = 16;
  index_t width = 16;
  /// Local examples per client; labels cycle over (id + k) % num_classes so
  /// the population is non-IID in a deterministic, id-derived way.
  index_t examples_per_client = 8;
  index_t batch_size = 4;

  // --- Training configuration shared by every client ---
  ModelFactory factory;          // must be PURE — see file comment
  PreprocessorPtr preprocessor;  // nullptr → IdentityPreprocessor
  LossKind loss_kind = LossKind::kSoftmaxCrossEntropy;
  BatchSampling sampling = BatchSampling::kUniform;
  /// Model-audit gate installed on every materialized client (see
  /// Client::set_model_auditor). Must be pure/stateless for the same reason
  /// as `factory` — it runs on pool workers, possibly concurrently. Empty =
  /// no audit.
  ModelAuditor auditor;
};

class VirtualPopulation {
 public:
  /// Validates the config (ConfigError on num_clients == 0, factory == null,
  /// batch_size outside [1, examples_per_client], num_classes == 0).
  explicit VirtualPopulation(VirtualPopulationConfig config);

  [[nodiscard]] index_t size() const { return config_.num_clients; }
  [[nodiscard]] const VirtualPopulationConfig& config() const {
    return config_;
  }

  /// Materializes virtual client `id` — a pure function of (config, id);
  /// safe to call concurrently from pool workers. OASIS_CHECK on
  /// id >= num_clients.
  [[nodiscard]] std::unique_ptr<Client> make_client(std::uint64_t id) const;

  /// Materializes ALL clients in id order — the differential tests feed this
  /// to fl::Simulation as the byte-exact reference for the sharded engine.
  [[nodiscard]] std::vector<std::unique_ptr<Client>> materialize() const;

 private:
  VirtualPopulationConfig config_;
  data::SynthConfig synth_;  // derived from config_ once
};

}  // namespace oasis::fl
