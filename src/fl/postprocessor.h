// Client-side update postprocessing hook.
//
// Where OASIS preprocesses the BATCH, the classical defenses the paper's
// Related Work discusses postprocess the GRADIENTS before upload (DP noise,
// pruning/compression). This hook lets them plug into the same client so the
// baseline comparison runs over the identical protocol path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace oasis::fl {

class UpdatePostprocessor {
 public:
  UpdatePostprocessor() = default;
  UpdatePostprocessor(const UpdatePostprocessor&) = delete;
  UpdatePostprocessor& operator=(const UpdatePostprocessor&) = delete;
  virtual ~UpdatePostprocessor() = default;

  /// Maps the computed parameter gradients to the gradients actually
  /// uploaded. Called once per round with the client's RNG.
  [[nodiscard]] virtual std::vector<tensor::Tensor> process(
      std::vector<tensor::Tensor> gradients, common::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Default: upload the exact gradients.
class IdentityPostprocessor : public UpdatePostprocessor {
 public:
  std::vector<tensor::Tensor> process(std::vector<tensor::Tensor> gradients,
                                      common::Rng& /*rng*/) const override {
    return gradients;
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

using PostprocessorPtr = std::shared_ptr<const UpdatePostprocessor>;

}  // namespace oasis::fl
