// Client-side batch preprocessing hook.
//
// OASIS plugs in here: the defense is purely local preprocessing of the
// training batch before gradients are computed (paper Eq. 4), requiring no
// protocol change and no server cooperation.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"

namespace oasis::fl {

class BatchPreprocessor {
 public:
  BatchPreprocessor() = default;
  BatchPreprocessor(const BatchPreprocessor&) = delete;
  BatchPreprocessor& operator=(const BatchPreprocessor&) = delete;
  virtual ~BatchPreprocessor() = default;

  /// Maps the sampled batch D to the batch actually used for the gradient
  /// computation (D' under OASIS).
  [[nodiscard]] virtual data::Batch process(const data::Batch& batch,
                                            common::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Default: clients train on the raw batch.
class IdentityPreprocessor : public BatchPreprocessor {
 public:
  data::Batch process(const data::Batch& batch,
                      common::Rng& /*rng*/) const override {
    return batch;
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

using PreprocessorPtr = std::shared_ptr<const BatchPreprocessor>;

}  // namespace oasis::fl
