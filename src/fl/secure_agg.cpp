#include "fl/secure_agg.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace oasis::fl {
namespace {

/// Seed shared by the pair {a, b} for one round (symmetric in a, b).
std::uint64_t pair_seed(std::uint64_t a, std::uint64_t b,
                        std::uint64_t nonce) {
  const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
  // SplitMix-style mixing of (lo, hi, nonce).
  std::uint64_t x = lo * 0x9E3779B97F4A7C15ULL ^ (hi + 0x7F4A7C15U) ^
                    (nonce * 0xBF58476D1CE4E5B9ULL + 0x94D049BB);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

SecureAggregationSession::SecureAggregationSession(
    std::vector<std::uint64_t> cohort, std::uint64_t round_nonce)
    : cohort_(std::move(cohort)), round_nonce_(round_nonce) {
  OASIS_CHECK_MSG(cohort_.size() >= 2,
                  "secure aggregation needs a cohort of >= 2");
  auto sorted = cohort_;
  std::sort(sorted.begin(), sorted.end());
  OASIS_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  "duplicate client id in cohort");
}

std::vector<tensor::Tensor> SecureAggregationSession::mask_for(
    std::uint64_t client_id, const std::vector<tensor::Shape>& shapes) const {
  OASIS_CHECK_MSG(std::find(cohort_.begin(), cohort_.end(), client_id) !=
                      cohort_.end(),
                  "client " << client_id << " not in cohort");
  std::vector<tensor::Tensor> mask;
  mask.reserve(shapes.size());
  for (const auto& shape : shapes) mask.emplace_back(shape);

  for (const auto peer : cohort_) {
    if (peer == client_id) continue;
    // The lower id adds, the higher subtracts; both draw the identical
    // stream, so the pair's contributions cancel exactly in the sum.
    const real sign = client_id < peer ? 1.0 : -1.0;
    common::Rng prg(pair_seed(client_id, peer, round_nonce_));
    for (auto& m : mask) {
      for (auto& v : m.data()) v += sign * prg.normal(0.0, 1.0);
    }
  }
  return mask;
}

void SecureAggregationSession::mask_update(ClientUpdateMessage& update) const {
  auto tensors = tensor::deserialize_tensors(update.gradients);
  std::vector<tensor::Shape> shapes;
  shapes.reserve(tensors.size());
  for (const auto& t : tensors) shapes.push_back(t.shape());
  const auto mask = mask_for(update.client_id, shapes);
  for (std::size_t i = 0; i < tensors.size(); ++i) tensors[i] += mask[i];
  update.gradients = tensor::serialize_tensors(tensors);
}

}  // namespace oasis::fl
