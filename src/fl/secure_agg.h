// Pairwise-masking secure aggregation (Bonawitz et al. 2017, simplified to
// the honest-connectivity case: no dropout recovery shares).
//
// Every unordered pair {i, j} of cohort members derives a shared PRG seed;
// the lower id adds the pairwise mask to its update, the higher id subtracts
// it. An individual masked update is statistically masked white noise, but
// the SUM over the cohort telescopes to the sum of true updates — the server
// learns only the aggregate.
//
// This exists to reproduce the paper's threat-model context: secure
// aggregation looks like it blocks per-client gradient inversion, yet a
// dishonest server circumvents it with INCONSISTENT models (Pasquini et al.
// 2022) — see fl/inconsistent_server.h and the ablation_secagg bench. OASIS
// protects the victim even there, because its guarantee lives in the
// gradients themselves rather than in who can read them.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/message.h"
#include "tensor/tensor.h"

namespace oasis::fl {

/// One round's masking session for a fixed cohort.
class SecureAggregationSession {
 public:
  /// `cohort` lists the round's participating client ids (order
  /// irrelevant); `round_nonce` domain-separates rounds so masks never
  /// repeat.
  SecureAggregationSession(std::vector<std::uint64_t> cohort,
                           std::uint64_t round_nonce);

  /// The net pairwise mask client `client_id` applies to its update tensors
  /// (same shapes as `shapes`). Deterministic in (cohort, nonce, id).
  [[nodiscard]] std::vector<tensor::Tensor> mask_for(
      std::uint64_t client_id,
      const std::vector<tensor::Shape>& shapes) const;

  /// Convenience: applies mask_for to an update's gradient tensors in
  /// place (deserialize → add mask → reserialize).
  void mask_update(ClientUpdateMessage& update) const;

  [[nodiscard]] const std::vector<std::uint64_t>& cohort() const {
    return cohort_;
  }

 private:
  std::vector<std::uint64_t> cohort_;
  std::uint64_t round_nonce_;
};

}  // namespace oasis::fl
