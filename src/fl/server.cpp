#include "fl/server.h"

#include <cmath>
#include <unordered_set>

#include "fl/aggregation.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "tensor/serialize.h"

namespace oasis::fl {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kAccepted: return "accepted";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kWrongRound: return "wrong_round";
    case RejectReason::kDuplicate: return "duplicate";
    case RejectReason::kZeroExamples: return "zero_examples";
    case RejectReason::kShapeMismatch: return "shape_mismatch";
    case RejectReason::kNonFinite: return "non_finite";
    case RejectReason::kNormTooLarge: return "norm_too_large";
    case RejectReason::kChecksumMismatch: return "checksum_mismatch";
  }
  return "?";
}

index_t quorum_needed(real fraction, index_t m) {
  OASIS_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "quorum_fraction " << fraction << " outside [0, 1]");
  if (fraction <= 0.0) return 0;
  auto needed =
      static_cast<index_t>(std::ceil(fraction * static_cast<real>(m)));
  return needed < 1 ? 1 : needed;
}

Server::Server(std::unique_ptr<nn::Sequential> global_model,
               real learning_rate)
    : model_(std::move(global_model)), learning_rate_(learning_rate) {
  OASIS_CHECK(model_ != nullptr);
  OASIS_CHECK(learning_rate_ > 0.0);
}

GlobalModelMessage Server::begin_round() {
  GlobalModelMessage msg;
  msg.round = round_;
  msg.model_state = nn::serialize_state(*model_);
  current_dispatch_ = msg;
  return msg;
}

GlobalModelMessage Server::dispatch_to(std::uint64_t /*client_id*/) {
  return current_dispatch_;
}

UpdateScreen Server::begin_screen() const {
  UpdateScreen screen;
  for (auto* p : model_->parameters()) {
    screen.expected_shapes.push_back(p->value.shape());
  }
  return screen;
}

RejectReason Server::screen_update(const ClientUpdateMessage& update,
                                   UpdateScreen& screen) {
  static obs::Counter& accepted_c = obs::counter("fl.validate.accepted");
  static obs::Counter& rejected_c = obs::counter("fl.validate.rejected");
  static obs::Counter& malformed_c =
      obs::counter("fl.validate.reject.malformed");
  static obs::Counter& wrong_round_c =
      obs::counter("fl.validate.reject.wrong_round");
  static obs::Counter& duplicate_c =
      obs::counter("fl.validate.reject.duplicate");
  static obs::Counter& zero_examples_c =
      obs::counter("fl.validate.reject.zero_examples");
  static obs::Counter& shape_c = obs::counter("fl.validate.reject.shape");
  static obs::Counter& non_finite_c =
      obs::counter("fl.validate.reject.non_finite");
  static obs::Counter& norm_c = obs::counter("fl.validate.reject.norm");
  static obs::Counter& checksum_c =
      obs::counter("fl.validate.reject.checksum");

  RejectReason reason = RejectReason::kAccepted;
  if (validation_.check_round_id && update.round != round_) {
    reason = RejectReason::kWrongRound;
  } else if (validation_.check_duplicates &&
             !screen.seen_ids.insert(update.client_id).second) {
    reason = RejectReason::kDuplicate;
  } else if (update.num_examples == 0) {
    reason = RejectReason::kZeroExamples;
  } else {
    // Structural walk + numeric screens without materialising tensors; a
    // hostile payload must fail HERE, inside the catch boundary, never in
    // the aggregation hot loop.
    try {
      const tensor::TensorScan scan = tensor::scan_tensors(update.gradients);
      if (scan.shapes != screen.expected_shapes) {
        reason = RejectReason::kShapeMismatch;
      } else if (validation_.check_finite && !scan.all_finite) {
        reason = RejectReason::kNonFinite;
      } else if (validation_.max_grad_norm > 0.0 &&
                 std::sqrt(scan.sum_squares) > validation_.max_grad_norm) {
        reason = RejectReason::kNormTooLarge;
      }
    } catch (const ChecksumError&) {
      // CRC trailer mismatch: the bytes were damaged in flight. Checked
      // first (inside scan_tensors) so a bit flip that happens to keep the
      // structure parseable is still rejected.
      reason = RejectReason::kChecksumMismatch;
    } catch (const SerializationError&) {
      reason = RejectReason::kMalformed;
    }
  }
  if (reason == RejectReason::kAccepted) {
    accepted_c.add(1);
  } else {
    rejected_c.add(1);
    switch (reason) {
      case RejectReason::kMalformed: malformed_c.add(1); break;
      case RejectReason::kWrongRound: wrong_round_c.add(1); break;
      case RejectReason::kDuplicate: duplicate_c.add(1); break;
      case RejectReason::kZeroExamples: zero_examples_c.add(1); break;
      case RejectReason::kShapeMismatch: shape_c.add(1); break;
      case RejectReason::kNonFinite: non_finite_c.add(1); break;
      case RejectReason::kNormTooLarge: norm_c.add(1); break;
      case RejectReason::kChecksumMismatch: checksum_c.add(1); break;
      case RejectReason::kAccepted: break;
    }
  }
  return reason;
}

RoundOutcome Server::validate_updates(
    std::span<const ClientUpdateMessage> updates) {
  UpdateScreen screen = begin_screen();
  RoundOutcome outcome;
  outcome.reasons.reserve(updates.size());
  for (const auto& update : updates) {
    const RejectReason reason = screen_update(update, screen);
    outcome.reasons.push_back(reason);
    if (reason == RejectReason::kAccepted) {
      ++outcome.accepted;
    } else {
      ++outcome.rejected;
    }
  }
  return outcome;
}

void Server::commit_round(const std::vector<tensor::Tensor>& average) {
  auto params = model_->parameters();
  OASIS_CHECK_MSG(average.size() == params.size(),
                  "aggregated " << average.size() << " tensors for "
                                << params.size() << " parameters");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value.add_scaled_(average[i], -learning_rate_);
  }
  ++round_;
}

void Server::commit_skipped_round() {
  // Nothing to aggregate; skip the SGD step instead of dividing by a zero
  // example count, but still advance the protocol round.
  static obs::Counter& skipped = obs::counter("fl.rounds_skipped");
  skipped.add(1);
  ++round_;
}

RoundOutcome Server::finish_round(std::span<const ClientUpdateMessage> updates,
                                  index_t min_valid) {
  RoundOutcome outcome = validate_updates(updates);
  if (outcome.accepted < min_valid) {
    // Thrown before the model is touched: abort is side-effect free here and
    // the round engine's rollback only has to undo subclass bookkeeping.
    throw QuorumError("round " + std::to_string(round_) + ": " +
                      std::to_string(outcome.accepted) + " valid updates < " +
                      std::to_string(min_valid) + " required for quorum");
  }
  if (outcome.accepted == 0) {
    commit_skipped_round();
    return outcome;
  }
  std::vector<tensor::Tensor> average;
  if (aggregator_.kind == AggregatorKind::kFedAvg) {
    // Common case first: everything accepted aggregates straight off the
    // input span (no copies on the honest path).
    if (outcome.rejected == 0) {
      average = fedavg(updates);
    } else {
      std::vector<ClientUpdateMessage> kept;
      kept.reserve(outcome.accepted);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (outcome.reasons[i] == RejectReason::kAccepted) {
          kept.push_back(updates[i]);
        }
      }
      average = fedavg(kept);
    }
  } else {
    average = aggregate_robust(updates, outcome);
  }
  commit_round(average);
  outcome.applied = true;
  return outcome;
}

std::vector<tensor::Tensor> Server::aggregate_robust(
    std::span<const ClientUpdateMessage> updates,
    const RoundOutcome& outcome) {
  if (aggregator_.kind == AggregatorKind::kNormBounded) {
    // Streaming-compatible: clip each accepted update to the bound, fold
    // through the same accumulator FedAvg uses (same fold order, same
    // weights — the bound is the only difference).
    FedAvgAccumulator acc;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (outcome.reasons[i] != RejectReason::kAccepted) continue;
      auto gradients = tensor::deserialize_tensors(updates[i].gradients);
      clip_gradients_to_norm(gradients, aggregator_.norm_bound);
      acc.add(std::move(gradients),
              static_cast<real>(updates[i].num_examples));
    }
    return acc.average();
  }
  // Order-statistic aggregators: buffer the accepted cohort (the documented
  // O(cohort · model) cost of the f < n/2 breakdown point).
  std::vector<std::vector<tensor::Tensor>> buffered;
  buffered.reserve(outcome.accepted);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (outcome.reasons[i] != RejectReason::kAccepted) continue;
    buffered.push_back(tensor::deserialize_tensors(updates[i].gradients));
  }
  return aggregator_.kind == AggregatorKind::kCoordinateMedian
             ? coordinate_median(buffered)
             : trimmed_mean(buffered, aggregator_.trim_fraction);
}

void Server::set_aggregator(const AggregatorConfig& config) {
  if (config.kind == AggregatorKind::kTrimmedMean &&
      (!(config.trim_fraction >= 0.0) || config.trim_fraction >= 0.5)) {
    throw ConfigError("trim_fraction must be in [0, 0.5)");
  }
  if (config.kind == AggregatorKind::kNormBounded &&
      !(config.norm_bound > 0.0)) {
    throw ConfigError("norm_bounded aggregation needs norm_bound > 0");
  }
  aggregator_ = config;
}

MaliciousServer::MaliciousServer(std::unique_ptr<nn::Sequential> global_model,
                                 real learning_rate,
                                 ModelManipulator manipulator)
    : Server(std::move(global_model), learning_rate),
      manipulator_(std::move(manipulator)) {
  OASIS_CHECK(manipulator_ != nullptr);
}

GlobalModelMessage MaliciousServer::begin_round() {
  // Manipulate the live global model (the dishonest server controls it
  // outright), then dispatch the standard message — on the wire the round
  // looks like any other.
  manipulator_(*model_);
  return Server::begin_round();
}

RoundOutcome MaliciousServer::finish_round(
    std::span<const ClientUpdateMessage> updates, index_t min_valid) {
  captured_.insert(captured_.end(), updates.begin(), updates.end());
  return Server::finish_round(updates, min_valid);
}

}  // namespace oasis::fl
