#include "fl/server.h"

#include "fl/aggregation.h"
#include "nn/model_io.h"

namespace oasis::fl {

Server::Server(std::unique_ptr<nn::Sequential> global_model,
               real learning_rate)
    : model_(std::move(global_model)), learning_rate_(learning_rate) {
  OASIS_CHECK(model_ != nullptr);
  OASIS_CHECK(learning_rate_ > 0.0);
}

GlobalModelMessage Server::begin_round() {
  GlobalModelMessage msg;
  msg.round = round_;
  msg.model_state = nn::serialize_state(*model_);
  current_dispatch_ = msg;
  return msg;
}

GlobalModelMessage Server::dispatch_to(std::uint64_t /*client_id*/) {
  return current_dispatch_;
}

void Server::finish_round(std::span<const ClientUpdateMessage> updates) {
  const auto average = fedavg(updates);
  auto params = model_->parameters();
  OASIS_CHECK_MSG(average.size() == params.size(),
                  "aggregated " << average.size() << " tensors for "
                                << params.size() << " parameters");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value.add_scaled_(average[i], -learning_rate_);
  }
  ++round_;
}

MaliciousServer::MaliciousServer(std::unique_ptr<nn::Sequential> global_model,
                                 real learning_rate,
                                 ModelManipulator manipulator)
    : Server(std::move(global_model), learning_rate),
      manipulator_(std::move(manipulator)) {
  OASIS_CHECK(manipulator_ != nullptr);
}

GlobalModelMessage MaliciousServer::begin_round() {
  // Manipulate the live global model (the dishonest server controls it
  // outright), then dispatch the standard message — on the wire the round
  // looks like any other.
  manipulator_(*model_);
  return Server::begin_round();
}

void MaliciousServer::finish_round(
    std::span<const ClientUpdateMessage> updates) {
  captured_.insert(captured_.end(), updates.begin(), updates.end());
  Server::finish_round(updates);
}

}  // namespace oasis::fl
