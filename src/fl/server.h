// FL servers: honest FedAvg coordinator and the dishonest variant the
// paper's threat model assumes.
//
// finish_round() runs every incoming ClientUpdateMessage through a
// validation pipeline before any of it can touch the global model:
// structural deserialization checks (SerializationError caught at the
// boundary), protocol checks (round id, duplicate client ids, zero example
// counts), and numeric plausibility screens (NaN/Inf, gradient-norm band —
// the server-side detectability angle of Carletti et al.). Rejected updates
// are tallied per reason through oasis::obs counters and excluded from
// FedAvg; the model advances over the valid subset only.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "fl/aggregation.h"
#include "fl/message.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/shape.h"

namespace oasis::fl {

/// Why an update was excluded from aggregation (kAccepted = it was not).
enum class RejectReason : std::uint8_t {
  kAccepted = 0,
  kMalformed,     // gradients failed to deserialize (structural damage)
  kWrongRound,    // stale or replayed round id
  kDuplicate,     // a second update from the same client this round
  kZeroExamples,  // FedAvg weight would be zero
  kShapeMismatch, // tensor count/shapes differ from the global model's
  kNonFinite,     // NaN/Inf anywhere in the gradients
  kNormTooLarge,  // gradient L2 norm outside the configured band
  kChecksumMismatch,  // payload CRC32C trailer does not match its bytes
};

const char* to_string(RejectReason reason);

/// Valid-update quorum for a cohort of `m` clients: ceil(fraction·m), at
/// least 1 when fraction > 0; 0 disables the quorum. Shared by the
/// in-process round engine (fl::Simulation) and the socket serving layer
/// (net::FlServer) so both admission paths abort on the same threshold.
index_t quorum_needed(real fraction, index_t m);

/// Which screens finish_round() applies. Defaults keep every structural and
/// protocol check on; the norm screen is opt-in because legitimate workloads
/// (e.g. secure-aggregation masked updates, which look like white noise)
/// have no universal norm band.
struct ValidationConfig {
  bool check_round_id = true;
  bool check_duplicates = true;
  bool check_finite = true;
  real max_grad_norm = 0.0;  // 0 disables the norm screen
};

/// What finish_round() did with one round's updates.
struct RoundOutcome {
  index_t accepted = 0;
  index_t rejected = 0;
  bool applied = false;                // global model was advanced
  std::vector<RejectReason> reasons;   // one per input update, input order
};

/// Per-round state the streaming validation path threads between
/// screen_update() calls: the expected parameter shapes (computed once) and
/// the client ids accepted so far (duplicate detection). finish_round()
/// keeps one per round; the sharded engine keeps one per SHARD, which is
/// equivalent because cohort member ids are distinct across shards by
/// construction — the only reachable duplicates are same-shard fault
/// deliveries.
struct UpdateScreen {
  std::vector<tensor::Shape> expected_shapes;
  std::unordered_set<std::uint64_t> seen_ids;
};

/// Honest central server: owns the global model, dispatches it each round,
/// aggregates valid client gradients with FedAvg and applies them with SGD
/// (w ← w − η·Ḡ, paper Eq. 1).
class Server {
 public:
  Server(std::unique_ptr<nn::Sequential> global_model, real learning_rate);
  virtual ~Server() = default;

  /// Begins round `t`: returns the message to dispatch to selected clients.
  /// Virtual so a dishonest server can manipulate the dispatched model.
  virtual GlobalModelMessage begin_round();

  /// Per-client dispatch. The honest protocol sends every client the same
  /// message (the default forwards the one begin_round() built); a dishonest
  /// server may override this to send INCONSISTENT models — the primitive
  /// behind the secure-aggregation circumvention of Pasquini et al. (2022).
  virtual GlobalModelMessage dispatch_to(std::uint64_t client_id);

  /// Validates the round's client updates, aggregates the accepted subset
  /// with FedAvg, and advances the global model. Throws QuorumError — before
  /// touching the model — when fewer than `min_valid` updates survive
  /// validation; with zero valid updates (and min_valid == 0) the SGD step
  /// is skipped rather than dividing by a zero example count.
  virtual RoundOutcome finish_round(std::span<const ClientUpdateMessage> updates,
                                    index_t min_valid);

  /// Legacy entry point: no quorum requirement.
  RoundOutcome finish_round(std::span<const ClientUpdateMessage> updates) {
    return finish_round(updates, 0);
  }

  // --- Streaming round surface (the sharded engine's path) -----------------
  //
  // finish_round() is a thin composition of these three calls; the sharded
  // engine invokes them directly so a round over 1M virtual clients never
  // materializes an update span. Screening semantics and obs tallies are
  // IDENTICAL between the two paths — that is what the differential shard
  // tests prove byte-for-byte.

  /// Fresh per-round screening context (caches the model's parameter
  /// shapes). Create once per round, pass to every screen_update() call.
  [[nodiscard]] UpdateScreen begin_screen() const;

  /// Runs one update through the full validation pipeline (round id,
  /// duplicate, example count, structural scan, finiteness, norm band) and
  /// tallies the verdict through the fl.validate.* obs counters. Accepted
  /// updates register their client id in `screen` for duplicate detection.
  RejectReason screen_update(const ClientUpdateMessage& update,
                             UpdateScreen& screen);

  /// Applies an aggregated average (SGD step w ← w − η·Ḡ) and advances the
  /// protocol round. The streaming engine calls this after its reducer
  /// finishes; finish_round() calls it with the batch fedavg() result.
  void commit_round(const std::vector<tensor::Tensor>& average);

  /// Advances the protocol round without touching the model (zero valid
  /// updates). Tallies fl.rounds_skipped.
  void commit_skipped_round();

  void set_validation(const ValidationConfig& config) { validation_ = config; }
  [[nodiscard]] const ValidationConfig& validation() const {
    return validation_;
  }

  /// Selects the aggregation rule finish_round applies to accepted updates.
  /// kFedAvg/kNormBounded stream; kCoordinateMedian/kTrimmedMean buffer the
  /// accepted cohort (O(cohort · model) memory — see aggregation.h). Throws
  /// ConfigError on an invalid trim_fraction or non-positive norm bound.
  void set_aggregator(const AggregatorConfig& config);
  [[nodiscard]] const AggregatorConfig& aggregator() const {
    return aggregator_;
  }

  [[nodiscard]] std::uint64_t round() const { return round_; }
  nn::Sequential& global_model() { return *model_; }

  /// Sets the protocol round id to an absolute value. Checkpoint restore
  /// only — the round id normally advances exclusively via finish_round.
  void restore_round(std::uint64_t round) { round_ = round; }

 protected:
  /// The validation pipeline: per-update accept/reject with obs tallies
  /// (fl.validate.accepted / fl.validate.reject.<reason>).
  [[nodiscard]] RoundOutcome validate_updates(
      std::span<const ClientUpdateMessage> updates);

  /// Aggregates the accepted subset under a non-FedAvg aggregator (see
  /// set_aggregator). Requires outcome.accepted > 0.
  [[nodiscard]] std::vector<tensor::Tensor> aggregate_robust(
      std::span<const ClientUpdateMessage> updates,
      const RoundOutcome& outcome);

  std::unique_ptr<nn::Sequential> model_;
  real learning_rate_;
  ValidationConfig validation_;
  AggregatorConfig aggregator_;
  std::uint64_t round_ = 0;
  GlobalModelMessage current_dispatch_;  // built by begin_round()
};

/// Hook through which an attack manipulates the dispatched model — the
/// "malicious modification of global model parameters" of the threat model.
using ModelManipulator = std::function<void(nn::Sequential&)>;

/// Dishonest server: applies a manipulation to (a copy of the state of) the
/// global model before dispatch and records every client update it receives
/// so the attack can invert the gradients offline.
///
/// It still performs normal FedAvg so training proceeds and the attack stays
/// covert — matching the paper's "modification should be minimal to avoid
/// detection" requirement.
class MaliciousServer : public Server {
 public:
  MaliciousServer(std::unique_ptr<nn::Sequential> global_model,
                  real learning_rate, ModelManipulator manipulator);

  GlobalModelMessage begin_round() override;
  using Server::finish_round;
  RoundOutcome finish_round(std::span<const ClientUpdateMessage> updates,
                            index_t min_valid) override;

  /// All updates captured so far (most recent round last).
  [[nodiscard]] const std::vector<ClientUpdateMessage>& captured() const {
    return captured_;
  }
  void clear_captured() { captured_.clear(); }

 private:
  ModelManipulator manipulator_;
  std::vector<ClientUpdateMessage> captured_;
};

}  // namespace oasis::fl
