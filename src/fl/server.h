// FL servers: honest FedAvg coordinator and the dishonest variant the
// paper's threat model assumes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fl/message.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace oasis::fl {

/// Honest central server: owns the global model, dispatches it each round,
/// aggregates client gradients with FedAvg and applies them with SGD
/// (w ← w − η·Ḡ, paper Eq. 1).
class Server {
 public:
  Server(std::unique_ptr<nn::Sequential> global_model, real learning_rate);
  virtual ~Server() = default;

  /// Begins round `t`: returns the message to dispatch to selected clients.
  /// Virtual so a dishonest server can manipulate the dispatched model.
  virtual GlobalModelMessage begin_round();

  /// Per-client dispatch. The honest protocol sends every client the same
  /// message (the default forwards the one begin_round() built); a dishonest
  /// server may override this to send INCONSISTENT models — the primitive
  /// behind the secure-aggregation circumvention of Pasquini et al. (2022).
  virtual GlobalModelMessage dispatch_to(std::uint64_t client_id);

  /// Consumes the round's client updates and advances the global model.
  virtual void finish_round(std::span<const ClientUpdateMessage> updates);

  [[nodiscard]] std::uint64_t round() const { return round_; }
  nn::Sequential& global_model() { return *model_; }

 protected:
  std::unique_ptr<nn::Sequential> model_;
  real learning_rate_;
  std::uint64_t round_ = 0;
  GlobalModelMessage current_dispatch_;  // built by begin_round()
};

/// Hook through which an attack manipulates the dispatched model — the
/// "malicious modification of global model parameters" of the threat model.
using ModelManipulator = std::function<void(nn::Sequential&)>;

/// Dishonest server: applies a manipulation to (a copy of the state of) the
/// global model before dispatch and records every client update it receives
/// so the attack can invert the gradients offline.
///
/// It still performs normal FedAvg so training proceeds and the attack stays
/// covert — matching the paper's "modification should be minimal to avoid
/// detection" requirement.
class MaliciousServer : public Server {
 public:
  MaliciousServer(std::unique_ptr<nn::Sequential> global_model,
                  real learning_rate, ModelManipulator manipulator);

  GlobalModelMessage begin_round() override;
  void finish_round(std::span<const ClientUpdateMessage> updates) override;

  /// All updates captured so far (most recent round last).
  [[nodiscard]] const std::vector<ClientUpdateMessage>& captured() const {
    return captured_;
  }
  void clear_captured() { captured_.clear(); }

 private:
  ModelManipulator manipulator_;
  std::vector<ClientUpdateMessage> captured_;
};

}  // namespace oasis::fl
