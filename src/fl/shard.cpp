#include "fl/shard.h"

#include "ckpt/codec.h"
#include "ckpt/container.h"
#include "ckpt/obs_state.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "tensor/serialize.h"

namespace oasis::fl {

const char* to_string(CohortSampler sampler) {
  switch (sampler) {
    case CohortSampler::kFisherYates: return "fisher_yates";
    case CohortSampler::kHashThreshold: return "hash_threshold";
  }
  return "?";
}

namespace {

/// Everyone-joins sentinel for cohort_threshold (cohort == population).
constexpr std::uint64_t kFullCohort = ~std::uint64_t{0};

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer (Steele/Lea/Flood) — full avalanche, so adjacent
  // client ids land uniformly against the threshold.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

void write_rng_state(ckpt::SectionWriter& w, const common::Rng::State& s) {
  for (const auto word : s.words) w.u64(word);
  w.f64(s.spare_normal);
  w.u8(s.has_spare ? 1 : 0);
}

common::Rng::State read_rng_state(ckpt::SectionReader& r) {
  common::Rng::State s;
  for (auto& word : s.words) word = r.u64();
  s.spare_normal = r.f64();
  s.has_spare = r.u8() != 0;
  return s;
}

}  // namespace

std::uint64_t cohort_mix(std::uint64_t seed, std::uint64_t ticket,
                         std::uint64_t client_id) {
  // Two finalizer passes: the first diffuses (seed, ticket) into a round
  // key, the second diffuses the client id against it. Golden-ratio offsets
  // keep ticket 0 / id 0 away from the fixed point mix64(0) == 0.
  const std::uint64_t round_key =
      mix64(seed + 0x9E3779B97F4A7C15ULL * (ticket + 1));
  return mix64(round_key ^ (client_id + 0x9E3779B97F4A7C15ULL));
}

std::uint64_t cohort_threshold(index_t cohort_size, index_t population) {
  if (population == 0) {
    throw ConfigError("cohort_threshold over an empty population");
  }
  if (cohort_size > population) {
    throw ConfigError("cohort " + std::to_string(cohort_size) +
                      " exceeds population " + std::to_string(population));
  }
  if (cohort_size == population) return kFullCohort;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(cohort_size) << 64) / population);
}

bool cohort_member(std::uint64_t seed, std::uint64_t ticket,
                   std::uint64_t client_id, std::uint64_t threshold) {
  return threshold == kFullCohort ||
         cohort_mix(seed, ticket, client_id) < threshold;
}

ShardedSimulation::ShardedSimulation(std::unique_ptr<Server> server,
                                     VirtualPopulation population,
                                     ShardedConfig config)
    : server_(std::move(server)),
      population_(std::move(population)),
      config_(config),
      rng_(config.seed),
      accumulator_(config.weight_by_examples) {
  OASIS_CHECK(server_ != nullptr);
  if (config_.shard_size == 0) {
    throw ConfigError("shard_size must be >= 1");
  }
  if (config_.cohort_size > population_.size()) {
    throw ConfigError("cohort " + std::to_string(config_.cohort_size) +
                      " exceeds population " +
                      std::to_string(population_.size()));
  }
  if (config_.quorum_fraction < 0.0 || config_.quorum_fraction > 1.0) {
    throw ConfigError("quorum_fraction outside [0, 1]");
  }
  if (config_.aggregator.kind == AggregatorKind::kCoordinateMedian ||
      config_.aggregator.kind == AggregatorKind::kTrimmedMean) {
    throw ConfigError(
        std::string(to_string(config_.aggregator.kind)) +
        " buffers the whole cohort, which contradicts the sharded engine's "
        "O(shard) memory contract — use fl::Simulation for order-statistic "
        "aggregation, or kNormBounded for a streaming-compatible defense");
  }
  if (config_.aggregator.kind == AggregatorKind::kNormBounded &&
      config_.aggregator.norm_bound <= 0.0) {
    throw ConfigError("norm_bound must be > 0");
  }
}

void ShardedSimulation::begin_round_state() {
  rng_at_round_start_ = rng_.state();
  ticket_ = round_tickets_++;
  const index_t target = config_.cohort_size == 0 ? population_.size()
                                                  : config_.cohort_size;
  if (config_.sampler == CohortSampler::kFisherYates) {
    cohort_ids_ = rng_.sample_without_replacement(population_.size(), target);
    cohort_size_ = target;
  } else {
    threshold_ = cohort_threshold(target, population_.size());
    // Pre-count the actual (binomial) cohort so quorum math and the shard
    // count are fixed before the first shard runs — ~ns per hash, and the
    // scan keeps no per-client state (unless the defense mask needs the
    // cohort list, collected here for free during the scan).
    const bool collect = defense_ && defense_->requires_cohort();
    index_t count = 0;
    for (index_t id = 0; id < population_.size(); ++id) {
      if (cohort_member(config_.seed, ticket_, id, threshold_)) {
        ++count;
        if (collect) defense_cohort_.push_back(id);
      }
    }
    cohort_size_ = count;
    scan_pos_ = 0;
  }
  if (defense_ && defense_->requires_cohort() &&
      config_.sampler == CohortSampler::kFisherYates) {
    defense_cohort_.assign(cohort_ids_.begin(), cohort_ids_.end());
  }
  num_shards_ = (cohort_size_ + config_.shard_size - 1) / config_.shard_size;
  OASIS_CHECK_MSG(num_shards_ < kMaxShardsPerRound,
                  num_shards_ << " shards exceed the generation-numbering "
                                 "ceiling; raise shard_size");
  shard_done_.assign(num_shards_, false);
  accumulator_.reset();
  next_shard_ = 0;
  clients_done_ = 0;
  accepted_ = 0;
  rejected_ = 0;
  mid_round_ = true;
  server_->begin_round();
}

void ShardedSimulation::collect_shard_members(std::vector<std::uint64_t>& out) {
  out.clear();
  if (config_.sampler == CohortSampler::kFisherYates) {
    const index_t lo = next_shard_ * config_.shard_size;
    const index_t hi = lo + config_.shard_size < cohort_ids_.size()
                           ? lo + config_.shard_size
                           : cohort_ids_.size();
    for (index_t i = lo; i < hi; ++i) out.push_back(cohort_ids_[i]);
  } else {
    while (out.size() < config_.shard_size &&
           scan_pos_ < population_.size()) {
      if (cohort_member(config_.seed, ticket_, scan_pos_, threshold_)) {
        out.push_back(scan_pos_);
      }
      ++scan_pos_;
    }
  }
}

void ShardedSimulation::fold_update(const ClientUpdateMessage& update,
                                    UpdateScreen& screen) {
  if (server_->screen_update(update, screen) != RejectReason::kAccepted) {
    ++rejected_;
    return;
  }
  if (config_.aggregator.kind == AggregatorKind::kNormBounded) {
    // Streaming-compatible robustness: clip each accepted update to the
    // norm ball before folding, same accumulator, same fold order.
    auto grads = tensor::deserialize_tensors(update.gradients);
    clip_gradients_to_norm(grads, config_.aggregator.norm_bound);
    accumulator_.add(std::move(grads),
                     config_.weight_by_examples
                         ? static_cast<real>(update.num_examples)
                         : real{1});
  } else {
    accumulator_.add(update);
  }
  ++accepted_;
}

void ShardedSimulation::process_shard() {
  static obs::Counter& trained = obs::counter("fl.clients_trained");
  static obs::Counter& bytes_down = obs::counter("fl.bytes_dispatched");
  static obs::Counter& bytes_up = obs::counter("fl.bytes_uploaded");
  static obs::Counter& dropouts = obs::counter("fl.fault.dropout");
  static obs::Counter& stragglers = obs::counter("fl.fault.straggler");
  static obs::Counter& corrupted = obs::counter("fl.fault.corrupt");
  static obs::Counter& poisoned = obs::counter("fl.fault.poison");
  static obs::Counter& byzantine = obs::counter("fl.fault.byzantine");
  static obs::Counter& duplicates = obs::counter("fl.fault.duplicate");
  static obs::Counter& lost_c = obs::counter("fl.clients_lost");
  static obs::Counter& shards_c = obs::counter("fl.shard.shards");
  static obs::Counter& shard_clients = obs::counter("fl.shard.clients");

  std::vector<std::uint64_t> members;
  collect_shard_members(members);

  // Serial dispatch + fault decisions: faults are pure functions of the
  // plan, but the (possibly stateful) server builds the payloads, and
  // dropouts must be decided before training so a dropped client never
  // trains — matching the materialized engine's counters.
  struct Slot {
    std::uint64_t id = 0;
    ClientFault fault;
    GlobalModelMessage msg;
  };
  std::vector<Slot> slots;
  slots.reserve(members.size());
  index_t dropped = 0;
  {
    const obs::ScopedTimer dispatch_span("dispatch");
    for (const auto id : members) {
      Slot s;
      s.id = id;
      s.fault = fault_plan_.decide(ticket_, /*attempt=*/0, id);
      if (s.fault.kind == FaultKind::kDropout) {
        // Single-attempt semantics: a dropout is immediately lost.
        dropouts.add(1);
        ++dropped;
        ++clients_done_;
        continue;
      }
      if (s.fault.kind == FaultKind::kStraggler) stragglers.add(1);
      s.msg = server_->dispatch_to(id);
      bytes_down.add(s.msg.model_state.size());
      slots.push_back(std::move(s));
    }
  }
  if (dropped > 0) lost_c.add(dropped);

  // Parallel training: clients are materialized lazily INSIDE the region
  // (make_client is pure, so construction order cannot matter) and die with
  // their chunk; updates land in fixed slots, so the fold below sees
  // cohort order at any thread count.
  std::vector<ClientUpdateMessage> updates(slots.size());
  // Audit refusals recorded per slot inside the parallel region (no
  // cross-region throw) and tallied serially below.
  std::vector<std::uint8_t> refused(slots.size(), 0);
  runtime::parallel_for(0, slots.size(), 1, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      // kRoot: the span path must not depend on whether this chunk runs
      // inline (threads=1) or on a pool worker.
      const obs::ScopedTimer client_span("fl.client_round",
                                         obs::ScopedTimer::kRoot);
      const auto client = population_.make_client(slots[i].id);
      try {
        updates[i] = client->handle_round(slots[i].msg);
      } catch (const AuditError&) {
        // The client refused the dispatched model — excluded, not retried
        // (single-attempt semantics anyway, and a re-audit re-refuses).
        refused[i] = 1;
        continue;
      }
      // Client-side defenses run where the client runs — after training,
      // before the update crosses the (faulty) wire.
      if (defense_ && !defense_->empty()) {
        defense_->apply(updates[i], defense_cohort_);
      }
    }
  });
  index_t refusals = 0;
  for (const auto f : refused) refusals += f;
  trained.add(slots.size() - refusals);

  // Serial fold in cohort order — the determinism linchpin (see shard.h).
  // One screen per shard suffices: cohort member ids are distinct across
  // shards by construction (a permutation sample or an ascending id scan),
  // so the only reachable duplicates are kDuplicate faults, delivered
  // back to back within this shard.
  UpdateScreen screen = server_->begin_screen();
  {
    const obs::ScopedTimer agg_span("aggregate");
    for (index_t i = 0; i < slots.size(); ++i) {
      const Slot& s = slots[i];
      if (refused[i]) {
        // Refusal = no upload at all; the client still counts as disposed.
        ++clients_done_;
        if (client_hook_) client_hook_(s.id, clients_done_);
        continue;
      }
      if (s.fault.kind == FaultKind::kCorrupt) corrupted.add(1);
      if (s.fault.kind == FaultKind::kPoison) poisoned.add(1);
      if (s.fault.kind == FaultKind::kByzantine) byzantine.add(1);
      fault_plan_.apply(updates[i], s.fault, ticket_, /*attempt=*/0, s.id);
      bytes_up.add(updates[i].gradients.size());
      fold_update(updates[i], screen);
      if (s.fault.kind == FaultKind::kCorrupt &&
          s.fault.corruption == CorruptionKind::kDuplicate) {
        duplicates.add(1);
        fold_update(updates[i], screen);
      }
      ++clients_done_;
      if (client_hook_) client_hook_(s.id, clients_done_);
    }
  }

  shard_done_[next_shard_] = true;
  ++next_shard_;
  shards_c.add(1);
  shard_clients.add(members.size());
  if (shard_hook_) {
    ShardProgress progress;
    progress.round = server_->round();
    progress.ticket = ticket_;
    progress.shard = next_shard_ - 1;
    progress.num_shards = num_shards_;
    progress.cohort_size = cohort_size_;
    progress.clients_done = clients_done_;
    shard_hook_(progress);
  }
}

void ShardedSimulation::clear_round_state() {
  mid_round_ = false;
  cohort_ids_.clear();
  cohort_ids_.shrink_to_fit();
  defense_cohort_.clear();
  defense_cohort_.shrink_to_fit();
  shard_done_.clear();
  accumulator_.reset();
  cohort_size_ = 0;
  num_shards_ = 0;
  next_shard_ = 0;
  scan_pos_ = 0;
  clients_done_ = 0;
  threshold_ = 0;
  accepted_ = 0;
  rejected_ = 0;
}

index_t ShardedSimulation::run_round() {
  const obs::ScopedTimer round_span("fl.round");
  static obs::Counter& rounds = obs::counter("fl.rounds");
  static obs::Counter& shard_rounds = obs::counter("fl.shard.rounds");
  static obs::Counter& aborted = obs::counter("fl.rounds_aborted");

  if (!mid_round_) begin_round_state();
  while (next_shard_ < num_shards_) process_shard();

  const index_t cohort = cohort_size_;
  const index_t needed = quorum_needed(config_.quorum_fraction, cohort);
  if (accepted_ < needed) {
    // The aggregate only ever lived in the accumulator, so an abort needs
    // no model rollback — dropping the round state IS the rollback.
    const index_t valid = accepted_;
    clear_round_state();
    aborted.add(1);
    throw QuorumError("round " + std::to_string(server_->round()) + ": " +
                      std::to_string(valid) + " valid updates < " +
                      std::to_string(needed) + " required for quorum");
  }
  if (accepted_ == 0) {
    server_->commit_skipped_round();
  } else {
    server_->commit_round(accumulator_.average());
  }
  clear_round_state();
  rounds.add(1);
  shard_rounds.add(1);
  obs::gauge("fl.shard.last_cohort").set(static_cast<double>(cohort));
  return cohort;
}

void ShardedSimulation::run(index_t rounds,
                            const std::function<void(index_t)>& on_round) {
  for (index_t r = 0; r < rounds; ++r) {
    run_round();
    if (on_round) on_round(r);
  }
}

// ---- Checkpoint / resume ----------------------------------------------------

std::uint64_t ShardedSimulation::checkpoint_generation() const {
  // Monotone across rounds AND shards: a resting snapshot after round t-1
  // numbers t·2^20, mid-round shard boundaries of the round with ticket t
  // number t·2^20 + 1 + next_shard. Newest-first restore therefore always
  // lands on the latest progress point.
  return mid_round_ ? ticket_ * kMaxShardsPerRound + 1 + next_shard_
                    : round_tickets_ * kMaxShardsPerRound;
}

tensor::ByteBuffer ShardedSimulation::encode_checkpoint() {
  // Counted BEFORE the obs capture so the snapshot records itself (the
  // Simulation::encode_checkpoint contract).
  static obs::Counter& saves = obs::counter("ckpt.save_total");
  saves.add(1);

  ckpt::SnapshotBuilder builder;
  {
    ckpt::SectionWriter meta;
    meta.u64(server_->round());
    meta.u64(round_tickets_);
    // Configuration echo: a snapshot only fits the federation it came from.
    meta.u64(population_.config().seed);
    meta.u64(population_.size());
    meta.u64(config_.seed);
    meta.u64(config_.cohort_size);
    meta.u64(config_.shard_size);
    meta.u8(static_cast<std::uint8_t>(config_.sampler));
    meta.f64(static_cast<double>(config_.quorum_fraction));
    meta.u8(config_.weight_by_examples ? 1 : 0);
    meta.u8(mid_round_ ? 1 : 0);
    if (mid_round_) {
      meta.u64(ticket_);
      meta.u64(cohort_size_);
      meta.u64(num_shards_);
      meta.u64(next_shard_);
      meta.u64(scan_pos_);
      meta.u64(clients_done_);
      meta.u64(accepted_);
      meta.u64(rejected_);
    }
    builder.add("smeta", meta.take());
  }
  builder.add("model", nn::serialize_state(server_->global_model()));
  {
    ckpt::SectionWriter rng;
    write_rng_state(rng, rng_.state());
    if (mid_round_) write_rng_state(rng, rng_at_round_start_);
    builder.add("srng", rng.take());
  }
  if (mid_round_) {
    ckpt::SectionWriter agg;
    agg.bitset(shard_done_);
    agg.u64(accumulator_.count());
    agg.f64(static_cast<double>(accumulator_.total_weight()));
    agg.bytes(tensor::serialize_tensors(accumulator_.partials()));
    builder.add("agg", agg.take());
  }
  builder.add("obs", ckpt::encode_obs(obs::Registry::global()));
  return builder.finish();
}

void ShardedSimulation::apply_snapshot(const ckpt::Snapshot& snap) {
  using Reason = CheckpointError::Reason;

  // Decode and cross-check EVERYTHING before the first mutation, so a
  // snapshot from the wrong federation (or a malformed section) leaves the
  // live engine exactly as it was.
  ckpt::SectionReader meta(snap.section("smeta"), "smeta");
  const std::uint64_t round = meta.u64();
  const std::uint64_t tickets = meta.u64();
  const std::uint64_t pop_seed = meta.u64();
  const std::uint64_t pop_size = meta.u64();
  const std::uint64_t sel_seed = meta.u64();
  const std::uint64_t cohort_cfg = meta.u64();
  const std::uint64_t shard_size = meta.u64();
  const std::uint8_t sampler = meta.u8();
  const double quorum = meta.f64();
  const bool weighted = meta.u8() != 0;
  const bool mid = meta.u8() != 0;
  std::uint64_t ticket = 0, cohort = 0, num_shards = 0, next_shard = 0;
  std::uint64_t scan_pos = 0, clients_done = 0, accepted = 0, rejected = 0;
  if (mid) {
    ticket = meta.u64();
    cohort = meta.u64();
    num_shards = meta.u64();
    next_shard = meta.u64();
    scan_pos = meta.u64();
    clients_done = meta.u64();
    accepted = meta.u64();
    rejected = meta.u64();
  }
  meta.expect_end();
  if (pop_seed != population_.config().seed || pop_size != population_.size() ||
      sel_seed != config_.seed || cohort_cfg != config_.cohort_size ||
      shard_size != config_.shard_size ||
      sampler != static_cast<std::uint8_t>(config_.sampler) ||
      quorum != static_cast<double>(config_.quorum_fraction) ||
      weighted != config_.weight_by_examples) {
    throw CheckpointError(
        Reason::kStateMismatch,
        "snapshot belongs to a differently configured sharded federation "
        "(population seed " +
            std::to_string(pop_seed) + ", " + std::to_string(pop_size) +
            " clients, shard_size " + std::to_string(shard_size) + ")");
  }
  if (mid && (next_shard > num_shards || ticket >= tickets ||
              scan_pos > pop_size)) {
    throw CheckpointError(Reason::kStateMismatch,
                          "mid-round snapshot progress is inconsistent "
                          "(shard " +
                              std::to_string(next_shard) + " of " +
                              std::to_string(num_shards) + ")");
  }

  ckpt::SectionReader rng(snap.section("srng"), "srng");
  const common::Rng::State rng_now = read_rng_state(rng);
  common::Rng::State rng_start{};
  if (mid) rng_start = read_rng_state(rng);
  rng.expect_end();

  std::vector<bool> done_bits;
  std::vector<tensor::Tensor> partials;
  std::uint64_t acc_count = 0;
  double acc_weight = 0.0;
  if (mid) {
    ckpt::SectionReader agg(snap.section("agg"), "agg");
    done_bits = agg.bitset();
    acc_count = agg.u64();
    acc_weight = agg.f64();
    const ckpt::ByteBuffer partial_bytes = agg.bytes();
    agg.expect_end();
    if (done_bits.size() != num_shards) {
      throw CheckpointError(Reason::kStateMismatch,
                            "completed-shard bitmap holds " +
                                std::to_string(done_bits.size()) +
                                " bits for " + std::to_string(num_shards) +
                                " shards");
    }
    // The fold is strictly in shard order, so progress must be a prefix.
    for (std::uint64_t i = 0; i < done_bits.size(); ++i) {
      if (done_bits[i] != (i < next_shard)) {
        throw CheckpointError(Reason::kStateMismatch,
                              "completed-shard bitmap is not the prefix "
                              "next_shard implies");
      }
    }
    try {
      partials = tensor::deserialize_tensors(partial_bytes);
    } catch (const Error& e) {
      throw CheckpointError(
          Reason::kMalformedSection,
          std::string("accumulator partials failed to decode: ") + e.what());
    }
  }

  const tensor::ByteBuffer& model_bytes = snap.section("model");
  const tensor::ByteBuffer& obs_bytes = snap.section("obs");

  // Apply. The model payload passed its section CRC, so a failure to load is
  // an architecture mismatch, not disk damage.
  try {
    nn::deserialize_state(server_->global_model(), model_bytes);
  } catch (const Error& e) {
    throw CheckpointError(Reason::kStateMismatch,
                          std::string("model state does not fit the live "
                                      "architecture: ") +
                              e.what());
  }
  server_->restore_round(round);
  round_tickets_ = tickets;
  rng_.set_state(rng_now);
  clear_round_state();
  if (mid) {
    ticket_ = ticket;
    rng_at_round_start_ = rng_start;
    cohort_size_ = cohort;
    num_shards_ = num_shards;
    next_shard_ = next_shard;
    scan_pos_ = scan_pos;
    clients_done_ = clients_done;
    accepted_ = accepted;
    rejected_ = rejected;
    shard_done_ = std::move(done_bits);
    accumulator_.restore(std::move(partials), static_cast<real>(acc_weight),
                         acc_count);
    if (config_.sampler == CohortSampler::kFisherYates) {
      // Re-derive the cohort by replaying the selection from the round-start
      // RNG state; rng_ itself already holds the post-selection position.
      common::Rng replay(0);
      replay.set_state(rng_at_round_start_);
      cohort_ids_ =
          replay.sample_without_replacement(population_.size(), cohort_size_);
      if (defense_ && defense_->requires_cohort()) {
        defense_cohort_.assign(cohort_ids_.begin(), cohort_ids_.end());
      }
    } else {
      threshold_ = cohort_threshold(
          config_.cohort_size == 0 ? population_.size() : config_.cohort_size,
          population_.size());
      if (defense_ && defense_->requires_cohort()) {
        // Re-collect the cohort id list the mask stage needs — same pure
        // membership scan begin_round_state ran before the crash.
        for (index_t id = 0; id < population_.size(); ++id) {
          if (cohort_member(config_.seed, ticket_, id, threshold_)) {
            defense_cohort_.push_back(id);
          }
        }
      }
    }
    // Rebuild the dispatch payload for the round in flight (honest-server
    // assumption: begin_round is idempotent given unchanged model state).
    server_->begin_round();
    mid_round_ = true;
  }
  ckpt::apply_obs(obs_bytes);
  obs::counter("ckpt.restore_total").add(1);
  if (mid) obs::counter("ckpt.restore.shard_midround").add(1);
}

void ShardedSimulation::restore_checkpoint(const tensor::ByteBuffer& bytes) {
  apply_snapshot(ckpt::Snapshot::parse(bytes));
}

std::string ShardedSimulation::save_checkpoint(
    ckpt::CheckpointManager& manager) {
  return manager.save(checkpoint_generation(), encode_checkpoint());
}

std::uint64_t ShardedSimulation::resume_from(ckpt::CheckpointManager& manager) {
  const ckpt::CheckpointManager::Loaded loaded = manager.load_latest_valid();
  apply_snapshot(loaded.snapshot);
  return server_->round();
}

}  // namespace oasis::fl
