// Sharded streaming round engine for million-client federations.
//
// fl::Simulation materializes every client and every update of a round in
// memory — fine for N ≤ 10^3, hopeless for N = 10^6. ShardedSimulation runs
// the SAME protocol in O(shard) memory: the round's cohort is partitioned
// into fixed-size shards, each shard's clients are materialized lazily from
// a VirtualPopulation (pure function of (population seed, client id)),
// trained in parallel, folded serially into ONE streaming FedAvgAccumulator,
// and destroyed before the next shard starts.
//
// Determinism argument (DESIGN.md §5i). The floating-point sum order of the
// aggregate is the FOLD order, and the fold is strictly serial in cohort
// order: shard k folds cohort members [k·S, (k+1)·S) in order, shards fold
// in ascending k. The order is therefore a pure function of the cohort —
// independent of the shard size S AND of the thread count (parallelism is
// confined to training within a shard, whose results land in fixed slots).
// With the Fisher–Yates sampler the cohort order equals fl::Simulation's
// selection order, and the fold order equals the order finish_round() feeds
// fedavg() — so the sharded engine is BYTE-IDENTICAL to the materialized
// path at any (shard size, thread count). The differential shard tests pin
// exactly this.
//
// Mid-round checkpointing. Huge rounds are made interruption-proof by
// snapshotting at shard boundaries: a snapshot carries the completed-shard
// bitmap, the accumulator's partial sums, the screen tallies, and the
// selection RNG state from the top of the round (so the cohort re-derives on
// resume). A SIGKILL mid-shard loses at most one shard of work and the
// resumed run is bit-identical to one that never crashed — the shard crash
// tests prove it over 50 seeds.
//
// Fault semantics. The engine is single-attempt (no virtual clock, no
// retry): dropout = lost, straggler = delivered-but-counted, corrupt/poison
// damage the payload via FaultPlan::apply, duplicate folds the update twice
// (the second screens as kDuplicate). At 10^6 clients per round the retry
// machinery would dominate wall clock for semantics nobody observes.
//
// The engine assumes an HONEST server: begin_round() must be idempotent
// given unchanged model state (mid-round resume re-invokes it to rebuild the
// dispatch payload). MaliciousServer's pre-dispatch manipulation would be
// re-applied on resume and break bit-identity.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "fl/aggregation.h"
#include "fl/defense.h"
#include "fl/fault.h"
#include "fl/population.h"
#include "fl/server.h"

namespace oasis::fl {

/// How the round's cohort is drawn from the population.
enum class CohortSampler : std::uint8_t {
  /// rng.sample_without_replacement(N, M) — exactly fl::Simulation's
  /// selection, in selection order. Materializes the cohort id list (O(M)
  /// memory) and an O(N) scratch permutation; the compatibility mode the
  /// differential tests run.
  kFisherYates = 0,
  /// Stateless hash-threshold membership: client `id` joins round ticket `t`
  /// iff mix(seed, t, id) < threshold(M, N). O(1) sampler state, cohort
  /// enumerated in ascending id order, cohort SIZE is binomial around M
  /// (each client joins independently with probability M/N). The scale mode.
  kHashThreshold = 1,
};

const char* to_string(CohortSampler sampler);

/// splitmix64-style mix of (seed, ticket, client_id) — the hash-threshold
/// sampler's membership hash. Pure; exposed for the property tests.
[[nodiscard]] std::uint64_t cohort_mix(std::uint64_t seed,
                                       std::uint64_t ticket,
                                       std::uint64_t client_id);

/// Membership threshold for an expected cohort of `cohort_size` out of
/// `population`: floor(cohort·2^64 / population), with cohort == population
/// mapped to the everyone-joins sentinel. Throws ConfigError when
/// cohort_size > population or population == 0.
[[nodiscard]] std::uint64_t cohort_threshold(index_t cohort_size,
                                             index_t population);

/// Does `client_id` participate in round ticket `ticket`?
[[nodiscard]] bool cohort_member(std::uint64_t seed, std::uint64_t ticket,
                                 std::uint64_t client_id,
                                 std::uint64_t threshold);

struct ShardedConfig {
  /// Cohort target M (0 = whole population). Exact under kFisherYates,
  /// expected under kHashThreshold.
  index_t cohort_size = 0;
  /// Clients materialized/trained/folded per shard. Peak memory is
  /// O(shard_size · (model + update)) regardless of population size.
  index_t shard_size = 256;
  /// Selection seed (the analogue of SimulationConfig::seed).
  std::uint64_t seed = 7;
  CohortSampler sampler = CohortSampler::kFisherYates;
  /// Fraction of the ACTUAL cohort that must survive validation for the
  /// round to commit; 0 disables (zero valid updates skip the SGD step).
  real quorum_fraction = 0.0;
  /// False gives the plain 1/M average instead of example-weighted FedAvg.
  bool weight_by_examples = true;
  /// Robust-aggregation choice. The streaming engine supports only the
  /// streaming-compatible kinds — kFedAvg (the default) and kNormBounded
  /// (per-update clip folded into the same accumulator). The buffering
  /// order-statistic aggregators (kCoordinateMedian, kTrimmedMean) need the
  /// whole cohort resident, which contradicts the O(shard) memory contract:
  /// the constructor throws ConfigError for them — use fl::Simulation.
  AggregatorConfig aggregator;
};

/// Progress snapshot handed to the shard hook after each shard folds.
struct ShardProgress {
  std::uint64_t round = 0;   // protocol round in flight
  std::uint64_t ticket = 0;  // engine's monotone round-start counter
  index_t shard = 0;         // shard just completed (0-based)
  index_t num_shards = 0;
  index_t cohort_size = 0;   // resolved cohort size this round
  index_t clients_done = 0;  // cohort members disposed so far (cumulative)
};

/// Called after each completed shard — the mid-round checkpoint cadence hook
/// (a crash between two invocations loses at most one shard of work).
using ShardHook = std::function<void(const ShardProgress&)>;

/// Called after each individual client folds (serially, in fold order) —
/// the crash harness injects SIGKILL mid-shard through this.
using ClientHook =
    std::function<void(std::uint64_t client_id, index_t clients_done)>;

class ShardedSimulation {
 public:
  /// Shards-per-round ceiling imposed by the checkpoint generation
  /// numbering (generation = ticket·2^20 + shard).
  static constexpr std::uint64_t kMaxShardsPerRound = 1ULL << 20;

  /// Throws ConfigError on shard_size == 0, cohort_size > population, or
  /// quorum_fraction outside [0, 1].
  ShardedSimulation(std::unique_ptr<Server> server,
                    VirtualPopulation population, ShardedConfig config);

  /// Runs one protocol round (or finishes a mid-round resume) and returns
  /// the resolved cohort size. Throws QuorumError when fewer valid updates
  /// than the quorum survive — the global model is untouched (the aggregate
  /// only ever lived in the accumulator), so there is nothing to roll back.
  index_t run_round();

  /// Runs `rounds` rounds, invoking `on_round` (if set) after each.
  void run(index_t rounds,
           const std::function<void(index_t round)>& on_round = {});

  /// Installs the seeded fault schedule (single-attempt semantics — see
  /// file comment). Replace with a default-constructed plan to disable.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_plan_; }

  void set_shard_hook(ShardHook hook) { shard_hook_ = std::move(hook); }
  void set_client_hook(ClientHook hook) { client_hook_ = std::move(hook); }

  /// Installs the client-side defense stack, applied to every update inside
  /// the shard's parallel training region (before wire faults). A
  /// cohort-free stack (clip/noise) keeps the engine strictly O(shard); a
  /// stack whose mask stage requires_cohort() materializes one O(cohort)
  /// id list per round (Fisher–Yates already pays this; hash-threshold
  /// collects ids during its existing pre-count scan). nullptr disables.
  void set_defense_stack(DefenseStackPtr stack) { defense_ = std::move(stack); }
  [[nodiscard]] const DefenseStackPtr& defense_stack() const {
    return defense_;
  }

  Server& server() { return *server_; }
  [[nodiscard]] const VirtualPopulation& population() const {
    return population_;
  }
  [[nodiscard]] const ShardedConfig& config() const { return config_; }
  /// True between a shard-boundary snapshot's round start and its commit —
  /// i.e. the engine is inside a round (only observable via checkpoints,
  /// hooks, or an aborted run_round).
  [[nodiscard]] bool mid_round() const { return mid_round_; }

  // --- Checkpoint / resume -------------------------------------------------
  //
  // Same container format and contract as fl::Simulation (sections are named
  // differently — "smeta"/"srng" — so the two engines reject each other's
  // snapshots). A snapshot taken at a shard boundary additionally carries an
  // "agg" section: completed-shard bitmap + accumulator partials + screen
  // tallies. Restoring it re-derives the cohort from the round-start RNG
  // state and resumes the shard loop bit-exactly.

  /// Serializes the engine into an "oasis.ckpt/v1" buffer and bumps
  /// ckpt.save_total (before the obs capture, so the snapshot counts
  /// itself).
  [[nodiscard]] tensor::ByteBuffer encode_checkpoint();

  /// Validates `bytes` exhaustively and applies it. Throws CheckpointError
  /// (kStateMismatch for a snapshot from a differently configured
  /// federation) and leaves live state untouched on validation failure.
  void restore_checkpoint(const tensor::ByteBuffer& bytes);

  /// encode_checkpoint() → manager.save(generation); returns the path.
  /// Generations interleave rounds and shards monotonically:
  /// ticket·2^20 + 1 + next_shard mid-round, round_tickets·2^20 at rest.
  std::string save_checkpoint(ckpt::CheckpointManager& manager);

  /// Restores from the manager's newest valid generation and returns the
  /// protocol round to continue from (the round IN FLIGHT for a mid-round
  /// snapshot). Throws CheckpointError{kNoValidGeneration} when the
  /// directory holds nothing loadable.
  std::uint64_t resume_from(ckpt::CheckpointManager& manager);

 private:
  void begin_round_state();
  void process_shard();
  void collect_shard_members(std::vector<std::uint64_t>& out);
  void fold_update(const ClientUpdateMessage& update, UpdateScreen& screen);
  void clear_round_state();
  [[nodiscard]] std::uint64_t checkpoint_generation() const;
  void apply_snapshot(const ckpt::Snapshot& snap);

  std::unique_ptr<Server> server_;
  VirtualPopulation population_;
  ShardedConfig config_;
  common::Rng rng_;  // cohort selection stream (kFisherYates)
  FaultPlan fault_plan_;
  DefenseStackPtr defense_;
  ShardHook shard_hook_;
  ClientHook client_hook_;
  /// Monotone count of rounds STARTED (aborted rounds included) — the fault
  /// plan's and hash sampler's ticket, so a retried protocol round sees a
  /// fresh cohort and fresh faults.
  std::uint64_t round_tickets_ = 0;

  // --- In-flight round state (meaningful while mid_round_) ---
  bool mid_round_ = false;
  std::uint64_t ticket_ = 0;
  common::Rng::State rng_at_round_start_{};  // cohort re-derivation on resume
  index_t cohort_size_ = 0;  // resolved (actual) cohort size
  index_t num_shards_ = 0;
  index_t next_shard_ = 0;
  index_t scan_pos_ = 0;  // kHashThreshold: next population id to scan
  index_t clients_done_ = 0;
  std::uint64_t threshold_ = 0;            // kHashThreshold
  std::vector<index_t> cohort_ids_;        // kFisherYates, selection order
  /// Materialized only when the defense stack's mask stage requires the
  /// cohort (see set_defense_stack) — empty otherwise.
  std::vector<std::uint64_t> defense_cohort_;
  std::vector<bool> shard_done_;           // completed-shard bitmap
  FedAvgAccumulator accumulator_;
  index_t accepted_ = 0;
  index_t rejected_ = 0;
};

}  // namespace oasis::fl
