#include "fl/simulation.h"

namespace oasis::fl {

Simulation::Simulation(std::unique_ptr<Server> server,
                       std::vector<std::unique_ptr<Client>> clients,
                       SimulationConfig config)
    : server_(std::move(server)),
      clients_(std::move(clients)),
      config_(config),
      rng_(config.seed) {
  OASIS_CHECK(server_ != nullptr);
  OASIS_CHECK_MSG(!clients_.empty(), "simulation needs at least one client");
  for (const auto& c : clients_) OASIS_CHECK(c != nullptr);
  OASIS_CHECK_MSG(config_.clients_per_round <= clients_.size(),
                  "M=" << config_.clients_per_round << " > N="
                       << clients_.size());
}

Client& Simulation::client(index_t i) {
  OASIS_CHECK_MSG(i < clients_.size(), "client " << i);
  return *clients_[i];
}

std::vector<std::uint64_t> Simulation::run_round() {
  const index_t m = config_.clients_per_round == 0 ? clients_.size()
                                                   : config_.clients_per_round;
  const auto selected = rng_.sample_without_replacement(clients_.size(), m);

  server_->begin_round();
  std::vector<ClientUpdateMessage> updates;
  std::vector<std::uint64_t> ids;
  updates.reserve(m);
  for (const auto idx : selected) {
    updates.push_back(clients_[idx]->handle_round(
        server_->dispatch_to(clients_[idx]->id())));
    ids.push_back(clients_[idx]->id());
  }
  server_->finish_round(updates);
  return ids;
}

void Simulation::run(index_t rounds,
                     const std::function<void(index_t)>& on_round) {
  for (index_t r = 0; r < rounds; ++r) {
    run_round();
    if (on_round) on_round(r);
  }
}

}  // namespace oasis::fl
