#include "fl/simulation.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ckpt/codec.h"
#include "ckpt/container.h"
#include "ckpt/obs_state.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::fl {

Simulation::Simulation(std::unique_ptr<Server> server,
                       std::vector<std::unique_ptr<Client>> clients,
                       SimulationConfig config)
    : server_(std::move(server)),
      clients_(std::move(clients)),
      config_(config),
      rng_(config.seed) {
  OASIS_CHECK(server_ != nullptr);
  OASIS_CHECK_MSG(!clients_.empty(), "simulation needs at least one client");
  std::unordered_set<std::uint64_t> ids;
  for (const auto& c : clients_) {
    OASIS_CHECK(c != nullptr);
    OASIS_CHECK_MSG(ids.insert(c->id()).second,
                    "duplicate client id " << c->id());
  }
  OASIS_CHECK_MSG(config_.clients_per_round <= clients_.size(),
                  "M=" << config_.clients_per_round << " > N="
                       << clients_.size());
  OASIS_CHECK_MSG(config_.max_attempts >= 1, "max_attempts must be >= 1");
  OASIS_CHECK_MSG(
      config_.quorum_fraction >= 0.0 && config_.quorum_fraction <= 1.0,
      "quorum_fraction " << config_.quorum_fraction << " outside [0, 1]");
}

Client& Simulation::client(index_t i) {
  OASIS_CHECK_MSG(i < clients_.size(), "client " << i);
  return *clients_[i];
}

std::vector<std::uint64_t> Simulation::run_round() {
  const obs::ScopedTimer round_span("fl.round");
  static obs::Counter& rounds = obs::counter("fl.rounds");
  static obs::Counter& trained = obs::counter("fl.clients_trained");
  static obs::Counter& bytes_down = obs::counter("fl.bytes_dispatched");
  static obs::Counter& bytes_up = obs::counter("fl.bytes_uploaded");
  static obs::Counter& dropouts = obs::counter("fl.fault.dropout");
  static obs::Counter& stragglers = obs::counter("fl.fault.straggler");
  static obs::Counter& corrupted = obs::counter("fl.fault.corrupt");
  static obs::Counter& poisoned = obs::counter("fl.fault.poison");
  static obs::Counter& byzantine = obs::counter("fl.fault.byzantine");
  static obs::Counter& duplicates = obs::counter("fl.fault.duplicate");
  static obs::Counter& timeouts = obs::counter("fl.timeouts");
  static obs::Counter& retries = obs::counter("fl.retries");
  static obs::Counter& lost_c = obs::counter("fl.clients_lost");
  static obs::Counter& aborted = obs::counter("fl.rounds_aborted");

  const index_t m = config_.clients_per_round == 0 ? clients_.size()
                                                   : config_.clients_per_round;
  const auto selected = rng_.sample_without_replacement(clients_.size(), m);
  // The fault plan's ticket is the engine's own monotone counter, NOT the
  // protocol round id: an aborted round leaves the server's round id in
  // place, and keying faults on it would replay the identical failure.
  const std::uint64_t ticket = round_tickets_++;
  const bool ft_active =
      fault_plan_.active() || config_.quorum_fraction > 0.0;

  server_->begin_round();
  // Dispatch serially: a (possibly malicious) server may build per-client
  // payloads from mutable state, so only the training itself fans out.
  std::vector<GlobalModelMessage> dispatched;
  std::vector<std::uint64_t> ids;
  dispatched.reserve(m);
  ids.reserve(m);
  {
    const obs::ScopedTimer dispatch_span("dispatch");
    for (const auto idx : selected) {
      dispatched.push_back(server_->dispatch_to(clients_[idx]->id()));
      ids.push_back(clients_[idx]->id());
      bytes_down.add(dispatched.back().model_state.size());
    }
  }

  // Collection: bounded attempts against per-client deadlines in virtual
  // time. Faults are decided serially (pure functions of the plan), only the
  // training fans out — each responder touches its own model replica, rng,
  // and dataset shard, and updates land at a fixed slot, so collection order
  // (and therefore aggregation) is identical at any thread count.
  struct PendingReply {
    index_t sel = 0;  // index into selected/dispatched
    ClientFault fault;
  };
  std::vector<index_t> pending(m);
  for (index_t i = 0; i < m; ++i) pending[i] = i;
  std::vector<ClientUpdateMessage> collected;
  collected.reserve(m);
  for (index_t attempt = 0;
       attempt < config_.max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      clock_.advance(attempt * config_.retry_backoff_ticks);
      retries.add(pending.size());
    }
    const auto t0 = clock_.now();
    const auto deadline = t0 + config_.deadline_ticks;

    std::vector<PendingReply> responders;
    std::vector<index_t> still_pending;
    runtime::VirtualClock::ticks last_arrival = t0;
    for (const auto i : pending) {
      PendingReply r;
      r.sel = i;
      r.fault = fault_plan_.decide(ticket, attempt, ids[i]);
      if (r.fault.kind == FaultKind::kDropout) {
        dropouts.add(1);
        still_pending.push_back(i);
        continue;
      }
      const auto arrival =
          t0 + config_.base_latency_ticks + r.fault.delay_ticks;
      if (r.fault.kind == FaultKind::kStraggler) stragglers.add(1);
      if (arrival > deadline) {
        timeouts.add(1);
        still_pending.push_back(i);
        continue;
      }
      if (arrival > last_arrival) last_arrival = arrival;
      responders.push_back(r);
    }

    std::vector<ClientUpdateMessage> updates(responders.size());
    // Audit refusals recorded per slot inside the parallel region (no
    // cross-region throw) and tallied serially below.
    std::vector<std::uint8_t> refused(responders.size(), 0);
    runtime::parallel_for(0, responders.size(), 1, [&](index_t i0,
                                                       index_t i1) {
      for (index_t i = i0; i < i1; ++i) {
        // kRoot: the span path must not depend on whether this chunk runs
        // inline (threads=1) or on a pool worker.
        const obs::ScopedTimer client_span("fl.client_round",
                                           obs::ScopedTimer::kRoot);
        const index_t sel = responders[i].sel;
        try {
          updates[i] = clients_[selected[sel]]->handle_round(dispatched[sel]);
        } catch (const AuditError&) {
          // The client refused the dispatched model. Not a retry candidate:
          // re-auditing the same model re-refuses deterministically.
          refused[i] = 1;
          continue;
        }
        // Client-side defenses run where the client runs — after training,
        // before the update crosses the (faulty) wire.
        if (defense_ && !defense_->empty()) defense_->apply(updates[i], ids);
      }
    });
    index_t refusals = 0;
    for (const auto f : refused) refusals += f;
    trained.add(responders.size() - refusals);

    // Deliver serially in responder order: wire faults mutate the payload
    // between "upload" and "receipt", duplicates arrive back to back.
    for (index_t i = 0; i < responders.size(); ++i) {
      const auto& r = responders[i];
      if (refused[i]) continue;  // refusal = no upload at all
      if (r.fault.kind == FaultKind::kCorrupt) corrupted.add(1);
      if (r.fault.kind == FaultKind::kPoison) poisoned.add(1);
      if (r.fault.kind == FaultKind::kByzantine) byzantine.add(1);
      fault_plan_.apply(updates[i], r.fault, ticket, attempt, ids[r.sel]);
      bytes_up.add(updates[i].gradients.size());
      collected.push_back(std::move(updates[i]));
      if (r.fault.kind == FaultKind::kCorrupt &&
          r.fault.corruption == CorruptionKind::kDuplicate) {
        duplicates.add(1);
        collected.push_back(collected.back());
      }
    }

    pending = std::move(still_pending);
    // Time passes: to the last arrival when everyone replied, else the full
    // deadline we waited out before giving up on the stragglers.
    clock_.advance_to(pending.empty() ? last_arrival : deadline);
  }

  if (!pending.empty()) {
    lost_c.add(pending.size());
    if (config_.fail_on_lost) {
      throw TimeoutError("round " + std::to_string(server_->round()) + ": " +
                         std::to_string(pending.size()) + " of " +
                         std::to_string(m) + " clients lost after " +
                         std::to_string(config_.max_attempts) +
                         " attempts (" + clock_.to_string() + ")");
    }
  }

  const index_t needed = quorum_needed(config_.quorum_fraction, m);

  // Snapshot only when the engine can actually abort or drop updates — the
  // honest path stays copy-free.
  tensor::ByteBuffer snapshot;
  if (ft_active) snapshot = nn::serialize_state(server_->global_model());
  {
    const obs::ScopedTimer agg_span("aggregate");
    try {
      server_->finish_round(collected, needed);
    } catch (const QuorumError&) {
      // finish_round throws before touching the model, but a subclass may
      // have partially applied state — restore the pre-round snapshot so the
      // abort is bit-exact regardless.
      nn::deserialize_state(server_->global_model(), snapshot);
      aborted.add(1);
      throw;
    }
  }
  rounds.add(1);
  obs::gauge("fl.clock_ticks").set(static_cast<double>(clock_.now()));
  return ids;
}

void Simulation::run(index_t rounds,
                     const std::function<void(index_t)>& on_round) {
  for (index_t r = 0; r < rounds; ++r) {
    run_round();
    if (on_round) on_round(r);
  }
}

// ---- Checkpoint / resume ----------------------------------------------------

namespace {

void write_rng_state(ckpt::SectionWriter& w, const common::Rng::State& s) {
  for (const auto word : s.words) w.u64(word);
  w.f64(s.spare_normal);
  w.u8(s.has_spare ? 1 : 0);
}

common::Rng::State read_rng_state(ckpt::SectionReader& r) {
  common::Rng::State s;
  for (auto& word : s.words) word = r.u64();
  s.spare_normal = r.f64();
  s.has_spare = r.u8() != 0;
  return s;
}

}  // namespace

tensor::ByteBuffer Simulation::encode_checkpoint() {
  // Counted BEFORE the obs capture so the snapshot records itself: a
  // straight-through run and a run resumed from this snapshot then agree on
  // ckpt.save_total forever after.
  static obs::Counter& saves = obs::counter("ckpt.save_total");
  saves.add(1);

  ckpt::SnapshotBuilder builder;
  {
    ckpt::SectionWriter meta;
    meta.u64(server_->round());
    meta.u64(round_tickets_);
    meta.u64(clock_.now());
    // Configuration echo: a snapshot only fits the federation it came from.
    meta.u64(config_.seed);
    meta.u64(clients_.size());
    meta.u64(config_.clients_per_round);
    meta.f64(static_cast<double>(config_.quorum_fraction));
    builder.add("meta", meta.take());
  }
  builder.add("model", nn::serialize_state(server_->global_model()));
  {
    ckpt::SectionWriter rng;
    write_rng_state(rng, rng_.state());
    rng.u32(static_cast<std::uint32_t>(clients_.size()));
    for (const auto& c : clients_) {
      rng.u64(c->id());
      write_rng_state(rng, c->rng_state());
    }
    builder.add("rng", rng.take());
  }
  builder.add("obs", ckpt::encode_obs(obs::Registry::global()));
  return builder.finish();
}

void Simulation::apply_snapshot(const ckpt::Snapshot& snap) {
  using Reason = CheckpointError::Reason;

  // Decode and cross-check EVERYTHING before the first mutation, so a
  // snapshot from the wrong federation (or a malformed section) leaves the
  // live simulation exactly as it was.
  ckpt::SectionReader meta(snap.section("meta"), "meta");
  const std::uint64_t round = meta.u64();
  const std::uint64_t tickets = meta.u64();
  const std::uint64_t clock_ticks = meta.u64();
  const std::uint64_t seed = meta.u64();
  const std::uint64_t num_clients = meta.u64();
  const std::uint64_t clients_per_round = meta.u64();
  const double quorum = meta.f64();
  meta.expect_end();
  if (seed != config_.seed || num_clients != clients_.size() ||
      clients_per_round != config_.clients_per_round ||
      quorum != static_cast<double>(config_.quorum_fraction)) {
    throw CheckpointError(
        Reason::kStateMismatch,
        "snapshot belongs to a differently configured federation (seed " +
            std::to_string(seed) + ", " + std::to_string(num_clients) +
            " clients)");
  }

  ckpt::SectionReader rng(snap.section("rng"), "rng");
  const common::Rng::State sim_rng = read_rng_state(rng);
  const std::uint32_t rng_clients = rng.u32();
  if (rng_clients != clients_.size()) {
    throw CheckpointError(Reason::kStateMismatch,
                          "snapshot carries RNG state for " +
                              std::to_string(rng_clients) + " clients, have " +
                              std::to_string(clients_.size()));
  }
  std::unordered_map<std::uint64_t, Client*> by_id;
  for (const auto& c : clients_) by_id.emplace(c->id(), c.get());
  std::vector<std::pair<Client*, common::Rng::State>> client_rngs;
  client_rngs.reserve(rng_clients);
  for (std::uint32_t i = 0; i < rng_clients; ++i) {
    const std::uint64_t id = rng.u64();
    const common::Rng::State state = read_rng_state(rng);
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      throw CheckpointError(Reason::kStateMismatch,
                            "snapshot RNG state for unknown client id " +
                                std::to_string(id));
    }
    client_rngs.emplace_back(it->second, state);
  }
  rng.expect_end();

  const tensor::ByteBuffer& model_bytes = snap.section("model");
  const tensor::ByteBuffer& obs_bytes = snap.section("obs");

  // Apply. The model payload passed its section CRC, so a failure to load is
  // an architecture mismatch, not disk damage.
  try {
    nn::deserialize_state(server_->global_model(), model_bytes);
  } catch (const Error& e) {
    throw CheckpointError(Reason::kStateMismatch,
                          std::string("model state does not fit the live "
                                      "architecture: ") +
                              e.what());
  }
  server_->restore_round(round);
  round_tickets_ = tickets;
  clock_.restore(clock_ticks);
  rng_.set_state(sim_rng);
  for (auto& [client, state] : client_rngs) client->restore_rng_state(state);
  ckpt::apply_obs(obs_bytes);
  obs::counter("ckpt.restore_total").add(1);
}

void Simulation::restore_checkpoint(const tensor::ByteBuffer& bytes) {
  apply_snapshot(ckpt::Snapshot::parse(bytes));
}

std::string Simulation::save_checkpoint(ckpt::CheckpointManager& manager) {
  return manager.save(server_->round(), encode_checkpoint());
}

std::uint64_t Simulation::resume_from(ckpt::CheckpointManager& manager) {
  const ckpt::CheckpointManager::Loaded loaded = manager.load_latest_valid();
  apply_snapshot(loaded.snapshot);
  return server_->round();
}

}  // namespace oasis::fl
