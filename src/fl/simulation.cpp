#include "fl/simulation.h"

#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::fl {

Simulation::Simulation(std::unique_ptr<Server> server,
                       std::vector<std::unique_ptr<Client>> clients,
                       SimulationConfig config)
    : server_(std::move(server)),
      clients_(std::move(clients)),
      config_(config),
      rng_(config.seed) {
  OASIS_CHECK(server_ != nullptr);
  OASIS_CHECK_MSG(!clients_.empty(), "simulation needs at least one client");
  for (const auto& c : clients_) OASIS_CHECK(c != nullptr);
  OASIS_CHECK_MSG(config_.clients_per_round <= clients_.size(),
                  "M=" << config_.clients_per_round << " > N="
                       << clients_.size());
}

Client& Simulation::client(index_t i) {
  OASIS_CHECK_MSG(i < clients_.size(), "client " << i);
  return *clients_[i];
}

std::vector<std::uint64_t> Simulation::run_round() {
  const obs::ScopedTimer round_span("fl.round");
  static obs::Counter& rounds = obs::counter("fl.rounds");
  static obs::Counter& trained = obs::counter("fl.clients_trained");
  static obs::Counter& bytes_down = obs::counter("fl.bytes_dispatched");
  static obs::Counter& bytes_up = obs::counter("fl.bytes_uploaded");

  const index_t m = config_.clients_per_round == 0 ? clients_.size()
                                                   : config_.clients_per_round;
  const auto selected = rng_.sample_without_replacement(clients_.size(), m);

  server_->begin_round();
  // Dispatch serially: a (possibly malicious) server may build per-client
  // payloads from mutable state, so only the training itself fans out.
  std::vector<GlobalModelMessage> dispatched;
  std::vector<std::uint64_t> ids;
  dispatched.reserve(m);
  ids.reserve(m);
  {
    const obs::ScopedTimer dispatch_span("dispatch");
    for (const auto idx : selected) {
      dispatched.push_back(server_->dispatch_to(clients_[idx]->id()));
      ids.push_back(clients_[idx]->id());
      bytes_down.add(dispatched.back().model_state.size());
    }
  }
  // Selected clients train concurrently — each touches only its own model
  // replica, rng, and dataset shard. Updates land at their selection index,
  // so finish_round() aggregates in the same fixed order as a serial run
  // and FedAvg results are identical at any thread count.
  std::vector<ClientUpdateMessage> updates(m);
  runtime::parallel_for(0, m, 1, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      // kRoot: the span path must not depend on whether this chunk runs
      // inline (threads=1) or on a pool worker.
      const obs::ScopedTimer client_span("fl.client_round",
                                         obs::ScopedTimer::kRoot);
      updates[i] = clients_[selected[i]]->handle_round(dispatched[i]);
    }
  });
  for (const auto& u : updates) bytes_up.add(u.gradients.size());
  {
    const obs::ScopedTimer agg_span("aggregate");
    server_->finish_round(updates);
  }
  rounds.add(1);
  trained.add(m);
  return ids;
}

void Simulation::run(index_t rounds,
                     const std::function<void(index_t)>& on_round) {
  for (index_t r = 0; r < rounds; ++r) {
    run_round();
    if (on_round) on_round(r);
  }
}

}  // namespace oasis::fl
