// Round orchestration: wires server and clients into the iterative protocol
// of Section 2 (random M-of-N client selection per round).
//
// The round engine is fault-tolerant: collection runs against per-client
// deadlines on a deterministic virtual clock with bounded retry/backoff, an
// optional quorum fraction decides whether a round may commit, and rounds
// that miss quorum abort with QuorumError after rolling the global model
// back bit-exactly. Faults (dropout, stragglers, wire corruption, numeric
// poison) are injected between dispatch and collection by a seeded
// fl::FaultPlan — see fault.h. With no plan and default config the engine
// reduces exactly to the legacy always-succeeds protocol.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "fl/client.h"
#include "fl/defense.h"
#include "fl/fault.h"
#include "fl/server.h"
#include "runtime/virtual_clock.h"

namespace oasis::fl {

struct SimulationConfig {
  /// Clients selected per round (M ≤ N). 0 means "all clients".
  index_t clients_per_round = 0;
  std::uint64_t seed = 7;

  // --- Fault-tolerant collection semantics (virtual-clock time) ---
  /// Fraction of the M selected clients that must survive validation for
  /// the round to commit; ceil(quorum_fraction·M), at least 1 when > 0.
  /// 0 disables the quorum (a round with zero valid updates skips its SGD
  /// step instead of aborting).
  real quorum_fraction = 0.0;
  /// Collection attempts per client (1 initial + retries). Must be ≥ 1.
  index_t max_attempts = 3;
  /// Per-attempt reply deadline: replies arriving later are timeouts.
  runtime::VirtualClock::ticks deadline_ticks = 500;
  /// Extra wait inserted before each retry attempt (linear backoff:
  /// attempt k waits k·retry_backoff_ticks on top of the deadline).
  runtime::VirtualClock::ticks retry_backoff_ticks = 100;
  /// Nominal round-trip latency of a healthy reply.
  runtime::VirtualClock::ticks base_latency_ticks = 10;
  /// Strict mode: throw TimeoutError when any selected client is still
  /// missing after the last attempt (before quorum/aggregation run).
  bool fail_on_lost = false;
};

/// In-process federation of one server and N clients.
class Simulation {
 public:
  Simulation(std::unique_ptr<Server> server,
             std::vector<std::unique_ptr<Client>> clients,
             SimulationConfig config);

  /// Runs one protocol round; returns the ids of participating clients.
  /// Throws QuorumError (model rolled back bit-exactly) when fewer valid
  /// updates than the configured quorum survive collection + validation,
  /// and TimeoutError in strict mode when clients are lost. A client whose
  /// model-audit gate refuses the dispatched model (AuditError) is excluded
  /// for the round — no retry, since the same model re-refuses
  /// deterministically — and the round proceeds with the remaining cohort.
  std::vector<std::uint64_t> run_round();

  /// Runs `rounds` rounds, invoking `on_round` (if set) after each.
  void run(index_t rounds,
           const std::function<void(index_t round)>& on_round = {});

  /// Installs the seeded fault schedule applied between dispatch and
  /// collection. Replace with a default-constructed plan to disable.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Installs the client-side defense stack (clip / noise / secagg mask),
  /// applied to every update right after local training — inside the
  /// parallel region, before wire faults touch the payload. The stack is
  /// shared immutable state: its per-stage rng streams are pure functions of
  /// (stack seed, round, client), so results stay bit-identical at any
  /// thread count. The mask stage receives this round's selected cohort.
  /// nullptr (default) disables defenses.
  void set_defense_stack(DefenseStackPtr stack) { defense_ = std::move(stack); }
  [[nodiscard]] const DefenseStackPtr& defense_stack() const {
    return defense_;
  }

  /// The engine's deterministic clock (advanced only by run_round).
  [[nodiscard]] const runtime::VirtualClock& clock() const { return clock_; }

  Server& server() { return *server_; }
  [[nodiscard]] index_t num_clients() const { return clients_.size(); }
  Client& client(index_t i);

  // --- Checkpoint / resume -------------------------------------------------
  //
  // A snapshot captures EVERYTHING the next run_round reads: the global
  // model (params + buffers), the protocol round id, the fault-plan ticket
  // counter, the virtual clock, the selection RNG stream position, every
  // client's RNG stream position, and the full obs registry. Restoring it
  // therefore makes a resumed run bit-identical to one that never stopped,
  // at any thread count — the contract the crash harness proves. The one
  // exclusion: counters under the "ckpt.restore" prefix, which record the
  // restore itself (see ckpt/obs_state.h).

  /// Serializes the simulation into an "oasis.ckpt/v1" container buffer and
  /// bumps the `ckpt.save_total` counter (before capturing obs, so the
  /// snapshot already counts itself).
  [[nodiscard]] tensor::ByteBuffer encode_checkpoint();

  /// Validates `bytes` exhaustively and applies it. Throws CheckpointError
  /// (kStateMismatch when the snapshot belongs to a differently configured
  /// federation) and leaves live state untouched on validation failure.
  void restore_checkpoint(const tensor::ByteBuffer& bytes);

  /// encode_checkpoint() → manager.save(protocol round); returns the path.
  std::string save_checkpoint(ckpt::CheckpointManager& manager);

  /// Restores from the manager's newest VALID generation (corrupt newer
  /// generations are skipped, see CheckpointManager::load_latest_valid) and
  /// returns the protocol round to continue from. Throws CheckpointError
  /// {kNoValidGeneration} when the directory holds nothing loadable.
  std::uint64_t resume_from(ckpt::CheckpointManager& manager);

 private:
  void apply_snapshot(const ckpt::Snapshot& snap);
  std::unique_ptr<Server> server_;
  std::vector<std::unique_ptr<Client>> clients_;
  SimulationConfig config_;
  common::Rng rng_;
  FaultPlan fault_plan_;
  DefenseStackPtr defense_;
  runtime::VirtualClock clock_;
  /// Monotone count of rounds STARTED (aborted rounds included) — the fault
  /// plan's ticket, so a retried protocol round sees fresh faults.
  std::uint64_t round_tickets_ = 0;
};

}  // namespace oasis::fl
