// Round orchestration: wires server and clients into the iterative protocol
// of Section 2 (random M-of-N client selection per round).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fl/client.h"
#include "fl/server.h"

namespace oasis::fl {

struct SimulationConfig {
  /// Clients selected per round (M ≤ N). 0 means "all clients".
  index_t clients_per_round = 0;
  std::uint64_t seed = 7;
};

/// In-process federation of one server and N clients.
class Simulation {
 public:
  Simulation(std::unique_ptr<Server> server,
             std::vector<std::unique_ptr<Client>> clients,
             SimulationConfig config);

  /// Runs one protocol round; returns the ids of participating clients.
  std::vector<std::uint64_t> run_round();

  /// Runs `rounds` rounds, invoking `on_round` (if set) after each.
  void run(index_t rounds,
           const std::function<void(index_t round)>& on_round = {});

  Server& server() { return *server_; }
  [[nodiscard]] index_t num_clients() const { return clients_.size(); }
  Client& client(index_t i);

 private:
  std::unique_ptr<Server> server_;
  std::vector<std::unique_ptr<Client>> clients_;
  SimulationConfig config_;
  common::Rng rng_;
};

}  // namespace oasis::fl
