#include "metrics/accuracy.h"

#include <algorithm>

#include "common/error.h"

namespace oasis::metrics {

real accuracy(nn::Module& model, const data::InMemoryDataset& dataset,
              index_t eval_batch) {
  return top_k_accuracy(model, dataset, 1, eval_batch);
}

real top_k_accuracy(nn::Module& model, const data::InMemoryDataset& dataset,
                    index_t k, index_t eval_batch) {
  OASIS_CHECK(!dataset.empty() && k >= 1 && eval_batch >= 1);
  index_t correct = 0;
  std::vector<index_t> indices;
  for (index_t start = 0; start < dataset.size(); start += eval_batch) {
    const index_t end = std::min(start + eval_batch, dataset.size());
    indices.clear();
    for (index_t i = start; i < end; ++i) indices.push_back(i);
    const data::Batch batch = data::gather(dataset, indices);
    const tensor::Tensor logits =
        model.forward(batch.images, /*training=*/false);
    OASIS_CHECK(logits.rank() == 2 && logits.dim(0) == batch.size());
    const index_t classes = logits.dim(1);
    for (index_t b = 0; b < batch.size(); ++b) {
      // Count logits strictly greater than the true class's logit; the
      // prediction is top-k correct iff fewer than k classes beat it.
      const real target = logits.at2(b, batch.labels[b]);
      index_t beaten_by = 0;
      for (index_t c = 0; c < classes; ++c) {
        if (logits.at2(b, c) > target) ++beaten_by;
      }
      if (beaten_by < k) ++correct;
    }
  }
  return static_cast<real>(correct) / static_cast<real>(dataset.size());
}

}  // namespace oasis::metrics
