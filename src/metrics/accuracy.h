// Classification accuracy evaluation.
#pragma once

#include "data/dataset.h"
#include "nn/module.h"

namespace oasis::metrics {

/// Fraction of `dataset` examples whose argmax logit matches the label.
/// Runs the model in eval mode, in mini-batches of `eval_batch` for memory.
real accuracy(nn::Module& model, const data::InMemoryDataset& dataset,
              index_t eval_batch = 64);

/// Top-k variant (k=1 equals accuracy()).
real top_k_accuracy(nn::Module& model, const data::InMemoryDataset& dataset,
                    index_t k, index_t eval_batch = 64);

}  // namespace oasis::metrics
