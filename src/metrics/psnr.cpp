#include "metrics/psnr.h"

#include <cmath>

#include "tensor/shape.h"

namespace oasis::metrics {

real mse(const tensor::Tensor& a, const tensor::Tensor& b) {
  tensor::check_same_shape(a.shape(), b.shape(), "mse");
  OASIS_CHECK(a.size() > 0);
  real s = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (index_t i = 0; i < pa.size(); ++i) {
    const real d = pa[i] - pb[i];
    s += d * d;
  }
  return s / static_cast<real>(pa.size());
}

real psnr(const tensor::Tensor& reconstruction,
          const tensor::Tensor& original, real peak) {
  const real err = mse(reconstruction, original);
  if (err <= 0.0) return kPsnrCap;
  const real value = 10.0 * std::log10(peak * peak / err);
  return std::min(value, kPsnrCap);
}

real ssim_global(const tensor::Tensor& a, const tensor::Tensor& b) {
  tensor::check_same_shape(a.shape(), b.shape(), "ssim_global");
  OASIS_CHECK(a.rank() == 3);
  constexpr real c1 = 0.01 * 0.01, c2 = 0.03 * 0.03;
  const index_t channels = a.dim(0);
  const index_t hw = a.dim(1) * a.dim(2);
  real total = 0.0;
  for (index_t ch = 0; ch < channels; ++ch) {
    real ma = 0.0, mb = 0.0;
    for (index_t p = 0; p < hw; ++p) {
      ma += a.data()[ch * hw + p];
      mb += b.data()[ch * hw + p];
    }
    ma /= static_cast<real>(hw);
    mb /= static_cast<real>(hw);
    real va = 0.0, vb = 0.0, cov = 0.0;
    for (index_t p = 0; p < hw; ++p) {
      const real da = a.data()[ch * hw + p] - ma;
      const real db = b.data()[ch * hw + p] - mb;
      va += da * da;
      vb += db * db;
      cov += da * db;
    }
    va /= static_cast<real>(hw);
    vb /= static_cast<real>(hw);
    cov /= static_cast<real>(hw);
    total += ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) /
             ((ma * ma + mb * mb + c1) * (va + vb + c2));
  }
  return total / static_cast<real>(channels);
}

}  // namespace oasis::metrics
