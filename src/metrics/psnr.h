// Image-quality metrics: MSE, PSNR, SSIM-lite.
//
// PSNR is the paper's attack-success measure: reconstructions above ~120 dB
// are verbatim copies (limited only by floating-point error), 25-35 dB are
// visibly degraded, below ~20 dB the content is unrecognizable.
#pragma once

#include "tensor/tensor.h"

namespace oasis::metrics {

/// Values above this are clamped — an exactly-zero MSE would otherwise give
/// +inf. The cap sits just above the paper's "perfect reconstruction" band
/// (130-145 dB): the authors' float32 pipeline leaves ~1e-7 relative error
/// in a verbatim copy, whereas this double-precision pipeline often
/// reconstructs bit-exactly; capping at 150 dB keeps the two scales
/// comparable (anything at/above ~130 dB means "verbatim copy" either way).
inline constexpr real kPsnrCap = 150.0;

/// Mean squared error between same-shaped tensors.
real mse(const tensor::Tensor& a, const tensor::Tensor& b);

/// Peak signal-to-noise ratio in dB: 10·log10(peak² / MSE), clamped to
/// kPsnrCap. `peak` is the dynamic range (1.0 for our images).
real psnr(const tensor::Tensor& reconstruction, const tensor::Tensor& original,
          real peak = 1.0);

/// Mean structural similarity (global-statistics variant computed per
/// channel, averaged) in [-1, 1]. A secondary metric for ablation reporting.
real ssim_global(const tensor::Tensor& a, const tensor::Tensor& b);

}  // namespace oasis::metrics
