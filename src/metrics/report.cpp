#include "metrics/report.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace oasis::metrics {
namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string number_to_string(real v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

ExperimentReport::ExperimentReport(std::string experiment)
    : experiment_(std::move(experiment)) {}

void ExperimentReport::set_context(const std::string& key, Value value) {
  for (auto& cell : context_) {
    if (cell.first == key) {
      cell.second = std::move(value);
      return;
    }
  }
  context_.emplace_back(key, std::move(value));
}

void ExperimentReport::clear_context() { context_.clear(); }

void ExperimentReport::begin_row() { rows_.push_back(context_); }

void ExperimentReport::add(const std::string& key, Value value) {
  OASIS_CHECK_MSG(!rows_.empty(), "add() before begin_row()");
  rows_.back().emplace_back(key, std::move(value));
}

void ExperimentReport::add_box_row(const std::string& label,
                                   const BoxStats& stats) {
  begin_row();
  add("label", label);
  add("min", stats.min);
  add("q1", stats.q1);
  add("median", stats.median);
  add("q3", stats.q3);
  add("max", stats.max);
  add("mean", stats.mean);
  add("count", static_cast<real>(stats.count));
}

void ExperimentReport::write_csv(const std::string& path) const {
  // Column order: first-seen across all rows.
  std::vector<std::string> columns;
  for (const auto& row : rows_) {
    for (const auto& [key, value] : row) {
      if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
        columns.push_back(key);
      }
    }
  }
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << "experiment";
  for (const auto& c : columns) out << ',' << csv_escape(c);
  out << '\n';
  for (const auto& row : rows_) {
    out << csv_escape(experiment_);
    for (const auto& c : columns) {
      out << ',';
      const auto it =
          std::find_if(row.begin(), row.end(),
                       [&](const Cell& cell) { return cell.first == c; });
      if (it == row.end()) continue;
      if (const auto* s = std::get_if<std::string>(&it->second)) {
        out << csv_escape(*s);
      } else {
        out << number_to_string(std::get<real>(it->second));
      }
    }
    out << '\n';
  }
  if (!out) throw Error("write failed: " + path);
}

void ExperimentReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "  {\"experiment\": \"" << json_escape(experiment_) << '"';
    for (const auto& [key, value] : rows_[r]) {
      out << ", \"" << json_escape(key) << "\": ";
      if (const auto* s = std::get_if<std::string>(&value)) {
        out << '"' << json_escape(*s) << '"';
      } else {
        out << number_to_string(std::get<real>(value));
      }
    }
    out << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
  }
  out << "]\n";
  if (!out) throw Error("write failed: " + path);
}

}  // namespace oasis::metrics
