// Structured experiment reports: every bench prints human-readable tables
// AND persists machine-readable CSV/JSON under bench_out/, so downstream
// plotting (the paper's box plots) needs no stdout scraping.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "metrics/stats.h"

namespace oasis::metrics {

/// A flat table of rows with heterogeneous (string | number) cells. Rows may
/// have different column sets; writers emit the union of columns.
class ExperimentReport {
 public:
  using Value = std::variant<std::string, real>;

  explicit ExperimentReport(std::string experiment);

  /// Sets a context column applied to every subsequently added row
  /// (e.g. dataset=ImageNet, B=8). Re-setting a key overwrites it.
  void set_context(const std::string& key, Value value);
  void clear_context();

  /// Starts a new row from the current context.
  void begin_row();
  /// Adds a cell to the current row (begin_row must have been called).
  void add(const std::string& key, Value value);
  /// Convenience: one row holding a label plus a full box-stats summary.
  void add_box_row(const std::string& label, const BoxStats& stats);

  [[nodiscard]] index_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& experiment() const { return experiment_; }

  /// Writes RFC-4180-style CSV (quoted strings, '.'-decimal numbers).
  void write_csv(const std::string& path) const;
  /// Writes a JSON array of objects.
  void write_json(const std::string& path) const;

 private:
  using Cell = std::pair<std::string, Value>;
  using Row = std::vector<Cell>;

  std::string experiment_;
  Row context_;
  std::vector<Row> rows_;
};

}  // namespace oasis::metrics
