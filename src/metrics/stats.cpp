#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace oasis::metrics {
namespace {

real quantile(const std::vector<real>& sorted, real q) {
  const real pos = q * static_cast<real>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const real frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

BoxStats box_stats(std::vector<real> values) {
  OASIS_CHECK_MSG(!values.empty(), "box_stats of empty sample");
  std::sort(values.begin(), values.end());
  BoxStats s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile(values, 0.25);
  s.median = quantile(values, 0.5);
  s.q3 = quantile(values, 0.75);
  real sum = 0.0;
  for (const auto v : values) sum += v;
  s.mean = sum / static_cast<real>(values.size());
  return s;
}

std::string format_box_row(const std::string& label, const BoxStats& s) {
  std::ostringstream os;
  os << std::left << std::setw(18) << label << std::right << std::fixed
     << std::setprecision(2);
  for (const real v : {s.min, s.q1, s.median, s.q3, s.max, s.mean}) {
    os << std::setw(10) << v;
  }
  os << std::setw(8) << s.count;
  return os.str();
}

std::string box_row_header(const std::string& label_column) {
  std::ostringstream os;
  os << std::left << std::setw(18) << label_column << std::right;
  for (const char* c : {"min", "q1", "median", "q3", "max", "mean"}) {
    os << std::setw(10) << c;
  }
  os << std::setw(8) << "n";
  return os.str();
}

}  // namespace oasis::metrics
