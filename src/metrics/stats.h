// Distribution summaries matching the paper's box plots.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace oasis::metrics {

/// Five-number summary plus mean — one "box" of Figures 3/4/13 (the paper's
/// green triangle is the mean).
struct BoxStats {
  real min = 0.0;
  real q1 = 0.0;
  real median = 0.0;
  real q3 = 0.0;
  real max = 0.0;
  real mean = 0.0;
  index_t count = 0;
};

/// Computes the summary (linear-interpolated quantiles). Requires non-empty
/// input; the input vector is copied and sorted internally.
BoxStats box_stats(std::vector<real> values);

/// One formatted table row: "label  min q1 med q3 max mean n".
std::string format_box_row(const std::string& label, const BoxStats& stats);

/// Header matching format_box_row's columns.
std::string box_row_header(const std::string& label_column);

}  // namespace oasis::metrics
