#include "net/client.h"

#include <poll.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace oasis::net {

FlClient::FlClient(fl::Client& core, FlClientConfig config, TimeSource now)
    : core_(core),
      config_(config),
      now_(std::move(now)),
      decoder_(config.max_frame_bytes) {
  OASIS_CHECK_MSG(config_.max_attempts >= 1, "max_attempts must be >= 1");
  OASIS_CHECK_MSG(config_.backoff_ms >= 1, "backoff_ms must be >= 1");
  if (!now_) now_ = steady_now_ms;
}

FlClient::~FlClient() = default;

void FlClient::set_fault_hook(FaultHook hook) {
  fault_hook_ = std::move(hook);
}

void FlClient::set_defense_stack(fl::DefenseStackPtr stack) {
  defense_ = std::move(stack);
}

void FlClient::connect(std::string host, std::uint16_t port) {
  host_ = std::move(host);
  port_ = port;
  state_ = State::kBackoff;
  attempt_ = 0;
  next_connect_ms_ = 0;  // first attempt is immediate
}

std::uint64_t FlClient::backoff_wait() const {
  // Exponential: attempt k waits backoff_ms · 2^(k-1), capped. The shift is
  // clamped so a long outage cannot overflow the doubling before the cap
  // applies.
  const std::uint64_t doublings =
      std::min<std::uint64_t>(attempt_ > 0 ? attempt_ - 1 : 0, 20);
  std::uint64_t wait =
      std::min(config_.backoff_ms << doublings, config_.backoff_max_ms);
  if (config_.jitter_seed && wait > 1) {
    // Deterministic de-synchronization: a pure function of (seed, client,
    // attempt) — every client lands on a different phase after a server
    // restart, yet the same run replays the same schedule.
    common::Rng rng(*config_.jitter_seed ^
                    (config_.client_id * 0x9E3779B97F4A7C15ULL) ^
                    (static_cast<std::uint64_t>(attempt_) << 32));
    wait += static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wait / 2)));
  }
  return wait;
}

void FlClient::schedule_retry(std::uint64_t now) {
  static obs::Counter& retries = obs::counter("net.client.retries");
  static obs::Counter& attempts_c = obs::counter("net.reconnect.attempts");
  static obs::Counter& backoff_c =
      obs::counter("net.reconnect.backoff_ms_total");
  drop_connection();
  ++attempt_;
  if (attempt_ >= config_.max_attempts) {
    throw NetError(NetError::Reason::kRetryExhausted,
                   "client " + std::to_string(config_.client_id) + ": " +
                       std::to_string(attempt_) + " connection attempts");
  }
  retries.add(1);
  ++retries_;
  attempts_c.add(1);
  // A retry-after hint from the server's backpressure overrides the
  // exponential schedule — the server knows when the next admission opens.
  std::uint64_t wait;
  if (retry_hint_ms_) {
    wait = *retry_hint_ms_;
    retry_hint_ms_.reset();
  } else {
    wait = backoff_wait();
  }
  backoff_c.add(wait);
  backoff_total_ += wait;
  next_connect_ms_ = now + wait;
  state_ = State::kBackoff;
}

void FlClient::drop_connection() {
  sock_.close();
  decoder_ = FrameDecoder(config_.max_frame_bytes);
  outbox_.clear();
  outbox_off_ = 0;
  close_after_flush_ = false;
  replied_this_conn_ = false;
}

void FlClient::open_connection(std::uint64_t now) {
  static obs::Counter& connects = obs::counter("net.client.connects");
  static obs::Counter& resumes_c =
      obs::counter("net.reconnect.sessions_resumed");
  sock_ = tcp_connect(host_, port_);
  connects.add(1);
  state_ = State::kActive;
  last_activity_ms_ = now;
  next_heartbeat_ms_ = now + config_.heartbeat_ms;
  tensor::ByteBuffer opener;
  if (session_ && config_.enable_resume) {
    // The resume handshake carries the in-flight-update claim that resolves
    // the lost-ack ambiguity server-side.
    resumes_c.add(1);
    ++resumed_;
    opener = encode_resume(Resume{config_.client_id, last_round_,
                                  cache_.has_value(),
                                  cache_ ? cache_->round : 0});
  } else {
    opener = encode_hello(Hello{config_.client_id});
  }
  outbox_.insert(outbox_.end(), opener.begin(), opener.end());
  flush_outbox();
}

void FlClient::flush_outbox() {
  while (outbox_off_ < outbox_.size()) {
    const long put = write_some(sock_, outbox_.data() + outbox_off_,
                                outbox_.size() - outbox_off_);
    if (put == 0) return;  // kernel buffer full; resume next step
    outbox_off_ += static_cast<std::size_t>(put);
  }
  outbox_.clear();
  outbox_off_ = 0;
  if (close_after_flush_) {
    // The mid-frame truncation fault: the queued prefix is on the wire,
    // the rest never will be.
    drop_connection();
  }
}

void FlClient::resend_cached() {
  static obs::Counter& resends_c = obs::counter("net.reconnect.cached_resends");
  resends_c.add(1);
  ++resends_;
  outbox_.insert(outbox_.end(), cache_->frame.begin(), cache_->frame.end());
  replied_this_conn_ = true;
  flush_outbox();
}

void FlClient::handle_model(const fl::GlobalModelMessage& msg) {
  static obs::Counter& models = obs::counter("net.client.models_received");
  static obs::Counter& sent_c = obs::counter("net.client.updates_sent");
  static obs::Counter& dropped_c = obs::counter("net.client.updates_dropped");
  models.add(1);
  ++models_;
  if (cache_) {
    if (msg.round == cache_->round) {
      // A round this client already trained, re-dispatched: the server
      // restored a resting snapshot and re-opened it. Answer from the cache
      // — handle_round must not run twice for one round, or the local RNG
      // stream advances twice and the run stops being bit-identical to its
      // uninterrupted twin.
      resend_cached();
      return;
    }
    if (msg.round < cache_->round) return;  // stale dispatch; ignore
    cache_.reset();  // a newer round supersedes the in-flight one
  }
  fl::ClientUpdateMessage update;
  try {
    update = core_.handle_round(msg);
  } catch (const AuditError&) {
    // The audit gate refused the dispatched model. Graceful refusal = silent
    // non-reply: the session stays up (an honest client has nothing to
    // apologize for), the server's round deadline excludes us like a
    // straggler, and a re-dispatch of the same round re-refuses
    // deterministically — no cache entry is ever created.
    static obs::Counter& refused_c = obs::counter("net.client.rounds_refused");
    refused_c.add(1);
    ++refused_;
    return;
  }
  // Client-side defenses run before the fault hook and before framing, so
  // the wire — and the byte-exact frame cache — carry the defended update.
  if (defense_ && !defense_->empty()) defense_->apply(update);
  UpdateFault fault;
  if (fault_hook_) fault = fault_hook_(msg.round, update);
  switch (fault.action) {
    case UpdateFault::Action::kDrop:
      // Dropout: vanish without a word; the server's round deadline (or the
      // rest of the cohort) moves on without us. The session is forgotten
      // too — the faulty client rejoins with a plain hello and is bounced
      // until the round closes, never resuming into the round it abandoned.
      dropped_c.add(1);
      session_ = false;
      cache_.reset();
      drop_connection();
      state_ = State::kBackoff;
      next_connect_ms_ = now_() + config_.backoff_ms;
      return;
    case UpdateFault::Action::kSend:
    case UpdateFault::Action::kDuplicate:
    case UpdateFault::Action::kPartialClose: {
      const auto frame = encode_update(update);
      if (fault.action == UpdateFault::Action::kPartialClose) {
        outbox_.insert(outbox_.end(), frame.begin(),
                       frame.begin() +
                           static_cast<std::ptrdiff_t>(frame.size() / 2));
        close_after_flush_ = true;
        // Like kDrop: a truncating client does not get to resume and
        // complete the round it sabotaged.
        session_ = false;
        cache_.reset();
      } else {
        outbox_.insert(outbox_.end(), frame.begin(), frame.end());
        if (fault.action == UpdateFault::Action::kDuplicate) {
          outbox_.insert(outbox_.end(), frame.begin(), frame.end());
        }
        // Cache the frame exactly as sent: a reconnect retransmits these
        // bytes, so the server-side fold sees identical input either way.
        cache_ = CachedUpdate{msg.round, frame};
      }
      sent_c.add(1);
      ++sent_;
      replied_this_conn_ = true;
      flush_outbox();
      if (state_ == State::kActive && !sock_.valid()) {
        // PartialClose completed inline; rejoin via backoff.
        state_ = State::kBackoff;
        next_connect_ms_ = now_() + config_.backoff_ms;
      }
      return;
    }
  }
}

void FlClient::handle_resume_ack(const ResumeAck& ack) {
  session_ = true;
  last_round_ = ack.round;
  switch (ack.status) {
    case ResumeStatus::kAccepted:
      // The update is durably folded server-side; retransmitting would just
      // bounce off the duplicate screen. Hold the cache until the round's
      // result lands (a second crash may still rewind past this fold's
      // snapshot only if it was never saved — in which case the server
      // answers kPending next time).
      replied_this_conn_ = true;
      return;
    case ResumeStatus::kPending:
      // Wanted and not held. If the cache matches the open round, those
      // exact bytes go back on the wire; otherwise the server is already
      // re-dispatching the model and handle_model takes it from there.
      if (cache_ && cache_->round == ack.round) resend_cached();
      return;
    case ResumeStatus::kExpired:
      // The round the cache targeted closed without us (committed before
      // the crash, or sealed by deadline). Either way it is unusable now.
      cache_.reset();
      return;
    case ResumeStatus::kNone:
      // Parked between rounds. The cache, if any, survives: a resting
      // restore re-opens the same round and the cached bytes answer its
      // re-dispatch.
      return;
  }
}

void FlClient::handle_frame(const Frame& frame, std::uint64_t now) {
  static obs::Counter& bounced_c = obs::counter("net.client.retry_after");
  static obs::Counter& committed_c = obs::counter("net.client.rounds_committed");
  // Any well-formed frame proves the server is alive, so the attempt budget
  // becomes a bound on CONSECUTIVE failures without server contact — a
  // retry-after bounce storm during a long round cannot exhaust it, while a
  // dead endpoint (connection refused over and over) still does.
  attempt_ = 0;
  switch (frame.type) {
    case FrameType::kWelcome: {
      const Welcome welcome = decode_welcome(frame.body);
      session_ = true;
      last_round_ = welcome.round;
      return;
    }
    case FrameType::kModel:
      handle_model(decode_model(frame.body));
      return;
    case FrameType::kRetryAfter: {
      // Backpressure: the federation is mid-round or full. Not a failure —
      // park ourselves for the hinted backoff and try again.
      bounced_c.add(1);
      ++bounced_;
      retry_hint_ms_ = decode_retry_after(frame.body);
      schedule_retry(now);
      return;
    }
    case FrameType::kRoundResult: {
      const RoundResult result = decode_round_result(frame.body);
      if (cache_ && result.round >= cache_->round) cache_.reset();
      last_round_ = result.round + 1;
      if (replied_this_conn_) {
        ++completed_;
        replied_this_conn_ = false;
      }
      if (result.committed) {
        committed_c.add(1);
        ++committed_;
      }
      return;
    }
    case FrameType::kResumeAck:
      handle_resume_ack(decode_resume_ack(frame.body));
      return;
    case FrameType::kHeartbeat:
      // Liveness only; the read that delivered it already refreshed
      // last_activity_ms_, which is the whole point.
      return;
    case FrameType::kVersionReject: {
      // Fatal, not retryable: the endpoint speaks a different protocol
      // version, and reconnecting will only be rejected again.
      const VersionReject reject = decode_version_reject(frame.body);
      throw NetError(NetError::Reason::kBadVersion,
                     "server rejected protocol version " +
                         std::to_string(kProtocolVersion) + "; it speaks " +
                         std::to_string(reject.supported_version));
    }
    case FrameType::kGoodbye:
      goodbye_ = true;
      drop_connection();
      state_ = State::kDone;
      return;
    case FrameType::kHello:
    case FrameType::kUpdate:
    case FrameType::kResume:
      // Client-to-server vocabulary arriving at the client.
      throw NetError(NetError::Reason::kProtocol,
                     std::string("unexpected ") + to_string(frame.type) +
                         " frame from server");
  }
}

void FlClient::pump_active(int timeout_ms, std::uint64_t now) {
  pollfd pfd{sock_.fd(), POLLIN, 0};
  if (outbox_off_ < outbox_.size()) pfd.events |= POLLOUT;
  ::poll(&pfd, 1, timeout_ms);

  try {
    if (outbox_off_ < outbox_.size()) flush_outbox();
    if (state_ != State::kActive) return;  // flush may have dropped us
    std::uint8_t buf[16 * 1024];
    while (sock_.valid()) {
      const long got = read_some(sock_, buf, sizeof(buf));
      if (got == 0) break;  // drained
      if (got < 0) {
        // Peer closed. Normal after kGoodbye; otherwise reconnect.
        if (goodbye_) {
          drop_connection();
          state_ = State::kDone;
        } else {
          schedule_retry(now);
        }
        return;
      }
      last_activity_ms_ = now;
      decoder_.feed(buf, static_cast<std::size_t>(got));
      while (auto frame = decoder_.next()) {
        handle_frame(*frame, now);
        if (state_ != State::kActive) return;
      }
    }
    if (config_.heartbeat_ms > 0 && state_ == State::kActive &&
        now >= next_heartbeat_ms_) {
      static obs::Counter& heartbeats = obs::counter("net.heartbeat.sent");
      next_heartbeat_ms_ = now + config_.heartbeat_ms;
      heartbeats.add(1);
      const auto hb = encode_heartbeat();
      outbox_.insert(outbox_.end(), hb.begin(), hb.end());
      flush_outbox();
    }
    if (state_ == State::kActive &&
        now - last_activity_ms_ >= config_.io_timeout_ms) {
      // No bytes (not even a heartbeat) inside the deadline: the peer may be
      // a dead-but-open socket. Reconnect — resuming beats hanging.
      schedule_retry(now);
    }
  } catch (const NetError& e) {
    if (e.reason() == NetError::Reason::kRetryExhausted ||
        e.reason() == NetError::Reason::kBadVersion) {
      throw;
    }
    obs::counter(std::string("net.client.error.") +
                 NetError::reason_name(e.reason()))
        .add(1);
    schedule_retry(now);
  }
}

bool FlClient::step(int timeout_ms) {
  OASIS_CHECK_MSG(!host_.empty(), "connect() has not been called");
  if (state_ == State::kDone) return false;
  const std::uint64_t now = now_();
  if (state_ == State::kBackoff) {
    if (now < next_connect_ms_) {
      if (timeout_ms > 0) {
        const std::uint64_t remaining = next_connect_ms_ - now;
        ::poll(nullptr, 0,
               static_cast<int>(std::min<std::uint64_t>(
                   remaining, static_cast<std::uint64_t>(timeout_ms))));
      }
      return true;
    }
    try {
      open_connection(now);
    } catch (const NetError&) {
      schedule_retry(now);
      return true;
    }
  }
  if (state_ == State::kActive) pump_active(timeout_ms, now);
  return state_ != State::kDone;
}

std::uint64_t FlClient::run(const std::string& host, std::uint16_t port) {
  connect(host, port);
  while (step(/*timeout_ms=*/20)) {
  }
  return completed_;
}

}  // namespace oasis::net
