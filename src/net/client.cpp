#include "net/client.h"

#include <poll.h>

#include <algorithm>

#include "common/error.h"
#include "obs/obs.h"

namespace oasis::net {

FlClient::FlClient(fl::Client& core, FlClientConfig config, TimeSource now)
    : core_(core),
      config_(config),
      now_(std::move(now)),
      decoder_(config.max_frame_bytes) {
  OASIS_CHECK_MSG(config_.max_attempts >= 1, "max_attempts must be >= 1");
  if (!now_) now_ = steady_now_ms;
}

FlClient::~FlClient() = default;

void FlClient::set_fault_hook(FaultHook hook) {
  fault_hook_ = std::move(hook);
}

void FlClient::connect(std::string host, std::uint16_t port) {
  host_ = std::move(host);
  port_ = port;
  state_ = State::kBackoff;
  attempt_ = 0;
  next_connect_ms_ = 0;  // first attempt is immediate
}

void FlClient::schedule_retry(std::uint64_t now) {
  static obs::Counter& retries = obs::counter("net.client.retries");
  drop_connection();
  ++attempt_;
  if (attempt_ >= config_.max_attempts) {
    throw NetError(NetError::Reason::kRetryExhausted,
                   "client " + std::to_string(config_.client_id) + ": " +
                       std::to_string(attempt_) + " connection attempts");
  }
  retries.add(1);
  ++retries_;
  // Linear backoff like the round engine's straggler schedule; a retry-after
  // hint from the server's backpressure overrides it.
  const std::uint64_t wait = retry_hint_ms_
                                 ? *retry_hint_ms_
                                 : static_cast<std::uint64_t>(attempt_) *
                                       config_.backoff_ms;
  retry_hint_ms_.reset();
  next_connect_ms_ = now + wait;
  state_ = State::kBackoff;
}

void FlClient::drop_connection() {
  sock_.close();
  decoder_ = FrameDecoder(config_.max_frame_bytes);
  outbox_.clear();
  outbox_off_ = 0;
  close_after_flush_ = false;
  replied_this_conn_ = false;
}

void FlClient::open_connection(std::uint64_t now) {
  static obs::Counter& connects = obs::counter("net.client.connects");
  sock_ = tcp_connect(host_, port_);
  connects.add(1);
  state_ = State::kActive;
  last_activity_ms_ = now;
  const auto hello = encode_hello(Hello{config_.client_id});
  outbox_.insert(outbox_.end(), hello.begin(), hello.end());
  flush_outbox();
}

void FlClient::flush_outbox() {
  while (outbox_off_ < outbox_.size()) {
    const long put = write_some(sock_, outbox_.data() + outbox_off_,
                                outbox_.size() - outbox_off_);
    if (put == 0) return;  // kernel buffer full; resume next step
    outbox_off_ += static_cast<std::size_t>(put);
  }
  outbox_.clear();
  outbox_off_ = 0;
  if (close_after_flush_) {
    // The mid-frame truncation fault: the queued prefix is on the wire,
    // the rest never will be.
    drop_connection();
  }
}

void FlClient::handle_model(const fl::GlobalModelMessage& msg) {
  static obs::Counter& models = obs::counter("net.client.models_received");
  static obs::Counter& sent_c = obs::counter("net.client.updates_sent");
  static obs::Counter& dropped_c = obs::counter("net.client.updates_dropped");
  models.add(1);
  ++models_;
  fl::ClientUpdateMessage update = core_.handle_round(msg);
  UpdateFault fault;
  if (fault_hook_) fault = fault_hook_(msg.round, update);
  switch (fault.action) {
    case UpdateFault::Action::kDrop:
      // Dropout: vanish without a word; the server's round deadline (or the
      // rest of the cohort) moves on without us. Reconnect for a later
      // round.
      dropped_c.add(1);
      drop_connection();
      state_ = State::kBackoff;
      next_connect_ms_ = now_() + config_.backoff_ms;
      return;
    case UpdateFault::Action::kSend:
    case UpdateFault::Action::kDuplicate:
    case UpdateFault::Action::kPartialClose: {
      const auto frame = encode_update(update);
      if (fault.action == UpdateFault::Action::kPartialClose) {
        outbox_.insert(outbox_.end(), frame.begin(),
                       frame.begin() +
                           static_cast<std::ptrdiff_t>(frame.size() / 2));
        close_after_flush_ = true;
      } else {
        outbox_.insert(outbox_.end(), frame.begin(), frame.end());
        if (fault.action == UpdateFault::Action::kDuplicate) {
          outbox_.insert(outbox_.end(), frame.begin(), frame.end());
        }
      }
      sent_c.add(1);
      ++sent_;
      replied_this_conn_ = true;
      flush_outbox();
      if (state_ == State::kActive && !sock_.valid()) {
        // PartialClose completed inline; rejoin via backoff.
        state_ = State::kBackoff;
        next_connect_ms_ = now_() + config_.backoff_ms;
      }
      return;
    }
  }
}

void FlClient::handle_frame(const Frame& frame, std::uint64_t now) {
  static obs::Counter& bounced_c = obs::counter("net.client.retry_after");
  static obs::Counter& committed_c = obs::counter("net.client.rounds_committed");
  // Any well-formed frame proves the server is alive, so the attempt budget
  // becomes a bound on CONSECUTIVE failures without server contact — a
  // retry-after bounce storm during a long round cannot exhaust it, while a
  // dead endpoint (connection refused over and over) still does.
  attempt_ = 0;
  switch (frame.type) {
    case FrameType::kWelcome: {
      (void)decode_welcome(frame.body);  // validates magic/version
      return;
    }
    case FrameType::kModel:
      handle_model(decode_model(frame.body));
      return;
    case FrameType::kRetryAfter: {
      // Backpressure: the federation is mid-round or full. Not a failure —
      // park ourselves for the hinted backoff and try again.
      bounced_c.add(1);
      ++bounced_;
      retry_hint_ms_ = decode_retry_after(frame.body);
      schedule_retry(now);
      return;
    }
    case FrameType::kRoundResult: {
      const RoundResult result = decode_round_result(frame.body);
      if (replied_this_conn_) {
        ++completed_;
        replied_this_conn_ = false;
      }
      if (result.committed) {
        committed_c.add(1);
        ++committed_;
      }
      return;
    }
    case FrameType::kGoodbye:
      goodbye_ = true;
      drop_connection();
      state_ = State::kDone;
      return;
    case FrameType::kHello:
    case FrameType::kUpdate:
      // Client-to-server vocabulary arriving at the client.
      throw NetError(NetError::Reason::kProtocol,
                     std::string("unexpected ") + to_string(frame.type) +
                         " frame from server");
  }
}

void FlClient::pump_active(int timeout_ms, std::uint64_t now) {
  pollfd pfd{sock_.fd(), POLLIN, 0};
  if (outbox_off_ < outbox_.size()) pfd.events |= POLLOUT;
  ::poll(&pfd, 1, timeout_ms);

  try {
    if (outbox_off_ < outbox_.size()) flush_outbox();
    if (state_ != State::kActive) return;  // flush may have dropped us
    std::uint8_t buf[16 * 1024];
    while (sock_.valid()) {
      const long got = read_some(sock_, buf, sizeof(buf));
      if (got == 0) break;  // drained
      if (got < 0) {
        // Peer closed. Normal after kGoodbye; otherwise reconnect.
        if (goodbye_) {
          drop_connection();
          state_ = State::kDone;
        } else {
          schedule_retry(now);
        }
        return;
      }
      last_activity_ms_ = now;
      decoder_.feed(buf, static_cast<std::size_t>(got));
      while (auto frame = decoder_.next()) {
        handle_frame(*frame, now);
        if (state_ != State::kActive) return;
      }
    }
    if (state_ == State::kActive &&
        now - last_activity_ms_ >= config_.io_timeout_ms) {
      schedule_retry(now);
    }
  } catch (const NetError& e) {
    if (e.reason() == NetError::Reason::kRetryExhausted) throw;
    obs::counter(std::string("net.client.error.") +
                 NetError::reason_name(e.reason()))
        .add(1);
    schedule_retry(now);
  }
}

bool FlClient::step(int timeout_ms) {
  OASIS_CHECK_MSG(!host_.empty(), "connect() has not been called");
  if (state_ == State::kDone) return false;
  const std::uint64_t now = now_();
  if (state_ == State::kBackoff) {
    if (now < next_connect_ms_) {
      if (timeout_ms > 0) {
        const std::uint64_t remaining = next_connect_ms_ - now;
        ::poll(nullptr, 0,
               static_cast<int>(std::min<std::uint64_t>(
                   remaining, static_cast<std::uint64_t>(timeout_ms))));
      }
      return true;
    }
    try {
      open_connection(now);
    } catch (const NetError&) {
      schedule_retry(now);
      return true;
    }
  }
  if (state_ == State::kActive) pump_active(timeout_ms, now);
  return state_ != State::kDone;
}

std::uint64_t FlClient::run(const std::string& host, std::uint16_t port) {
  connect(host, port);
  while (step(/*timeout_ms=*/20)) {
  }
  return completed_;
}

}  // namespace oasis::net
