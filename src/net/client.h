// net::FlClient — drives an fl::Client's training over a socket.
//
// A steppable state machine mirroring net::FlServer: step() connects (with
// exponential retry backoff and deterministic seeded jitter, honoring
// retry-after hints from the server's backpressure), handshakes, trains on
// each dispatched model via fl::Client::handle_round, and uploads the
// resulting update, until the server says goodbye or the retry budget is
// exhausted.
//
// Session resumption (DESIGN.md §5j): after the first welcome the client
// holds a session; every reconnect replaces the hello with a kResume frame
// carrying its id and — crucially — whether it still holds a computed update
// that was never acknowledged. The server's ResumeAck resolves the lost-ack
// ambiguity: kAccepted (the update is durably folded; do not retransmit),
// kPending (retransmit the CACHED frame bytes), or kExpired (the round
// closed; discard). The client never calls handle_round twice for the same
// round — retraining would advance the local RNG stream a second time and
// break the bit-identity contract — so a re-dispatched round it already
// trained is answered from the cache, byte-for-byte what it sent the first
// time.
//
// Liveness: the client enforces a no-progress deadline (io_timeout_ms) and
// reconnects through a dead-but-open socket instead of hanging; a slow but
// alive server keeps the session up by heartbeating (FlServerConfig::
// heartbeat_ms). With heartbeat_ms set here, the client heartbeats too, so
// the server's idle deadline tolerates long client-side stalls.
//
// Determinism: all deadlines and backoff go through the injected TimeSource
// (the runtime::VirtualClock idiom) — a test advancing a tick counter by
// hand observes the exact same reconnect schedule on every run, and the
// backoff jitter is a pure function of (jitter_seed, client_id, attempt),
// never of wall time. The blocking run() wraps step() with the steady clock
// for real deployments.
//
// Fault injection: the load bench installs a FaultHook that inspects (and
// may mutate, e.g. via fl::FaultPlan::apply) each outgoing update and picks
// a delivery action — send faithfully, drop the connection without sending
// (dropout), send twice (duplicate delivery), or close mid-frame (the
// truncation fault the server's decoder must survive). A faulty delivery
// also forgets the session: the client rejoins with a plain hello and sits
// out the rest of the round under the server's backpressure, exactly like
// the pre-resume dropout behavior the fault tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fl/client.h"
#include "fl/defense.h"
#include "net/frame.h"
#include "net/server.h"  // TimeSource
#include "net/socket.h"

namespace oasis::net {

/// Delivery decision for one outgoing update.
struct UpdateFault {
  enum class Action : std::uint8_t {
    kSend,          // deliver faithfully
    kDrop,          // say nothing, close, reconnect later (dropout)
    kDuplicate,     // deliver the same framed update twice, back to back
    kPartialClose,  // deliver half the frame's bytes, then close (truncation)
  };
  Action action = Action::kSend;
};

/// Invoked with every computed update before transmission; may mutate the
/// message in place (corruption/poison faults reuse fl::FaultPlan::apply).
using FaultHook =
    std::function<UpdateFault(std::uint64_t round, fl::ClientUpdateMessage&)>;

struct FlClientConfig {
  /// Wire-level client id presented in the hello (must match the id space
  /// the server's selection permutation is defined over).
  std::uint64_t client_id = 0;
  /// CONSECUTIVE connection attempts without server contact before run()
  /// gives up with NetError{kRetryExhausted}. Any well-formed frame (even a
  /// retry-after bounce) resets the budget; only a dead endpoint — refused
  /// connections or silence, over and over — exhausts it.
  index_t max_attempts = 64;
  /// Exponential backoff base: attempt k waits min(backoff_ms · 2^(k-1),
  /// backoff_max_ms), plus jitter when seeded. A retry-after frame
  /// overrides the wait with the server's hint.
  std::uint64_t backoff_ms = 10;
  /// Ceiling on one backoff wait (pre-jitter).
  std::uint64_t backoff_max_ms = 2'000;
  /// When set, each wait adds a deterministic jitter in [0, wait/2] drawn
  /// from this seed, the client id, and the attempt number — a restarted
  /// server is not greeted by a synchronized thundering herd, yet the
  /// schedule is still replayable. Unset = no jitter.
  std::optional<std::uint64_t> jitter_seed;
  /// No-progress deadline while connected; expiry forces a reconnect.
  std::uint64_t io_timeout_ms = 30'000;
  /// Interval between client-sent kHeartbeat frames while connected and
  /// handshaked. 0 = no heartbeats.
  std::uint64_t heartbeat_ms = 0;
  /// Reconnects use the kResume session handshake once a session exists.
  /// Disabled, every reconnect is a fresh hello (pre-§5j behavior).
  bool enable_resume = true;
  /// Hard ceiling on one inbound frame body.
  std::size_t max_frame_bytes = kDefaultMaxBodyBytes;
};

class FlClient {
 public:
  /// `core` must outlive the FlClient. `now` defaults to the steady clock.
  FlClient(fl::Client& core, FlClientConfig config, TimeSource now = {});
  ~FlClient();

  FlClient(const FlClient&) = delete;
  FlClient& operator=(const FlClient&) = delete;

  /// Installs the delivery-fault hook (load bench; default = send all).
  void set_fault_hook(FaultHook hook);

  /// Installs the client-side defense stack, applied to every freshly
  /// trained update before the fault hook and before framing — so the wire
  /// (and the frame cache) carries the defended bytes. A mask stage needs
  /// the stack's static cohort (DefenseStack::set_static_cohort): the wire
  /// protocol does not announce the round's membership. nullptr disables.
  ///
  /// Interacts with the audit gate (fl::Client::set_model_auditor): when
  /// the core refuses a dispatched model (AuditError), this client simply
  /// never replies for that round — the server's deadline excludes it like
  /// a straggler, and a re-dispatch re-refuses deterministically. The
  /// refusal bumps net.client.rounds_refused.
  void set_defense_stack(fl::DefenseStackPtr stack);

  /// Sets the federation endpoint and arms the first connection attempt.
  void connect(std::string host, std::uint16_t port);

  /// One iteration: connect/reconnect when due, pump socket IO, train on any
  /// dispatched model, queue the update. Returns false once the server said
  /// goodbye and the connection drained. Throws NetError{kRetryExhausted}
  /// when the attempt budget runs out and NetError{kBadVersion} when the
  /// server rejects this protocol version (fatal — no amount of retrying
  /// fixes an incompatible dialect). `timeout_ms` bounds the internal
  /// poll/backoff sleep; pass 0 under a virtual TimeSource.
  bool step(int timeout_ms);

  /// connect() + step() until goodbye. Returns rounds participated in (an
  /// update was uploaded and the round's result was received).
  std::uint64_t run(const std::string& host, std::uint16_t port);

  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rounds_committed() const { return committed_; }
  [[nodiscard]] std::uint64_t models_received() const { return models_; }
  [[nodiscard]] std::uint64_t updates_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t retry_after_bounces() const { return bounced_; }
  /// Reconnects that used the kResume session handshake.
  [[nodiscard]] std::uint64_t sessions_resumed() const { return resumed_; }
  /// Updates answered from the cache instead of retraining (lost-ack
  /// recoveries and resting-restore re-dispatches).
  [[nodiscard]] std::uint64_t cached_resends() const { return resends_; }
  /// Rounds the audit gate refused (no update was ever produced or sent).
  [[nodiscard]] std::uint64_t rounds_refused() const { return refused_; }
  /// Total milliseconds spent in backoff waits (jitter included).
  [[nodiscard]] std::uint64_t backoff_ms_total() const { return backoff_total_; }
  [[nodiscard]] bool finished() const { return state_ == State::kDone; }

 private:
  enum class State : std::uint8_t {
    kBackoff,  // disconnected, waiting for next_connect_ms_
    kActive,   // connected (hello/resume queued), serving frames
    kDone,     // goodbye received, socket drained
  };

  /// The trained-and-encoded update for one round, byte-for-byte as first
  /// sent. Held until the server acknowledges the round's outcome, so a
  /// reconnect can retransmit without retraining.
  struct CachedUpdate {
    std::uint64_t round = 0;
    tensor::ByteBuffer frame;
  };

  void schedule_retry(std::uint64_t now);
  [[nodiscard]] std::uint64_t backoff_wait() const;
  void open_connection(std::uint64_t now);
  void pump_active(int timeout_ms, std::uint64_t now);
  void handle_frame(const Frame& frame, std::uint64_t now);
  void handle_model(const fl::GlobalModelMessage& msg);
  void handle_resume_ack(const ResumeAck& ack);
  void resend_cached();
  void flush_outbox();
  void drop_connection();

  fl::Client& core_;
  FlClientConfig config_;
  TimeSource now_;
  FaultHook fault_hook_;
  fl::DefenseStackPtr defense_;
  std::string host_;
  std::uint16_t port_ = 0;
  State state_ = State::kBackoff;
  Socket sock_;
  FrameDecoder decoder_;
  tensor::ByteBuffer outbox_;
  std::size_t outbox_off_ = 0;
  bool close_after_flush_ = false;
  bool goodbye_ = false;
  index_t attempt_ = 0;
  std::uint64_t next_connect_ms_ = 0;
  std::uint64_t last_activity_ms_ = 0;
  std::uint64_t next_heartbeat_ms_ = 0;
  std::optional<std::uint64_t> retry_hint_ms_;
  bool session_ = false;             // a welcome/resume-ack has been seen
  std::uint64_t last_round_ = 0;     // latest round id the server reported
  std::optional<CachedUpdate> cache_;
  std::uint64_t completed_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t models_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t bounced_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t backoff_total_ = 0;
  bool replied_this_conn_ = false;
};

}  // namespace oasis::net
