// net::FlClient — drives an fl::Client's training over a socket.
//
// A steppable state machine mirroring net::FlServer: step() connects (with
// linear retry backoff, honoring retry-after hints from the server's
// backpressure), handshakes, trains on each dispatched model via
// fl::Client::handle_round, and uploads the resulting update, until the
// server says goodbye or the retry budget is exhausted.
//
// Determinism: all deadlines and backoff go through the injected TimeSource
// (the runtime::VirtualClock idiom) — a test advancing a tick counter by
// hand observes the exact same reconnect schedule on every run. The blocking
// run() wraps step() with the steady clock for real deployments.
//
// Fault injection: the load bench installs a FaultHook that inspects (and
// may mutate, e.g. via fl::FaultPlan::apply) each outgoing update and picks
// a delivery action — send faithfully, drop the connection without sending
// (dropout), send twice (duplicate delivery), or close mid-frame (the
// truncation fault the server's decoder must survive).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fl/client.h"
#include "net/frame.h"
#include "net/server.h"  // TimeSource
#include "net/socket.h"

namespace oasis::net {

/// Delivery decision for one outgoing update.
struct UpdateFault {
  enum class Action : std::uint8_t {
    kSend,          // deliver faithfully
    kDrop,          // say nothing, close, reconnect later (dropout)
    kDuplicate,     // deliver the same framed update twice, back to back
    kPartialClose,  // deliver half the frame's bytes, then close (truncation)
  };
  Action action = Action::kSend;
};

/// Invoked with every computed update before transmission; may mutate the
/// message in place (corruption/poison faults reuse fl::FaultPlan::apply).
using FaultHook =
    std::function<UpdateFault(std::uint64_t round, fl::ClientUpdateMessage&)>;

struct FlClientConfig {
  /// Wire-level client id presented in the hello (must match the id space
  /// the server's selection permutation is defined over).
  std::uint64_t client_id = 0;
  /// CONSECUTIVE connection attempts without server contact before run()
  /// gives up with NetError{kRetryExhausted}. Any well-formed frame (even a
  /// retry-after bounce) resets the budget; only a dead endpoint — refused
  /// connections or silence, over and over — exhausts it.
  index_t max_attempts = 64;
  /// Linear backoff base: attempt k waits k·backoff_ms (a retry-after frame
  /// overrides the wait with the server's hint).
  std::uint64_t backoff_ms = 10;
  /// No-progress deadline while connected; expiry forces a reconnect.
  std::uint64_t io_timeout_ms = 30'000;
  /// Hard ceiling on one inbound frame body.
  std::size_t max_frame_bytes = kDefaultMaxBodyBytes;
};

class FlClient {
 public:
  /// `core` must outlive the FlClient. `now` defaults to the steady clock.
  FlClient(fl::Client& core, FlClientConfig config, TimeSource now = {});
  ~FlClient();

  FlClient(const FlClient&) = delete;
  FlClient& operator=(const FlClient&) = delete;

  /// Installs the delivery-fault hook (load bench; default = send all).
  void set_fault_hook(FaultHook hook);

  /// Sets the federation endpoint and arms the first connection attempt.
  void connect(std::string host, std::uint16_t port);

  /// One iteration: connect/reconnect when due, pump socket IO, train on any
  /// dispatched model, queue the update. Returns false once the server said
  /// goodbye and the connection drained. Throws NetError{kRetryExhausted}
  /// when the attempt budget runs out. `timeout_ms` bounds the internal
  /// poll/backoff sleep; pass 0 under a virtual TimeSource.
  bool step(int timeout_ms);

  /// connect() + step() until goodbye. Returns rounds participated in (an
  /// update was uploaded and the round's result was received).
  std::uint64_t run(const std::string& host, std::uint16_t port);

  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rounds_committed() const { return committed_; }
  [[nodiscard]] std::uint64_t models_received() const { return models_; }
  [[nodiscard]] std::uint64_t updates_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t retry_after_bounces() const { return bounced_; }
  [[nodiscard]] bool finished() const { return state_ == State::kDone; }

 private:
  enum class State : std::uint8_t {
    kBackoff,  // disconnected, waiting for next_connect_ms_
    kActive,   // connected (hello queued), serving frames
    kDone,     // goodbye received, socket drained
  };

  void schedule_retry(std::uint64_t now);
  void open_connection(std::uint64_t now);
  void pump_active(int timeout_ms, std::uint64_t now);
  void handle_frame(const Frame& frame, std::uint64_t now);
  void handle_model(const fl::GlobalModelMessage& msg);
  void flush_outbox();
  void drop_connection();

  fl::Client& core_;
  FlClientConfig config_;
  TimeSource now_;
  FaultHook fault_hook_;
  std::string host_;
  std::uint16_t port_ = 0;
  State state_ = State::kBackoff;
  Socket sock_;
  FrameDecoder decoder_;
  tensor::ByteBuffer outbox_;
  std::size_t outbox_off_ = 0;
  bool close_after_flush_ = false;
  bool goodbye_ = false;
  index_t attempt_ = 0;
  std::uint64_t next_connect_ms_ = 0;
  std::uint64_t last_activity_ms_ = 0;
  std::optional<std::uint64_t> retry_hint_ms_;
  std::uint64_t completed_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t models_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t bounced_ = 0;
  bool replied_this_conn_ = false;
};

}  // namespace oasis::net
