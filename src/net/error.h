// Typed errors of the oasis::net serving layer.
//
// Every way a peer (or the wire) can misbehave maps to one NetError reason,
// so the frame decoder's fuzz sweep can assert "typed error, never a crash",
// the server can tally `net.frame.error.<reason>` counters without string
// matching, and callers can distinguish retryable conditions (kRetryAfter,
// kClosed) from protocol violations.
#pragma once

#include <string>

#include "common/error.h"

namespace oasis::net {

/// Raised on malformed frames, protocol violations, socket failures, and
/// exhausted retry budgets. Subclasses oasis::Error so existing catch sites
/// that treat library errors uniformly keep working.
class NetError : public Error {
 public:
  enum class Reason {
    kOversizedFrame,   // length prefix exceeds the configured frame budget
    kBadFrameType,     // type byte outside the protocol's vocabulary
    kTruncatedFrame,   // connection closed mid-frame (drop-mid-frame fault)
    kMalformedFrame,   // frame body too short / trailing bytes for its type
    kBadMagic,         // handshake carried the wrong protocol magic
    kBadVersion,       // handshake carried an unsupported protocol version
    kProtocol,         // well-formed frame arriving in the wrong state
    kClosed,           // peer closed the connection cleanly
    kIo,               // socket syscall failure (errno-level damage)
    kTimeout,          // deadline expired waiting for the peer
    kRetryExhausted,   // reconnect/backoff budget spent without success
  };

  NetError(Reason reason, const std::string& what)
      : Error(std::string("net error [") + reason_name(reason) + "]: " + what),
        reason_(reason) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }

  /// Stable snake_case name — doubles as the `net.frame.error.<reason>`
  /// counter suffix, so renaming one renames the metric.
  static const char* reason_name(Reason r) noexcept {
    switch (r) {
      case Reason::kOversizedFrame: return "oversized_frame";
      case Reason::kBadFrameType: return "bad_frame_type";
      case Reason::kTruncatedFrame: return "truncated_frame";
      case Reason::kMalformedFrame: return "malformed_frame";
      case Reason::kBadMagic: return "bad_magic";
      case Reason::kBadVersion: return "bad_version";
      case Reason::kProtocol: return "protocol";
      case Reason::kClosed: return "closed";
      case Reason::kIo: return "io";
      case Reason::kTimeout: return "timeout";
      case Reason::kRetryExhausted: return "retry_exhausted";
    }
    return "unknown";
  }

 private:
  Reason reason_;
};

}  // namespace oasis::net
