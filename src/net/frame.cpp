#include "net/frame.h"

#include <cstring>

namespace oasis::net {
namespace {

void put_u32(tensor::ByteBuffer& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(tensor::ByteBuffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked little-endian reads over a frame body.
class BodyReader {
 public:
  BodyReader(const tensor::ByteBuffer& body, const char* what)
      : body_(body), what_(what) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | body_[off_ + static_cast<std::size_t>(i)];
    }
    off_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | body_[off_ + static_cast<std::size_t>(i)];
    }
    off_ += 8;
    return v;
  }

  std::uint8_t u8() {
    need(1);
    return body_[off_++];
  }

  /// Everything after the fixed-width prefix (the embedded tensor payload).
  tensor::ByteBuffer rest() {
    tensor::ByteBuffer out(body_.begin() + static_cast<std::ptrdiff_t>(off_),
                           body_.end());
    off_ = body_.size();
    return out;
  }

  /// The fixed-layout frame types must consume their body exactly.
  void expect_end() const {
    if (off_ != body_.size()) {
      throw NetError(NetError::Reason::kMalformedFrame,
                     std::string(what_) + " frame carries " +
                         std::to_string(body_.size() - off_) +
                         " trailing bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (body_.size() - off_ < n) {
      throw NetError(NetError::Reason::kMalformedFrame,
                     std::string(what_) + " frame body truncated at byte " +
                         std::to_string(off_) + " (" +
                         std::to_string(body_.size()) + " bytes total)");
    }
  }

  const tensor::ByteBuffer& body_;
  const char* what_;
  std::size_t off_ = 0;
};

tensor::ByteBuffer make_frame(FrameType type, const tensor::ByteBuffer& body) {
  tensor::ByteBuffer out;
  out.reserve(kFrameHeaderBytes + body.size());
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void check_magic(BodyReader& r, const char* what) {
  const std::uint32_t magic = r.u32();
  if (magic != kProtocolMagic) {
    throw NetError(NetError::Reason::kBadMagic,
                   std::string(what) + " frame magic " + std::to_string(magic));
  }
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) {
    throw NetError(NetError::Reason::kBadVersion,
                   std::string(what) + " frame speaks protocol version " +
                       std::to_string(version) + ", expected " +
                       std::to_string(kProtocolVersion));
  }
}

}  // namespace

bool frame_type_known(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kVersionReject);
}

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kModel: return "model";
    case FrameType::kUpdate: return "update";
    case FrameType::kRetryAfter: return "retry_after";
    case FrameType::kRoundResult: return "round_result";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kResume: return "resume";
    case FrameType::kResumeAck: return "resume_ack";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kVersionReject: return "version_reject";
  }
  return "unknown";
}

tensor::ByteBuffer encode_hello(const Hello& hello) {
  tensor::ByteBuffer body;
  put_u32(body, kProtocolMagic);
  put_u32(body, kProtocolVersion);
  put_u64(body, hello.client_id);
  return make_frame(FrameType::kHello, body);
}

tensor::ByteBuffer encode_welcome(const Welcome& welcome) {
  tensor::ByteBuffer body;
  put_u32(body, kProtocolMagic);
  put_u32(body, kProtocolVersion);
  put_u64(body, welcome.round);
  return make_frame(FrameType::kWelcome, body);
}

tensor::ByteBuffer encode_model(const fl::GlobalModelMessage& msg) {
  tensor::ByteBuffer body;
  body.reserve(8 + msg.model_state.size());
  put_u64(body, msg.round);
  body.insert(body.end(), msg.model_state.begin(), msg.model_state.end());
  return make_frame(FrameType::kModel, body);
}

tensor::ByteBuffer encode_update(const fl::ClientUpdateMessage& msg) {
  tensor::ByteBuffer body;
  body.reserve(24 + msg.gradients.size());
  put_u64(body, msg.round);
  put_u64(body, msg.client_id);
  put_u64(body, msg.num_examples);
  body.insert(body.end(), msg.gradients.begin(), msg.gradients.end());
  return make_frame(FrameType::kUpdate, body);
}

tensor::ByteBuffer encode_retry_after(std::uint64_t retry_after_ms) {
  tensor::ByteBuffer body;
  put_u64(body, retry_after_ms);
  return make_frame(FrameType::kRetryAfter, body);
}

tensor::ByteBuffer encode_round_result(const RoundResult& result) {
  tensor::ByteBuffer body;
  put_u64(body, result.round);
  body.push_back(result.committed ? 1 : 0);
  return make_frame(FrameType::kRoundResult, body);
}

tensor::ByteBuffer encode_goodbye() {
  return make_frame(FrameType::kGoodbye, {});
}

tensor::ByteBuffer encode_resume(const Resume& resume) {
  tensor::ByteBuffer body;
  put_u32(body, kProtocolMagic);
  put_u32(body, kProtocolVersion);
  put_u64(body, resume.client_id);
  put_u64(body, resume.last_round);
  body.push_back(resume.has_update ? 1 : 0);
  put_u64(body, resume.update_round);
  return make_frame(FrameType::kResume, body);
}

tensor::ByteBuffer encode_resume_ack(const ResumeAck& ack) {
  tensor::ByteBuffer body;
  put_u32(body, kProtocolMagic);
  put_u32(body, kProtocolVersion);
  put_u64(body, ack.round);
  body.push_back(static_cast<std::uint8_t>(ack.status));
  return make_frame(FrameType::kResumeAck, body);
}

tensor::ByteBuffer encode_heartbeat() {
  return make_frame(FrameType::kHeartbeat, {});
}

tensor::ByteBuffer encode_version_reject(const VersionReject& reject) {
  tensor::ByteBuffer body;
  put_u32(body, kProtocolMagic);
  put_u32(body, reject.supported_version);
  return make_frame(FrameType::kVersionReject, body);
}

Hello decode_hello(const tensor::ByteBuffer& body) {
  BodyReader r(body, "hello");
  check_magic(r, "hello");
  Hello hello;
  hello.client_id = r.u64();
  r.expect_end();
  return hello;
}

Welcome decode_welcome(const tensor::ByteBuffer& body) {
  BodyReader r(body, "welcome");
  check_magic(r, "welcome");
  Welcome welcome;
  welcome.round = r.u64();
  r.expect_end();
  return welcome;
}

fl::GlobalModelMessage decode_model(const tensor::ByteBuffer& body) {
  BodyReader r(body, "model");
  fl::GlobalModelMessage msg;
  msg.round = r.u64();
  msg.model_state = r.rest();
  return msg;
}

fl::ClientUpdateMessage decode_update(const tensor::ByteBuffer& body) {
  BodyReader r(body, "update");
  fl::ClientUpdateMessage msg;
  msg.round = r.u64();
  msg.client_id = r.u64();
  msg.num_examples = r.u64();
  msg.gradients = r.rest();
  return msg;
}

std::uint64_t decode_retry_after(const tensor::ByteBuffer& body) {
  BodyReader r(body, "retry_after");
  const std::uint64_t ms = r.u64();
  r.expect_end();
  return ms;
}

RoundResult decode_round_result(const tensor::ByteBuffer& body) {
  BodyReader r(body, "round_result");
  RoundResult result;
  result.round = r.u64();
  result.committed = r.u8() != 0;
  r.expect_end();
  return result;
}

Resume decode_resume(const tensor::ByteBuffer& body) {
  BodyReader r(body, "resume");
  check_magic(r, "resume");
  Resume resume;
  resume.client_id = r.u64();
  resume.last_round = r.u64();
  resume.has_update = r.u8() != 0;
  resume.update_round = r.u64();
  r.expect_end();
  return resume;
}

ResumeAck decode_resume_ack(const tensor::ByteBuffer& body) {
  BodyReader r(body, "resume_ack");
  check_magic(r, "resume_ack");
  ResumeAck ack;
  ack.round = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResumeStatus::kExpired)) {
    throw NetError(NetError::Reason::kMalformedFrame,
                   "resume_ack status byte " + std::to_string(status));
  }
  ack.status = static_cast<ResumeStatus>(status);
  r.expect_end();
  return ack;
}

VersionReject decode_version_reject(const tensor::ByteBuffer& body) {
  BodyReader r(body, "version_reject");
  const std::uint32_t magic = r.u32();
  if (magic != kProtocolMagic) {
    throw NetError(NetError::Reason::kBadMagic,
                   "version_reject frame magic " + std::to_string(magic));
  }
  VersionReject reject;
  reject.supported_version = r.u32();
  r.expect_end();
  return reject;
}

FrameDecoder::FrameDecoder(std::size_t max_body_bytes)
    : max_body_bytes_(max_body_bytes) {}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - off_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, buf_.data() + off_, sizeof(body_len));
  // The header is validated BEFORE waiting for (or allocating) the body, so
  // a hostile length prefix or garbage type byte is rejected from the first
  // five bytes alone.
  if (body_len > max_body_bytes_) {
    throw NetError(NetError::Reason::kOversizedFrame,
                   "frame body of " + std::to_string(body_len) +
                       " bytes exceeds the " +
                       std::to_string(max_body_bytes_) + "-byte budget");
  }
  const std::uint8_t type = buf_[off_ + 4];
  if (!frame_type_known(type)) {
    throw NetError(NetError::Reason::kBadFrameType,
                   "unknown frame type byte " + std::to_string(type));
  }
  if (avail < kFrameHeaderBytes + body_len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  const auto begin =
      buf_.begin() + static_cast<std::ptrdiff_t>(off_ + kFrameHeaderBytes);
  frame.body.assign(begin, begin + static_cast<std::ptrdiff_t>(body_len));
  off_ += kFrameHeaderBytes + body_len;
  return frame;
}

}  // namespace oasis::net
