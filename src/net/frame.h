// Length-prefixed framing of the FL wire protocol.
//
// Every message travels as one frame:
//
//   u32 body_len (little-endian) | u8 type | body[body_len]
//
// The body of kModel / kUpdate frames embeds the existing serialized-tensor
// payloads (tensor::serialize_tensors with its CRC32C trailer), so the
// hardened deserialization boundary the in-process protocol already has is
// exactly what travels over TCP — the net layer adds frame boundaries and a
// handshake, never a second tensor format.
//
// FrameDecoder is incremental: feed() whatever bytes the socket produced,
// next() yields complete frames. Malformed input (oversized length prefix,
// unknown type byte) throws NetError at the earliest byte that proves the
// stream damaged, BEFORE any allocation proportional to the hostile length —
// the same discipline as tensor/serialize.h. A connection that closes while
// mid_frame() is the drop-mid-frame fault and maps to kTruncatedFrame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fl/message.h"
#include "net/error.h"
#include "tensor/serialize.h"

namespace oasis::net {

/// First u32 of every kHello/kWelcome body ("OAS1" little-endian).
inline constexpr std::uint32_t kProtocolMagic = 0x3153414FU;
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame header: u32 body length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Default ceiling on one frame's body. Model states and gradient updates
/// for the paper's architectures are well under 1 MiB; 64 MiB leaves room
/// for large federations while keeping a hostile length prefix from
/// triggering a multi-exabyte allocation.
inline constexpr std::size_t kDefaultMaxBodyBytes = 64UL << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,        // client → server: magic, version, client id
  kWelcome = 2,      // server → client: magic, version, current round
  kModel = 3,        // server → client: GlobalModelMessage
  kUpdate = 4,       // client → server: ClientUpdateMessage
  kRetryAfter = 5,   // server → client: backpressure, retry-after hint (ms)
  kRoundResult = 6,  // server → client: round id + committed flag
  kGoodbye = 7,      // server → client: serving finished, drain and close
  kResume = 8,       // client → server: session-resume handshake
  kResumeAck = 9,    // server → client: resume verdict for the in-flight update
  kHeartbeat = 10,   // either direction: liveness; refreshes idle deadlines
  kVersionReject = 11,  // server → client: unsupported version, then close
};

/// True when `t` names a frame type this protocol version understands.
bool frame_type_known(std::uint8_t t);
const char* to_string(FrameType t);

/// One complete decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  tensor::ByteBuffer body;
};

/// Client handshake contents.
struct Hello {
  std::uint64_t client_id = 0;
};

/// Server handshake reply.
struct Welcome {
  std::uint64_t round = 0;
};

/// Round outcome notification (per participating connection).
struct RoundResult {
  std::uint64_t round = 0;
  bool committed = false;
};

/// Session-resume handshake: a reconnecting client replaces its hello with
/// this so the server can resolve the lost-ack ambiguity — "I computed an
/// update for round `update_round` but the connection died before I saw a
/// result; did you take it?" — deterministically and without double-counting.
struct Resume {
  std::uint64_t client_id = 0;
  /// Last round id the client observed (welcome or model dispatch).
  std::uint64_t last_round = 0;
  /// True when the client still holds a computed update it never saw acked.
  bool has_update = false;
  /// Round that cached update was computed for (meaningful iff has_update).
  std::uint64_t update_round = 0;
};

/// Server verdict on the resume's claimed in-flight update.
enum class ResumeStatus : std::uint8_t {
  kNone = 0,      // no in-flight state to resolve; park for a later round
  kPending = 1,   // the update is wanted and NOT held — retransmit it
  kAccepted = 2,  // already durably folded; retransmitting would be rejected
  kExpired = 3,   // the round it targeted has closed; discard the cache
};

struct ResumeAck {
  std::uint64_t round = 0;  // server's current protocol round
  ResumeStatus status = ResumeStatus::kNone;
};

/// Carried by kVersionReject so an incompatible client can report what the
/// server actually speaks instead of dying on a silent close.
struct VersionReject {
  std::uint32_t supported_version = 0;
};

// --- Encoding ---------------------------------------------------------------
// Each encode_* returns the COMPLETE frame (header included), ready to queue
// on a connection's outbox.

tensor::ByteBuffer encode_hello(const Hello& hello);
tensor::ByteBuffer encode_welcome(const Welcome& welcome);
tensor::ByteBuffer encode_model(const fl::GlobalModelMessage& msg);
tensor::ByteBuffer encode_update(const fl::ClientUpdateMessage& msg);
tensor::ByteBuffer encode_retry_after(std::uint64_t retry_after_ms);
tensor::ByteBuffer encode_round_result(const RoundResult& result);
tensor::ByteBuffer encode_goodbye();
tensor::ByteBuffer encode_resume(const Resume& resume);
tensor::ByteBuffer encode_resume_ack(const ResumeAck& ack);
tensor::ByteBuffer encode_heartbeat();
tensor::ByteBuffer encode_version_reject(const VersionReject& reject);

// --- Decoding ---------------------------------------------------------------
// Each decode_* consumes a frame BODY (header already stripped by the
// decoder) and throws NetError{kMalformedFrame} on short/overlong bodies,
// kBadMagic/kBadVersion on handshake mismatches.

Hello decode_hello(const tensor::ByteBuffer& body);
Welcome decode_welcome(const tensor::ByteBuffer& body);
fl::GlobalModelMessage decode_model(const tensor::ByteBuffer& body);
fl::ClientUpdateMessage decode_update(const tensor::ByteBuffer& body);
std::uint64_t decode_retry_after(const tensor::ByteBuffer& body);
RoundResult decode_round_result(const tensor::ByteBuffer& body);
Resume decode_resume(const tensor::ByteBuffer& body);
ResumeAck decode_resume_ack(const tensor::ByteBuffer& body);
/// Checks magic only — the whole point of this frame is a version mismatch,
/// so the version word is DATA here, not a validity condition.
VersionReject decode_version_reject(const tensor::ByteBuffer& body);

/// Incremental frame parser over a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body_bytes = kDefaultMaxBodyBytes);

  /// Appends raw socket bytes. Never throws; validation happens in next().
  void feed(const std::uint8_t* data, std::size_t n);

  /// Returns the next complete frame, or nullopt when more bytes are needed.
  /// Throws NetError{kOversizedFrame} the moment a length prefix exceeds the
  /// budget and NetError{kBadFrameType} on an unknown type byte — both
  /// before the body is buffered or allocated for.
  std::optional<Frame> next();

  /// True when a partial frame is buffered — a clean peer close at this
  /// point is a truncated-frame error, not a graceful shutdown.
  [[nodiscard]] bool mid_frame() const { return buf_.size() > off_; }

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::size_t max_body_bytes_;
  tensor::ByteBuffer buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
};

}  // namespace oasis::net
