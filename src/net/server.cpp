#include "net/server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "ckpt/codec.h"
#include "common/error.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "tensor/serialize.h"

namespace oasis::net {

namespace {

obs::Counter& frame_error_counter(NetError::Reason reason) {
  // A handful of distinct reasons; the registry caches by name.
  return obs::counter(std::string("net.frame.error.") +
                      NetError::reason_name(reason));
}

/// Generation-number stride between resting snapshots: resting state after
/// protocol round t numbers t·2^20, a mid-round snapshot of round t with
/// fold frontier f numbers t·2^20 + 1 + f — the shard engine's monotone
/// numbering, so newest-first restore always lands on the latest progress.
constexpr std::uint64_t kMaxFoldsPerRound = 1ULL << 20;

void write_rng_state(ckpt::SectionWriter& w, const common::Rng::State& s) {
  for (const auto word : s.words) w.u64(word);
  w.f64(static_cast<double>(s.spare_normal));
  w.u8(s.has_spare ? 1 : 0);
}

common::Rng::State read_rng_state(ckpt::SectionReader& r) {
  common::Rng::State s;
  for (auto& word : s.words) word = r.u64();
  s.spare_normal = static_cast<real>(r.f64());
  s.has_spare = r.u8() != 0;
  return s;
}

}  // namespace

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct FlServer::Conn {
  enum class State : std::uint8_t {
    kHandshake,  // accepted, awaiting hello or resume
    kParked,     // admitted, awaiting round admission
    kInRound,    // model dispatched, awaiting update
    kReplied,    // update received, awaiting cutover
  };

  Conn(Socket s, std::size_t max_frame_bytes, std::uint64_t now)
      : sock(std::move(s)), decoder(max_frame_bytes), last_activity_ms(now) {}

  Socket sock;
  State state = State::kHandshake;
  std::uint64_t client_id = 0;
  FrameDecoder decoder;
  tensor::ByteBuffer outbox;
  std::size_t outbox_off = 0;
  std::uint64_t last_activity_ms = 0;
  std::uint64_t rounds_participated = 0;
  index_t updates_this_round = 0;
  bool close_after_flush = false;
};

FlServer::FlServer(fl::Server& core, FlServerConfig config, TimeSource now)
    : core_(core), config_(config), now_(std::move(now)) {
  OASIS_CHECK_MSG(config_.cohort_size >= 1, "cohort_size must be >= 1");
  OASIS_CHECK_MSG(config_.rounds >= 1, "rounds must be >= 1");
  OASIS_CHECK_MSG(config_.max_connections >= config_.cohort_size,
                  "max_connections " << config_.max_connections
                                     << " below cohort_size "
                                     << config_.cohort_size);
  OASIS_CHECK_MSG(static_cast<std::uint64_t>(config_.cohort_size) <
                      kMaxFoldsPerRound,
                  "cohort_size overflows the checkpoint generation stride");
  if (!now_) now_ = steady_now_ms;
  if (config_.selection_seed) {
    selection_.emplace(*config_.selection_seed);
  }
}

FlServer::~FlServer() = default;

void FlServer::listen(const std::string& host, std::uint16_t port) {
  listener_ = tcp_listen(host, port);
  host_ = host;
  port_ = local_port(listener_);
  // A generation-0 resting snapshot at startup means restore never finds an
  // empty directory mid-flight — a crash before the first boundary still has
  // a well-defined (fresh) state to land on. A restarted server already has
  // generations on disk and skips this.
  if (config_.checkpoint != nullptr && config_.checkpoint->generations().empty()) {
    save_checkpoint();
  }
}

std::uint16_t FlServer::port() const {
  OASIS_CHECK_MSG(port_ != 0, "listen() has not been called");
  return port_;
}

index_t FlServer::max_parked() const {
  return config_.max_parked > 0 ? config_.max_parked : 2 * config_.cohort_size;
}

index_t FlServer::connection_count() const { return conns_.size(); }

index_t FlServer::parked_count() const {
  index_t n = 0;
  for (const auto& c : conns_) {
    if (c.sock.valid() && c.state == Conn::State::kParked) ++n;
  }
  return n;
}

void FlServer::fire_event(Event event) {
  if (event_hook_) event_hook_(event);
}

void FlServer::send_frame(Conn& conn, tensor::ByteBuffer frame_bytes) {
  static obs::Counter& frames = obs::counter("net.frames.sent");
  static obs::Counter& bytes = obs::counter("net.bytes.sent");
  frames.add(1);
  bytes.add(frame_bytes.size());
  if (conn.outbox_off > 0 && conn.outbox_off == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_off = 0;
  }
  conn.outbox.insert(conn.outbox.end(), frame_bytes.begin(),
                     frame_bytes.end());
  pump_write(conn);
}

void FlServer::close_conn(Conn& conn, const char* why) {
  if (!conn.sock.valid()) return;
  obs::counter("net.conn.closed").add(1);
  if (why != nullptr && *why != '\0') {
    obs::counter(std::string("net.conn.close.") + why).add(1);
  }
  conn.sock.close();
}

void FlServer::pump_listener() {
  static obs::Counter& accepted = obs::counter("net.conn.accepted");
  static obs::Counter& over_cap = obs::counter("net.conn.over_capacity");
  if (!listener_.valid()) return;
  while (true) {
    Socket sock = tcp_accept(listener_);
    if (!sock.valid()) break;
    index_t live = 0;
    for (const auto& c : conns_) {
      if (c.sock.valid()) ++live;
    }
    if (live >= config_.max_connections) {
      over_cap.add(1);
      continue;  // Socket destructor closes it — hard admission bound.
    }
    accepted.add(1);
    conns_.emplace_back(std::move(sock), config_.max_frame_bytes, now_());
  }
}

void FlServer::pump_read(Conn& conn, std::uint64_t now) {
  static obs::Counter& bytes_in = obs::counter("net.bytes.received");
  static obs::Counter& frames_in = obs::counter("net.frames.received");
  std::uint8_t buf[16 * 1024];
  std::size_t budget = config_.read_budget_bytes;
  bool read_any = false;
  try {
    while (budget > 0 && conn.sock.valid()) {
      const std::size_t want = std::min(budget, sizeof(buf));
      const long got = read_some(conn.sock, buf, want);
      if (got == 0) break;  // drained (would block)
      if (got < 0) {
        // Orderly close. Mid-frame, that is the drop-mid-frame fault.
        if (conn.decoder.mid_frame()) {
          frame_error_counter(NetError::Reason::kTruncatedFrame).add(1);
          close_conn(conn, "truncated");
        } else {
          close_conn(conn, "peer");
        }
        return;
      }
      read_any = true;
      bytes_in.add(static_cast<std::uint64_t>(got));
      conn.last_activity_ms = now;
      conn.decoder.feed(buf, static_cast<std::size_t>(got));
      budget -= static_cast<std::size_t>(got);
      while (auto frame = conn.decoder.next()) {
        frames_in.add(1);
        handle_frame(conn, std::move(*frame), now);
        if (!conn.sock.valid()) return;
      }
    }
    if (read_any && conn.decoder.mid_frame()) fire_event(Event::kMidFrame);
  } catch (const NetError& e) {
    // Connection-scoped damage (oversized/unknown frame, bad handshake,
    // socket error): tally, sever this peer, keep serving everyone else.
    frame_error_counter(e.reason()).add(1);
    close_conn(conn, "frame_error");
  }
}

void FlServer::pump_write(Conn& conn) {
  if (!conn.sock.valid()) return;
  try {
    while (conn.outbox_off < conn.outbox.size()) {
      const long put =
          write_some(conn.sock, conn.outbox.data() + conn.outbox_off,
                     conn.outbox.size() - conn.outbox_off);
      if (put == 0) return;  // kernel buffer full; POLLOUT resumes us
      conn.outbox_off += static_cast<std::size_t>(put);
    }
  } catch (const NetError&) {
    close_conn(conn, "send_failed");
    return;
  }
  conn.outbox.clear();
  conn.outbox_off = 0;
  if (conn.close_after_flush) close_conn(conn, "");
}

bool FlServer::duplicate_live_id(const Conn& conn,
                                 std::uint64_t client_id) const {
  for (const auto& other : conns_) {
    if (&other != &conn && other.sock.valid() &&
        other.state != Conn::State::kHandshake &&
        other.client_id == client_id) {
      return true;
    }
  }
  return false;
}

void FlServer::handle_hello(Conn& conn, const Hello& hello,
                            std::uint64_t /*now*/) {
  static obs::Counter& handshakes = obs::counter("net.handshakes");
  static obs::Counter& retry_after = obs::counter("net.admission.retry_after");
  static obs::Counter& parked = obs::counter("net.admission.parked");
  static obs::Counter& dup_id = obs::counter("net.conn.duplicate_id");

  if (goodbye_sent_) {
    send_frame(conn, encode_goodbye());
    conn.close_after_flush = true;
    return;
  }
  if (duplicate_live_id(conn, hello.client_id)) {
    dup_id.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }
  // Explicit backpressure: a round in flight, or a full parked pool, turns
  // the handshake away with a backoff hint instead of queueing unboundedly.
  if (round_open_ || parked_count() >= max_parked()) {
    retry_after.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }
  handshakes.add(1);
  parked.add(1);
  conn.client_id = hello.client_id;
  conn.state = Conn::State::kParked;
  send_frame(conn, encode_welcome(Welcome{core_.round()}));
}

void FlServer::handle_resume(Conn& conn, const Resume& resume,
                             std::uint64_t /*now*/) {
  static obs::Counter& resumes = obs::counter("net.session.resumed");
  static obs::Counter& acked_accepted =
      obs::counter("net.session.ack_accepted");
  static obs::Counter& acked_pending = obs::counter("net.session.ack_pending");
  static obs::Counter& acked_parked = obs::counter("net.session.ack_parked");
  static obs::Counter& retry_after = obs::counter("net.admission.retry_after");
  static obs::Counter& dup_id = obs::counter("net.conn.duplicate_id");

  if (goodbye_sent_) {
    send_frame(conn, encode_goodbye());
    conn.close_after_flush = true;
    return;
  }
  if (duplicate_live_id(conn, resume.client_id)) {
    dup_id.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }

  if (round_open_) {
    const bool member =
        std::find(round_order_.begin(), round_order_.end(), resume.client_id) !=
        round_order_.end();
    if (member) {
      resumes.add(1);
      conn.client_id = resume.client_id;
      conn.updates_this_round = 0;
      if (round_delivered_.count(resume.client_id) > 0) {
        // Already delivered this round (typically: folded pre-crash, or the
        // ack raced the disconnect). The lost-ack resolution: the client
        // must NOT retransmit — its update is (durably) in the aggregate.
        acked_accepted.add(1);
        conn.state = Conn::State::kReplied;
        send_frame(conn, encode_resume_ack(
                             ResumeAck{round_id_, ResumeStatus::kAccepted}));
      } else {
        // Wanted and not held: the client retransmits its cached update, or
        // — if it never computed one for this round — gets the dispatch
        // again. Never both, so the training path runs exactly once.
        acked_pending.add(1);
        conn.state = Conn::State::kInRound;
        const bool holds_this_round =
            resume.has_update && resume.update_round == round_id_;
        send_frame(conn, encode_resume_ack(
                             ResumeAck{round_id_, ResumeStatus::kPending}));
        if (!holds_this_round) {
          send_frame(conn, encode_model(core_.dispatch_to(resume.client_id)));
        }
      }
      return;
    }
    // Not a member of the open round: same backpressure as a mid-round hello.
    retry_after.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }

  // No round open. A cached update for a round below the current one was
  // either folded into a committed round or sealed out of it — both closed;
  // the client discards it and parks for the next admission.
  if (parked_count() >= max_parked()) {
    retry_after.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }
  resumes.add(1);
  acked_parked.add(1);
  conn.client_id = resume.client_id;
  conn.state = Conn::State::kParked;
  const ResumeStatus status =
      resume.has_update && resume.update_round < core_.round()
          ? ResumeStatus::kExpired
          : ResumeStatus::kNone;
  send_frame(conn, encode_resume_ack(ResumeAck{core_.round(), status}));
}

void FlServer::handle_update(Conn& conn, const Frame& frame) {
  static obs::Counter& updates_in = obs::counter("net.update.received");
  updates_in.add(1);
  fl::ClientUpdateMessage msg = decode_update(frame.body);
  // The wire-level client id is authoritative for bookkeeping, but the
  // payload travels unmodified into the validation pipeline — a spoofed
  // inner id is the pipeline's duplicate screen's problem, same as the
  // in-process path.
  round_delivered_.insert(conn.client_id);
  const fl::RejectReason verdict = core_.screen_update(msg, screen_);
  if (verdict == fl::RejectReason::kAccepted) {
    const auto pos = std::find(round_order_.begin(), round_order_.end(),
                               conn.client_id) -
                     round_order_.begin();
    if (static_cast<std::size_t>(pos) < fold_frontier_) {
      // The fold already passed this member (reachable only via a spoofed
      // inner id slipping the duplicate screen after the wire id folded):
      // fold immediately rather than strand it behind the frontier.
      agg_.add(msg);
      folded_inner_.push_back(msg.client_id);
      ++round_accepted_;
      ++accepts_since_ckpt_;
      fire_event(Event::kUpdateAccepted);
    } else {
      accepted_pending_[conn.client_id].push_back(std::move(msg));
    }
  }
  conn.state = Conn::State::kReplied;
  fold_ready();
}

void FlServer::fold_ready() {
  // Advance the fold frontier over every cohort member whose accepted
  // update(s) are in hand. Strict round order — never arrival order — keeps
  // the streamed fold byte-identical to the batch cutover fold, and makes
  // the snapshot's accepted set a simple prefix of round_order_. A member
  // that delivered only rejected bytes stalls the frontier (a valid resend
  // may still arrive); cutover folds past it.
  while (fold_frontier_ < round_order_.size()) {
    const auto it = accepted_pending_.find(round_order_[fold_frontier_]);
    if (it == accepted_pending_.end()) break;
    for (auto& msg : it->second) {
      agg_.add(msg);
      folded_inner_.push_back(msg.client_id);
      ++round_accepted_;
      ++accepts_since_ckpt_;
      fire_event(Event::kUpdateAccepted);
    }
    accepted_pending_.erase(it);
    ++fold_frontier_;
    if (config_.checkpoint != nullptr && config_.checkpoint_every_accepts > 0 &&
        accepts_since_ckpt_ >= config_.checkpoint_every_accepts) {
      save_checkpoint();
    }
  }
}

void FlServer::handle_frame(Conn& conn, Frame frame, std::uint64_t now) {
  static obs::Counter& stale = obs::counter("net.update.stale");
  static obs::Counter& protocol_err = obs::counter("net.protocol_error");
  static obs::Counter& version_rej = obs::counter("net.version.rejected");
  static obs::Counter& heartbeats_in = obs::counter("net.heartbeat.received");

  switch (frame.type) {
    case FrameType::kHello:
    case FrameType::kResume: {
      if (conn.state != Conn::State::kHandshake) {
        protocol_err.add(1);
        close_conn(conn, "protocol");
        return;
      }
      try {
        if (frame.type == FrameType::kHello) {
          handle_hello(conn, decode_hello(frame.body), now);
        } else {
          handle_resume(conn, decode_resume(frame.body), now);
        }
      } catch (const NetError& e) {
        if (e.reason() != NetError::Reason::kBadVersion) throw;
        // Version negotiation: answer an unsupported version with the one we
        // speak, then close — a typed reject instead of a silent drop.
        version_rej.add(1);
        frame_error_counter(NetError::Reason::kBadVersion).add(1);
        send_frame(conn,
                   encode_version_reject(VersionReject{kProtocolVersion}));
        conn.close_after_flush = true;
      }
      return;
    }
    case FrameType::kUpdate: {
      if (conn.state == Conn::State::kHandshake) {
        protocol_err.add(1);
        close_conn(conn, "protocol");
        return;
      }
      if (conn.state == Conn::State::kParked) {
        // Not a member of the open round (or no round is open): a straggler
        // crossing the cutover boundary. Dropped here; the round it was
        // meant for is sealed.
        stale.add(1);
        return;
      }
      if (++conn.updates_this_round > 4) {
        // Duplicate delivery is a tolerated fault, an update flood is not.
        protocol_err.add(1);
        close_conn(conn, "update_flood");
        return;
      }
      handle_update(conn, frame);
      return;
    }
    case FrameType::kHeartbeat: {
      // Liveness only — pump_read already refreshed the activity stamp. In
      // kHandshake it would let an unauthenticated peer dodge the handshake
      // deadline, so there it is a protocol error like any other frame.
      if (conn.state == Conn::State::kHandshake) {
        protocol_err.add(1);
        close_conn(conn, "protocol");
        return;
      }
      heartbeats_in.add(1);
      return;
    }
    case FrameType::kWelcome:
    case FrameType::kModel:
    case FrameType::kRetryAfter:
    case FrameType::kRoundResult:
    case FrameType::kGoodbye:
    case FrameType::kResumeAck:
    case FrameType::kVersionReject:
      // Server-to-client vocabulary arriving at the server.
      protocol_err.add(1);
      close_conn(conn, "protocol");
      return;
  }
}

void FlServer::enforce_deadlines(std::uint64_t now) {
  static obs::Counter& idle = obs::counter("net.conn.idle_timeout");
  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    // The idle deadline targets peers that owe us bytes: an unfinished
    // handshake, a stalled partial frame (slowloris), or an in-round client
    // sitting on its update. Parked clients legitimately idle between
    // rounds and are exempt.
    const bool owes_bytes = conn.state == Conn::State::kHandshake ||
                            conn.state == Conn::State::kInRound ||
                            conn.decoder.mid_frame();
    if (owes_bytes && now - conn.last_activity_ms >= config_.idle_timeout_ms) {
      idle.add(1);
      close_conn(conn, "idle");
    }
  }
}

void FlServer::send_heartbeats(std::uint64_t now) {
  static obs::Counter& heartbeats = obs::counter("net.heartbeat.sent");
  if (config_.heartbeat_ms == 0) return;
  if (now < next_heartbeat_ms_) return;
  next_heartbeat_ms_ = now + config_.heartbeat_ms;
  for (auto& conn : conns_) {
    if (!conn.sock.valid() || conn.close_after_flush) continue;
    if (conn.state == Conn::State::kHandshake) continue;
    heartbeats.add(1);
    send_frame(conn, encode_heartbeat());
  }
}

void FlServer::maybe_start_round(std::uint64_t now) {
  static obs::Counter& started = obs::counter("net.round.started");
  if (round_open_ || goodbye_sent_ || served_ >= config_.rounds) return;
  if (now < next_admission_ms_) return;

  std::vector<index_t> parked;
  for (index_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].sock.valid() && conns_[i].state == Conn::State::kParked) {
      parked.push_back(i);
    }
  }
  if (parked.size() < config_.cohort_size) return;

  // Membership: least-served first (a client bounced by backpressure catches
  // up instead of starving), ties broken by id — deterministic for any
  // connection arrival order.
  std::sort(parked.begin(), parked.end(), [&](index_t a, index_t b) {
    const auto& ca = conns_[a];
    const auto& cb = conns_[b];
    if (ca.rounds_participated != cb.rounds_participated) {
      return ca.rounds_participated < cb.rounds_participated;
    }
    return ca.client_id < cb.client_id;
  });
  parked.resize(config_.cohort_size);

  // Aggregation/dispatch order over the members: ascending id, or — when a
  // selection seed is configured — fl::Simulation's per-round permutation of
  // it, which is what makes loopback serving byte-identical to the
  // in-process engine.
  std::vector<std::uint64_t> sorted_ids;
  sorted_ids.reserve(parked.size());
  for (const auto i : parked) sorted_ids.push_back(conns_[i].client_id);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  round_order_.clear();
  if (selection_) {
    const auto perm = selection_->sample_without_replacement(
        sorted_ids.size(), sorted_ids.size());
    for (const auto p : perm) round_order_.push_back(sorted_ids[p]);
  } else {
    round_order_ = sorted_ids;
  }

  started.add(1);
  round_id_ = core_.round();
  round_open_ = true;
  round_started_ms_ = now;
  round_deadline_ms_ = now + config_.round_timeout_ms;
  round_delivered_.clear();
  accepted_pending_.clear();
  agg_.reset();
  folded_inner_.clear();
  fold_frontier_ = 0;
  round_accepted_ = 0;
  screen_ = core_.begin_screen();

  core_.begin_round();
  for (const auto id : round_order_) {
    const fl::GlobalModelMessage msg = core_.dispatch_to(id);
    for (const auto i : parked) {
      auto& conn = conns_[i];
      if (conn.client_id == id) {
        conn.state = Conn::State::kInRound;
        conn.updates_this_round = 0;
        send_frame(conn, encode_model(msg));
        break;
      }
    }
  }
}

void FlServer::maybe_finish_round(std::uint64_t now) {
  if (!round_open_) return;
  // The round completes when every cohort member has delivered an update
  // (any verdict) — a member that dropped its connection gets until the
  // round deadline to reconnect and resolve its in-flight update via the
  // resume handshake, instead of being sealed out the moment its socket
  // died.
  bool complete = true;
  for (const auto id : round_order_) {
    if (round_delivered_.count(id) == 0) {
      complete = false;
      break;
    }
  }
  if (complete || now >= round_deadline_ms_) cutover(now);
}

void FlServer::cutover(std::uint64_t now) {
  static obs::Counter& committed_c = obs::counter("net.round.committed");
  static obs::Counter& aborted_c = obs::counter("net.round.aborted");
  static obs::Counter& stragglers_c = obs::counter("net.round.stragglers");
  static obs::Histogram& latency_h = obs::histogram("net.round.latency_ms");

  // Seal the round: fold the accepted updates past the frontier in the
  // deterministic round order (duplicate deliveries stay adjacent, exactly
  // like the in-process engine's back-to-back duplicate posting). The
  // prefix up to fold_frontier_ is already in the accumulator — and, with a
  // checkpoint manager, already durable.
  for (std::size_t i = fold_frontier_; i < round_order_.size(); ++i) {
    const std::uint64_t id = round_order_[i];
    const auto it = accepted_pending_.find(id);
    if (it != accepted_pending_.end()) {
      for (auto& msg : it->second) {
        agg_.add(msg);
        folded_inner_.push_back(msg.client_id);
        ++round_accepted_;
        ++accepts_since_ckpt_;
        fire_event(Event::kUpdateAccepted);
      }
      accepted_pending_.erase(it);
    }
    if (round_delivered_.count(id) == 0) stragglers_c.add(1);
  }
  fold_frontier_ = round_order_.size();

  const index_t needed =
      fl::quorum_needed(config_.quorum_fraction, round_order_.size());
  bool committed = true;
  if (round_accepted_ < static_cast<std::uint64_t>(needed)) {
    // Quorum shortfall. The aggregate only ever lived in the accumulator,
    // so the abort needs no model rollback — dropping the round state IS
    // the rollback (the shard engine's contract).
    aborted_c.add(1);
    committed = false;
  } else if (round_accepted_ == 0) {
    core_.commit_skipped_round();
  } else {
    core_.commit_round(agg_.average());
  }
  if (committed) {
    committed_c.add(1);
    ++served_;
  }
  const double latency = static_cast<double>(now - round_started_ms_);
  latencies_ms_.push_back(latency);
  latency_h.record(latency);

  const RoundResult result{round_id_, committed};
  round_open_ = false;
  round_order_.clear();
  round_delivered_.clear();
  accepted_pending_.clear();
  agg_.reset();
  folded_inner_.clear();
  fold_frontier_ = 0;
  round_accepted_ = 0;
  screen_ = fl::UpdateScreen{};

  // Boundary durability: the committed model reaches disk BEFORE any client
  // learns the outcome, so a crash in the commit→ack window restores to the
  // new round and reconnecting clients resolve their (now expired) in-flight
  // updates via the resume handshake — acknowledged progress is never lost.
  if (config_.checkpoint != nullptr) save_checkpoint();
  fire_event(Event::kPreResultSend);

  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    if (conn.state == Conn::State::kInRound ||
        conn.state == Conn::State::kReplied) {
      ++conn.rounds_participated;
      conn.state = Conn::State::kParked;
      send_frame(conn, encode_round_result(result));
    }
  }
  next_admission_ms_ = now + config_.admission_window_ms;
  if (served_ >= config_.rounds) finish_serving();
}

void FlServer::finish_serving() {
  goodbye_sent_ = true;
  listener_.close();
  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    send_frame(conn, encode_goodbye());
    conn.close_after_flush = true;
  }
}

// ---- Checkpoint / restore (DESIGN.md §5j) -----------------------------------

std::uint64_t FlServer::checkpoint_generation() const {
  return round_open_ ? round_id_ * kMaxFoldsPerRound + 1 + fold_frontier_
                     : core_.round() * kMaxFoldsPerRound;
}

tensor::ByteBuffer FlServer::encode_checkpoint() {
  ckpt::SnapshotBuilder builder;
  {
    ckpt::SectionWriter meta;
    meta.u64(core_.round());
    meta.u64(served_);
    // Configuration echo: a snapshot only fits the federation it came from.
    meta.u64(config_.cohort_size);
    meta.u64(config_.rounds);
    meta.f64(static_cast<double>(config_.quorum_fraction));
    meta.u8(selection_ ? 1 : 0);
    meta.u8(round_open_ ? 1 : 0);
    if (round_open_) {
      meta.u64(round_id_);
      meta.u64(round_order_.size());
      for (const auto id : round_order_) meta.u64(id);
      meta.u64(fold_frontier_);
      meta.u64(round_accepted_);
      // FOLDED inner ids only (the duplicate screen's id space) — sorted so
      // identical state always produces identical snapshot bytes. Updates
      // screened-accepted but still parked behind the fold frontier are NOT
      // recorded: they are absent from the serialized partials, so after a
      // restore their senders must be able to resend without the duplicate
      // screen bouncing them.
      std::vector<std::uint64_t> folded = folded_inner_;
      std::sort(folded.begin(), folded.end());
      meta.u64(folded.size());
      for (const auto id : folded) meta.u64(id);
    }
    builder.add("nmeta", meta.take());
  }
  builder.add("model", nn::serialize_state(core_.global_model()));
  if (selection_) {
    ckpt::SectionWriter rng;
    write_rng_state(rng, selection_->state());
    builder.add("nrng", rng.take());
  }
  if (round_open_) {
    ckpt::SectionWriter agg;
    agg.u64(agg_.count());
    agg.f64(static_cast<double>(agg_.total_weight()));
    agg.bytes(tensor::serialize_tensors(agg_.partials()));
    builder.add("agg", agg.take());
  }
  return builder.finish();
}

void FlServer::apply_snapshot(const ckpt::Snapshot& snap) {
  using Reason = CheckpointError::Reason;

  // Decode and cross-check EVERYTHING before the first mutation, so a
  // snapshot from the wrong federation (or a malformed section) leaves the
  // live server exactly as it was.
  ckpt::SectionReader meta(snap.section("nmeta"), "nmeta");
  const std::uint64_t round = meta.u64();
  const std::uint64_t served = meta.u64();
  const std::uint64_t cohort_cfg = meta.u64();
  const std::uint64_t rounds_cfg = meta.u64();
  const double quorum = meta.f64();
  const bool has_selection = meta.u8() != 0;
  const bool mid = meta.u8() != 0;
  std::uint64_t round_id = 0, frontier = 0, accepted_count = 0;
  std::vector<std::uint64_t> order;
  std::vector<std::uint64_t> accepted_ids;
  if (mid) {
    round_id = meta.u64();
    const std::uint64_t n = meta.u64();
    order.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) order.push_back(meta.u64());
    frontier = meta.u64();
    accepted_count = meta.u64();
    const std::uint64_t na = meta.u64();
    accepted_ids.reserve(na);
    for (std::uint64_t i = 0; i < na; ++i) accepted_ids.push_back(meta.u64());
  }
  meta.expect_end();
  if (cohort_cfg != config_.cohort_size || rounds_cfg != config_.rounds ||
      quorum != static_cast<double>(config_.quorum_fraction) ||
      has_selection != selection_.has_value()) {
    throw CheckpointError(
        Reason::kStateMismatch,
        "snapshot belongs to a differently configured federation (cohort " +
            std::to_string(cohort_cfg) + ", " + std::to_string(rounds_cfg) +
            " rounds)");
  }
  if (mid && (frontier > order.size() || round_id != round)) {
    throw CheckpointError(Reason::kStateMismatch,
                          "mid-round snapshot progress is inconsistent "
                          "(frontier " +
                              std::to_string(frontier) + " of " +
                              std::to_string(order.size()) + " members)");
  }

  common::Rng::State sel_state{};
  if (has_selection) {
    ckpt::SectionReader rng(snap.section("nrng"), "nrng");
    sel_state = read_rng_state(rng);
    rng.expect_end();
  }

  std::vector<tensor::Tensor> partials;
  std::uint64_t acc_count = 0;
  double acc_weight = 0.0;
  if (mid) {
    ckpt::SectionReader agg(snap.section("agg"), "agg");
    acc_count = agg.u64();
    acc_weight = agg.f64();
    const ckpt::ByteBuffer partial_bytes = agg.bytes();
    agg.expect_end();
    try {
      partials = tensor::deserialize_tensors(partial_bytes);
    } catch (const Error& e) {
      throw CheckpointError(
          Reason::kMalformedSection,
          std::string("accumulator partials failed to decode: ") + e.what());
    }
  }

  const tensor::ByteBuffer& model_bytes = snap.section("model");

  // Apply. The model payload passed its section CRC, so a failure to load is
  // an architecture mismatch, not disk damage.
  try {
    nn::deserialize_state(core_.global_model(), model_bytes);
  } catch (const Error& e) {
    throw CheckpointError(Reason::kStateMismatch,
                          std::string("model state does not fit the live "
                                      "architecture: ") +
                              e.what());
  }
  core_.restore_round(round);
  served_ = served;
  if (has_selection) selection_->set_state(sel_state);
  accepted_pending_.clear();
  accepts_since_ckpt_ = 0;
  if (mid) {
    round_open_ = true;
    round_id_ = round_id;
    round_order_ = std::move(order);
    fold_frontier_ = frontier;
    round_accepted_ = accepted_count;
    // The accepted-client set: the folded prefix of the round order (wire
    // ids, drives completion) plus the folded inner ids (feeds the
    // duplicate screen, so a resend of a folded update is rejected — no
    // double count — while unfolded members resend freely).
    round_delivered_.clear();
    for (std::size_t i = 0; i < fold_frontier_; ++i) {
      round_delivered_.insert(round_order_[i]);
    }
    screen_ = core_.begin_screen();
    for (const auto id : accepted_ids) screen_.seen_ids.insert(id);
    folded_inner_ = std::move(accepted_ids);
    agg_.restore(std::move(partials), static_cast<real>(acc_weight),
                 acc_count);
    // Re-arm the collection deadline from restore time and rebuild the
    // dispatch (begin_round is pure: round id + current model bytes) so
    // resumed members that never trained can be re-dispatched.
    const std::uint64_t now = now_();
    round_started_ms_ = now;
    round_deadline_ms_ = now + config_.round_timeout_ms;
    core_.begin_round();
  } else {
    round_open_ = false;
    round_order_.clear();
    round_delivered_.clear();
    agg_.reset();
    folded_inner_.clear();
    fold_frontier_ = 0;
    round_accepted_ = 0;
    screen_ = fl::UpdateScreen{};
  }
}

std::uint64_t FlServer::resume_from() {
  OASIS_CHECK_MSG(config_.checkpoint != nullptr,
                  "resume_from() requires a checkpoint manager");
  static obs::Counter& restored = obs::counter("net.ckpt.restored");
  const auto loaded = config_.checkpoint->load_latest_valid();
  apply_snapshot(loaded.snapshot);
  restored.add(1);
  return core_.round();
}

void FlServer::save_checkpoint() {
  if (config_.checkpoint == nullptr) return;
  static obs::Counter& saved = obs::counter("net.ckpt.saved");
  static obs::Counter& degraded = obs::counter("net.ckpt.degraded");
  try {
    config_.checkpoint->save(checkpoint_generation(), encode_checkpoint());
    saved.add(1);
    accepts_since_ckpt_ = 0;
    ckpt_degraded_ = false;
    fire_event(Event::kCheckpointSaved);
  } catch (const Error&) {
    // Graceful degradation: the round proceeds in memory; a later boundary
    // (or K-accept cadence point) tries the disk again. The counter — and
    // checkpoint_degraded() — make the lost durability observable.
    degraded.add(1);
    ckpt_degraded_ = true;
    accepts_since_ckpt_ = 0;
  }
}

bool FlServer::step(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  const bool have_listener = listener_.valid();
  if (have_listener) {
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  }
  for (const auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    short events = POLLIN;
    if (conn.outbox_off < conn.outbox.size()) events |= POLLOUT;
    fds.push_back(pollfd{conn.sock.fd(), events, 0});
  }
  if (!fds.empty()) {
    ::poll(fds.data(), fds.size(), timeout_ms);
  }

  pump_listener();
  const std::uint64_t now = now_();
  // Pump every live connection each step: poll readiness is a wakeup hint,
  // not a gate, and the non-blocking reads/writes are cheap no-ops on quiet
  // sockets. This keeps the loop correct even for bytes that arrived
  // between poll() and now.
  for (auto& conn : conns_) {
    if (conn.sock.valid()) pump_read(conn, now);
  }
  for (auto& conn : conns_) {
    if (conn.sock.valid()) pump_write(conn);
  }
  enforce_deadlines(now);
  send_heartbeats(now);
  maybe_finish_round(now);
  maybe_start_round(now);

  // Sweep closed connections.
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return !c.sock.valid(); }),
               conns_.end());
  return !finished();
}

bool FlServer::finished() const {
  return served_ >= config_.rounds && conns_.empty();
}

void FlServer::serve() {
  while (step(/*timeout_ms=*/50)) {
  }
}

}  // namespace oasis::net
