#include "net/server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "nn/model_io.h"
#include "obs/obs.h"

namespace oasis::net {

namespace {

obs::Counter& frame_error_counter(NetError::Reason reason) {
  // A handful of distinct reasons; the registry caches by name.
  return obs::counter(std::string("net.frame.error.") +
                      NetError::reason_name(reason));
}

}  // namespace

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct FlServer::Conn {
  enum class State : std::uint8_t {
    kHandshake,  // accepted, awaiting hello
    kParked,     // admitted, awaiting round admission
    kInRound,    // model dispatched, awaiting update
    kReplied,    // update received, awaiting cutover
  };

  Conn(Socket s, std::size_t max_frame_bytes, std::uint64_t now)
      : sock(std::move(s)), decoder(max_frame_bytes), last_activity_ms(now) {}

  Socket sock;
  State state = State::kHandshake;
  std::uint64_t client_id = 0;
  FrameDecoder decoder;
  tensor::ByteBuffer outbox;
  std::size_t outbox_off = 0;
  std::uint64_t last_activity_ms = 0;
  std::uint64_t rounds_participated = 0;
  index_t updates_this_round = 0;
  bool close_after_flush = false;
};

FlServer::FlServer(fl::Server& core, FlServerConfig config, TimeSource now)
    : core_(core), config_(config), now_(std::move(now)) {
  OASIS_CHECK_MSG(config_.cohort_size >= 1, "cohort_size must be >= 1");
  OASIS_CHECK_MSG(config_.rounds >= 1, "rounds must be >= 1");
  OASIS_CHECK_MSG(config_.max_connections >= config_.cohort_size,
                  "max_connections " << config_.max_connections
                                     << " below cohort_size "
                                     << config_.cohort_size);
  if (!now_) now_ = steady_now_ms;
  if (config_.selection_seed) {
    selection_.emplace(*config_.selection_seed);
  }
}

FlServer::~FlServer() = default;

void FlServer::listen(const std::string& host, std::uint16_t port) {
  listener_ = tcp_listen(host, port);
  port_ = local_port(listener_);
}

std::uint16_t FlServer::port() const {
  OASIS_CHECK_MSG(port_ != 0, "listen() has not been called");
  return port_;
}

index_t FlServer::max_parked() const {
  return config_.max_parked > 0 ? config_.max_parked : 2 * config_.cohort_size;
}

index_t FlServer::connection_count() const { return conns_.size(); }

index_t FlServer::parked_count() const {
  index_t n = 0;
  for (const auto& c : conns_) {
    if (c.sock.valid() && c.state == Conn::State::kParked) ++n;
  }
  return n;
}

void FlServer::send_frame(Conn& conn, tensor::ByteBuffer frame_bytes) {
  static obs::Counter& frames = obs::counter("net.frames.sent");
  static obs::Counter& bytes = obs::counter("net.bytes.sent");
  frames.add(1);
  bytes.add(frame_bytes.size());
  if (conn.outbox_off > 0 && conn.outbox_off == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_off = 0;
  }
  conn.outbox.insert(conn.outbox.end(), frame_bytes.begin(),
                     frame_bytes.end());
  pump_write(conn);
}

void FlServer::close_conn(Conn& conn, const char* why) {
  if (!conn.sock.valid()) return;
  obs::counter("net.conn.closed").add(1);
  if (why != nullptr && *why != '\0') {
    obs::counter(std::string("net.conn.close.") + why).add(1);
  }
  conn.sock.close();
}

void FlServer::pump_listener() {
  static obs::Counter& accepted = obs::counter("net.conn.accepted");
  static obs::Counter& over_cap = obs::counter("net.conn.over_capacity");
  if (!listener_.valid()) return;
  while (true) {
    Socket sock = tcp_accept(listener_);
    if (!sock.valid()) break;
    index_t live = 0;
    for (const auto& c : conns_) {
      if (c.sock.valid()) ++live;
    }
    if (live >= config_.max_connections) {
      over_cap.add(1);
      continue;  // Socket destructor closes it — hard admission bound.
    }
    accepted.add(1);
    conns_.emplace_back(std::move(sock), config_.max_frame_bytes, now_());
  }
}

void FlServer::pump_read(Conn& conn, std::uint64_t now) {
  static obs::Counter& bytes_in = obs::counter("net.bytes.received");
  static obs::Counter& frames_in = obs::counter("net.frames.received");
  std::uint8_t buf[16 * 1024];
  std::size_t budget = config_.read_budget_bytes;
  try {
    while (budget > 0 && conn.sock.valid()) {
      const std::size_t want = std::min(budget, sizeof(buf));
      const long got = read_some(conn.sock, buf, want);
      if (got == 0) break;  // drained (would block)
      if (got < 0) {
        // Orderly close. Mid-frame, that is the drop-mid-frame fault.
        if (conn.decoder.mid_frame()) {
          frame_error_counter(NetError::Reason::kTruncatedFrame).add(1);
          close_conn(conn, "truncated");
        } else {
          close_conn(conn, "peer");
        }
        return;
      }
      bytes_in.add(static_cast<std::uint64_t>(got));
      conn.last_activity_ms = now;
      conn.decoder.feed(buf, static_cast<std::size_t>(got));
      budget -= static_cast<std::size_t>(got);
      while (auto frame = conn.decoder.next()) {
        frames_in.add(1);
        handle_frame(conn, std::move(*frame), now);
        if (!conn.sock.valid()) return;
      }
    }
  } catch (const NetError& e) {
    // Connection-scoped damage (oversized/unknown frame, bad handshake,
    // socket error): tally, sever this peer, keep serving everyone else.
    frame_error_counter(e.reason()).add(1);
    close_conn(conn, "frame_error");
  }
}

void FlServer::pump_write(Conn& conn) {
  if (!conn.sock.valid()) return;
  try {
    while (conn.outbox_off < conn.outbox.size()) {
      const long put =
          write_some(conn.sock, conn.outbox.data() + conn.outbox_off,
                     conn.outbox.size() - conn.outbox_off);
      if (put == 0) return;  // kernel buffer full; POLLOUT resumes us
      conn.outbox_off += static_cast<std::size_t>(put);
    }
  } catch (const NetError&) {
    close_conn(conn, "send_failed");
    return;
  }
  conn.outbox.clear();
  conn.outbox_off = 0;
  if (conn.close_after_flush) close_conn(conn, "");
}

void FlServer::handle_hello(Conn& conn, const Hello& hello,
                            std::uint64_t /*now*/) {
  static obs::Counter& handshakes = obs::counter("net.handshakes");
  static obs::Counter& retry_after = obs::counter("net.admission.retry_after");
  static obs::Counter& parked = obs::counter("net.admission.parked");
  static obs::Counter& dup_id = obs::counter("net.conn.duplicate_id");

  if (goodbye_sent_) {
    send_frame(conn, encode_goodbye());
    conn.close_after_flush = true;
    return;
  }
  for (const auto& other : conns_) {
    if (&other != &conn && other.sock.valid() &&
        other.state != Conn::State::kHandshake &&
        other.client_id == hello.client_id) {
      dup_id.add(1);
      send_frame(conn, encode_retry_after(config_.retry_after_ms));
      conn.close_after_flush = true;
      return;
    }
  }
  // Explicit backpressure: a round in flight, or a full parked pool, turns
  // the handshake away with a backoff hint instead of queueing unboundedly.
  if (round_open_ || parked_count() >= max_parked()) {
    retry_after.add(1);
    send_frame(conn, encode_retry_after(config_.retry_after_ms));
    conn.close_after_flush = true;
    return;
  }
  handshakes.add(1);
  parked.add(1);
  conn.client_id = hello.client_id;
  conn.state = Conn::State::kParked;
  send_frame(conn, encode_welcome(Welcome{core_.round()}));
}

void FlServer::handle_frame(Conn& conn, Frame frame, std::uint64_t now) {
  static obs::Counter& updates_in = obs::counter("net.update.received");
  static obs::Counter& stale = obs::counter("net.update.stale");
  static obs::Counter& protocol_err = obs::counter("net.protocol_error");

  switch (frame.type) {
    case FrameType::kHello: {
      if (conn.state != Conn::State::kHandshake) {
        protocol_err.add(1);
        close_conn(conn, "protocol");
        return;
      }
      handle_hello(conn, decode_hello(frame.body), now);
      return;
    }
    case FrameType::kUpdate: {
      if (conn.state == Conn::State::kHandshake) {
        protocol_err.add(1);
        close_conn(conn, "protocol");
        return;
      }
      if (conn.state == Conn::State::kParked) {
        // Not a member of the open round (or no round is open): a straggler
        // crossing the cutover boundary. Dropped here; the round it was
        // meant for is sealed.
        stale.add(1);
        return;
      }
      if (++conn.updates_this_round > 4) {
        // Duplicate delivery is a tolerated fault, an update flood is not.
        protocol_err.add(1);
        close_conn(conn, "update_flood");
        return;
      }
      updates_in.add(1);
      fl::ClientUpdateMessage msg = decode_update(frame.body);
      // The wire-level client id is authoritative for bookkeeping, but the
      // payload travels unmodified into the validation pipeline — a spoofed
      // inner id is the pipeline's duplicate screen's problem, same as the
      // in-process path.
      round_updates_.push_back(
          PendingUpdate{conn.client_id, std::move(msg)});
      conn.state = Conn::State::kReplied;
      return;
    }
    case FrameType::kWelcome:
    case FrameType::kModel:
    case FrameType::kRetryAfter:
    case FrameType::kRoundResult:
    case FrameType::kGoodbye:
      // Server-to-client vocabulary arriving at the server.
      protocol_err.add(1);
      close_conn(conn, "protocol");
      return;
  }
}

void FlServer::enforce_deadlines(std::uint64_t now) {
  static obs::Counter& idle = obs::counter("net.conn.idle_timeout");
  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    // The idle deadline targets peers that owe us bytes: an unfinished
    // handshake, a stalled partial frame (slowloris), or an in-round client
    // sitting on its update. Parked clients legitimately idle between
    // rounds and are exempt.
    const bool owes_bytes = conn.state == Conn::State::kHandshake ||
                            conn.state == Conn::State::kInRound ||
                            conn.decoder.mid_frame();
    if (owes_bytes && now - conn.last_activity_ms >= config_.idle_timeout_ms) {
      idle.add(1);
      close_conn(conn, "idle");
    }
  }
}

void FlServer::maybe_start_round(std::uint64_t now) {
  static obs::Counter& started = obs::counter("net.round.started");
  if (round_open_ || goodbye_sent_ || served_ >= config_.rounds) return;
  if (now < next_admission_ms_) return;

  std::vector<index_t> parked;
  for (index_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].sock.valid() && conns_[i].state == Conn::State::kParked) {
      parked.push_back(i);
    }
  }
  if (parked.size() < config_.cohort_size) return;

  // Membership: least-served first (a client bounced by backpressure catches
  // up instead of starving), ties broken by id — deterministic for any
  // connection arrival order.
  std::sort(parked.begin(), parked.end(), [&](index_t a, index_t b) {
    const auto& ca = conns_[a];
    const auto& cb = conns_[b];
    if (ca.rounds_participated != cb.rounds_participated) {
      return ca.rounds_participated < cb.rounds_participated;
    }
    return ca.client_id < cb.client_id;
  });
  parked.resize(config_.cohort_size);

  // Aggregation/dispatch order over the members: ascending id, or — when a
  // selection seed is configured — fl::Simulation's per-round permutation of
  // it, which is what makes loopback serving byte-identical to the
  // in-process engine.
  std::vector<std::uint64_t> sorted_ids;
  sorted_ids.reserve(parked.size());
  for (const auto i : parked) sorted_ids.push_back(conns_[i].client_id);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  round_order_.clear();
  if (selection_) {
    const auto perm = selection_->sample_without_replacement(
        sorted_ids.size(), sorted_ids.size());
    for (const auto p : perm) round_order_.push_back(sorted_ids[p]);
  } else {
    round_order_ = sorted_ids;
  }

  started.add(1);
  round_id_ = core_.round();
  round_open_ = true;
  round_started_ms_ = now;
  round_deadline_ms_ = now + config_.round_timeout_ms;
  round_updates_.clear();

  core_.begin_round();
  for (const auto id : round_order_) {
    const fl::GlobalModelMessage msg = core_.dispatch_to(id);
    for (const auto i : parked) {
      auto& conn = conns_[i];
      if (conn.client_id == id) {
        conn.state = Conn::State::kInRound;
        conn.updates_this_round = 0;
        send_frame(conn, encode_model(msg));
        break;
      }
    }
  }
}

void FlServer::maybe_finish_round(std::uint64_t now) {
  if (!round_open_) return;
  bool complete = true;
  for (auto& conn : conns_) {
    if (conn.sock.valid() && conn.state == Conn::State::kInRound) {
      complete = false;
      break;
    }
  }
  if (complete || now >= round_deadline_ms_) cutover(now);
}

void FlServer::cutover(std::uint64_t now) {
  static obs::Counter& committed_c = obs::counter("net.round.committed");
  static obs::Counter& aborted_c = obs::counter("net.round.aborted");
  static obs::Counter& stragglers_c = obs::counter("net.round.stragglers");
  static obs::Histogram& latency_h = obs::histogram("net.round.latency_ms");

  // Seal the round: assemble the collected updates in the deterministic
  // round order (duplicate deliveries stay adjacent, exactly like the
  // in-process engine's back-to-back duplicate posting).
  std::vector<fl::ClientUpdateMessage> collected;
  collected.reserve(round_updates_.size());
  for (const auto id : round_order_) {
    bool any = false;
    for (auto& pending : round_updates_) {
      if (pending.client_id == id) {
        collected.push_back(std::move(pending.msg));
        any = true;
      }
    }
    if (!any) stragglers_c.add(1);
  }

  const index_t needed =
      fl::quorum_needed(config_.quorum_fraction, round_order_.size());
  tensor::ByteBuffer snapshot;
  if (needed > 0) snapshot = nn::serialize_state(core_.global_model());
  bool committed = true;
  try {
    core_.finish_round(collected, needed);
  } catch (const QuorumError&) {
    // Same contract as fl::Simulation::run_round: restore the pre-round
    // snapshot so the abort is bit-exact even under subclass bookkeeping.
    nn::deserialize_state(core_.global_model(), snapshot);
    aborted_c.add(1);
    committed = false;
  }
  if (committed) {
    committed_c.add(1);
    ++served_;
  }
  const double latency = static_cast<double>(now - round_started_ms_);
  latencies_ms_.push_back(latency);
  latency_h.record(latency);

  const RoundResult result{round_id_, committed};
  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    if (conn.state == Conn::State::kInRound ||
        conn.state == Conn::State::kReplied) {
      ++conn.rounds_participated;
      conn.state = Conn::State::kParked;
      send_frame(conn, encode_round_result(result));
    }
  }
  round_open_ = false;
  round_order_.clear();
  round_updates_.clear();
  next_admission_ms_ = now + config_.admission_window_ms;
  if (served_ >= config_.rounds) finish_serving();
}

void FlServer::finish_serving() {
  goodbye_sent_ = true;
  listener_.close();
  for (auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    send_frame(conn, encode_goodbye());
    conn.close_after_flush = true;
  }
}

bool FlServer::step(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  const bool have_listener = listener_.valid();
  if (have_listener) {
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  }
  for (const auto& conn : conns_) {
    if (!conn.sock.valid()) continue;
    short events = POLLIN;
    if (conn.outbox_off < conn.outbox.size()) events |= POLLOUT;
    fds.push_back(pollfd{conn.sock.fd(), events, 0});
  }
  if (!fds.empty()) {
    ::poll(fds.data(), fds.size(), timeout_ms);
  }

  pump_listener();
  const std::uint64_t now = now_();
  // Pump every live connection each step: poll readiness is a wakeup hint,
  // not a gate, and the non-blocking reads/writes are cheap no-ops on quiet
  // sockets. This keeps the loop correct even for bytes that arrived
  // between poll() and now.
  for (auto& conn : conns_) {
    if (conn.sock.valid()) pump_read(conn, now);
  }
  for (auto& conn : conns_) {
    if (conn.sock.valid()) pump_write(conn);
  }
  enforce_deadlines(now);
  maybe_finish_round(now);
  maybe_start_round(now);

  // Sweep closed connections.
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return !c.sock.valid(); }),
               conns_.end());
  return !finished();
}

bool FlServer::finished() const {
  return served_ >= config_.rounds && conns_.empty();
}

void FlServer::serve() {
  while (step(/*timeout_ms=*/50)) {
  }
}

}  // namespace oasis::net
