// net::FlServer — the socket-facing FL coordinator.
//
// A poll(2)-driven, non-blocking TCP front end over an existing fl::Server:
// the network layer owns connections, framing, admission, and deadlines;
// every protocol decision that touches the model (validation, FedAvg, SGD,
// quorum abort) goes through the same fl::Server entry points the in-process
// engine uses, so the PR 3 validation pipeline screens every byte arriving
// over TCP exactly as it screens in-process updates.
//
// Connection lifecycle:
//
//   accept → kHandshake (await hello/resume) → kParked (awaiting a round)
//          → kInRound (model dispatched, awaiting update) → kReplied
//          → back to kParked after cutover … → kClosing (drain outbox)
//
// Backpressure and abuse bounds:
//   * hellos arriving while a round is open, or when the parked pool is
//     full, are answered with a retry-after frame and closed — the client
//     reconnects after the hinted backoff and joins a later round;
//   * every connection has a per-step read budget (a slow-drip peer cannot
//     monopolize the loop) and a no-progress idle deadline (slowloris);
//   * frame length prefixes are validated against a hard budget before any
//     allocation (see frame.h).
//
// Round cutover is graceful: once the cohort is dispatched, the server
// accepts in-flight updates until everyone replied or the round deadline
// expires, then commits the streamed aggregate and notifies every surviving
// participant before admitting the next cohort.
//
// Survivability (DESIGN.md §5j): accepted updates are screened on arrival
// and folded into a streaming FedAvgAccumulator in the deterministic round
// order; with a ckpt::CheckpointManager configured, the fold frontier is
// checkpointed at round boundaries plus every K accepts, and resume_from()
// reinstates the round ticket, accumulator partials, and accepted-client
// set, after which the server re-binds the same port and reconnecting
// clients resolve their in-flight updates via the kResume handshake. A
// SIGKILL therefore loses at most the accepts since the last snapshot, and
// those are re-requested — never double-counted — on resume.
//
// Determinism: with `selection` seeded, the aggregation order replays
// fl::Simulation's cohort permutation (common::Rng::sample_without_
// replacement over the sorted cohort), so a loopback federation with the
// same seeds produces a final model byte-identical to the in-process run —
// the serving path inherits the repo-wide bit-identity contract, and a
// killed-and-restarted server inherits it too.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ckpt/manager.h"
#include "common/rng.h"
#include "fl/aggregation.h"
#include "fl/server.h"
#include "net/frame.h"
#include "net/socket.h"

namespace oasis::net {

/// Millisecond clock used for all server deadlines. Defaults to
/// std::chrono::steady_clock; deterministic tests inject a counter they
/// advance by hand (the VirtualClock idiom of the round engine).
using TimeSource = std::function<std::uint64_t()>;

/// The default wall clock (steady, ms).
std::uint64_t steady_now_ms();

struct FlServerConfig {
  /// Clients admitted per round (the round admission bound M).
  index_t cohort_size = 4;
  /// Committed rounds to serve before draining and closing.
  std::uint64_t rounds = 1;
  /// Quorum over the cohort (fl::quorum_needed semantics). An aborted round
  /// discards the streamed aggregate (the model was never touched) and does
  /// not count as served.
  real quorum_fraction = 0.0;
  /// When set, replay fl::Simulation's per-round cohort permutation from
  /// this seed (requires every participant id in [0, cohort_size), i.e. the
  /// full-population cohort the equivalence contract is defined over).
  std::optional<std::uint64_t> selection_seed;
  /// Update-collection deadline after dispatch; members still silent at the
  /// deadline are stragglers and excluded from this round.
  std::uint64_t round_timeout_ms = 10'000;
  /// Per-connection no-progress deadline (slowloris defense; also bounds
  /// the handshake).
  std::uint64_t idle_timeout_ms = 10'000;
  /// Pause between cutover and the next admission, so reconnecting clients
  /// can rejoin before the cohort refills. 0 = admit immediately.
  std::uint64_t admission_window_ms = 0;
  /// Backoff hint carried by the retry-after frame.
  std::uint64_t retry_after_ms = 50;
  /// Interval between server-sent kHeartbeat frames to handshaked
  /// connections (keeps client idle deadlines from tripping during long
  /// aggregation stalls). 0 = no heartbeats.
  std::uint64_t heartbeat_ms = 0;
  /// Hard ceiling on one frame body (see FrameDecoder).
  std::size_t max_frame_bytes = kDefaultMaxBodyBytes;
  /// Max bytes drained from one connection per step (fairness bound).
  std::size_t read_budget_bytes = 256 * 1024;
  /// Accepted sockets beyond this are closed immediately.
  index_t max_connections = 64;
  /// Handshaked clients parked awaiting a round; 0 → 2 × cohort_size.
  index_t max_parked = 0;
  /// When set, round state (model, fold frontier, accumulator partials,
  /// accepted-client set) is checkpointed at every round boundary plus
  /// every `checkpoint_every_accepts` folded updates. The manager must
  /// outlive the server. A failing save degrades to in-memory operation
  /// (net.ckpt.degraded) instead of aborting the round.
  ckpt::CheckpointManager* checkpoint = nullptr;
  /// Mid-round snapshot cadence in folded accepts; 0 = boundaries only.
  /// A crash loses at most this many folded accepts of progress — they are
  /// re-requested from their senders via session resume, never recomputed
  /// into a different fold order.
  std::uint64_t checkpoint_every_accepts = 0;
};

class FlServer {
 public:
  /// Progress events the chaos harness arms its kill points on. Fired
  /// synchronously from inside the event loop; a production server never
  /// installs a hook.
  enum class Event : std::uint8_t {
    kUpdateAccepted,   // one accepted update folded into the accumulator
    kMidFrame,         // read pass left a partial frame buffered
    kCheckpointSaved,  // a snapshot reached disk
    kPreResultSend,    // round committed (+ checkpointed), results not yet sent
  };
  using EventHook = std::function<void(Event)>;

  /// `core` must outlive the FlServer. `now` defaults to the steady clock.
  FlServer(fl::Server& core, FlServerConfig config, TimeSource now = {});
  ~FlServer();

  FlServer(const FlServer&) = delete;
  FlServer& operator=(const FlServer&) = delete;

  /// Binds and listens (numeric IPv4 host; port 0 → ephemeral, see port()).
  /// With a checkpoint manager configured and no snapshot on disk yet, a
  /// generation-0 boundary snapshot is written so a crash at any later point
  /// always has something to restore.
  void listen(const std::string& host, std::uint16_t port);

  /// The bound port (resolves an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const;

  /// Restores the newest valid snapshot from the configured checkpoint
  /// manager: model bytes, protocol round, served-round count, and — for a
  /// mid-round snapshot — the round ticket, cohort order, fold frontier,
  /// accumulator partials, and accepted-client set. Call before listen();
  /// reconnecting cohort members are re-dispatched the open round and
  /// already-folded members are told kAccepted instead of re-collected.
  /// Throws CheckpointError (kNoValidGeneration when the directory holds no
  /// loadable snapshot; kStateMismatch when the snapshot belongs to a
  /// differently configured federation). Returns the restored protocol
  /// round.
  std::uint64_t resume_from();

  /// One event-loop iteration: poll up to `timeout_ms`, pump socket IO,
  /// enforce deadlines, start/finish rounds. Returns false once the serving
  /// schedule is complete and every connection has drained.
  bool step(int timeout_ms);

  /// Blocks in step() until the schedule completes.
  void serve();

  /// True once all configured rounds committed and connections drained.
  [[nodiscard]] bool finished() const;

  /// Committed (non-aborted) rounds served so far.
  [[nodiscard]] std::uint64_t rounds_served() const { return served_; }

  /// Wall-clock (TimeSource) dispatch→cutover latency of every finished
  /// round attempt, in order — the load bench derives p50/p99 from this.
  [[nodiscard]] const std::vector<double>& round_latencies_ms() const {
    return latencies_ms_;
  }

  /// Live connections (tests).
  [[nodiscard]] index_t connection_count() const;

  /// True once a checkpoint save has failed and the server fell back to
  /// in-memory operation (the net.ckpt.degraded counter tracks attempts).
  [[nodiscard]] bool checkpoint_degraded() const { return ckpt_degraded_; }

  /// Installs the chaos harness's kill-point hook (tests only).
  void set_event_hook(EventHook hook) { event_hook_ = std::move(hook); }

  fl::Server& core() { return core_; }

 private:
  struct Conn;

  void pump_listener();
  void pump_read(Conn& conn, std::uint64_t now);
  void pump_write(Conn& conn);
  void handle_frame(Conn& conn, Frame frame, std::uint64_t now);
  void handle_hello(Conn& conn, const Hello& hello, std::uint64_t now);
  void handle_resume(Conn& conn, const Resume& resume, std::uint64_t now);
  void handle_update(Conn& conn, const Frame& frame);
  void enforce_deadlines(std::uint64_t now);
  void send_heartbeats(std::uint64_t now);
  void maybe_start_round(std::uint64_t now);
  void maybe_finish_round(std::uint64_t now);
  void cutover(std::uint64_t now);
  void send_frame(Conn& conn, tensor::ByteBuffer frame_bytes);
  void close_conn(Conn& conn, const char* why);
  void finish_serving();
  [[nodiscard]] index_t parked_count() const;
  [[nodiscard]] index_t max_parked() const;
  [[nodiscard]] bool duplicate_live_id(const Conn& conn,
                                       std::uint64_t client_id) const;

  // --- Durable fold (DESIGN.md §5j) ---------------------------------------
  /// Folds accepted updates into the accumulator while the next cohort
  /// member in round order has delivered one — the "fold frontier". Folding
  /// strictly in round order (never arrival order) is what keeps the
  /// streamed aggregate byte-identical to the batch cutover fold, and what
  /// makes a mid-round snapshot's accepted set a simple order prefix.
  void fold_ready();
  /// Snapshot of the complete serving state (model, round ticket, fold
  /// frontier, accumulator partials, accepted ids, selection RNG).
  [[nodiscard]] tensor::ByteBuffer encode_checkpoint();
  void apply_snapshot(const ckpt::Snapshot& snap);
  [[nodiscard]] std::uint64_t checkpoint_generation() const;
  /// Attempts a durable save; a filesystem failure tallies
  /// net.ckpt.degraded and leaves the server running in-memory.
  void save_checkpoint();
  void fire_event(Event event);

  fl::Server& core_;
  FlServerConfig config_;
  TimeSource now_;
  Socket listener_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::vector<Conn> conns_;
  std::optional<common::Rng> selection_;
  bool round_open_ = false;
  std::uint64_t round_id_ = 0;             // protocol round being collected
  std::vector<std::uint64_t> round_order_; // cohort ids, aggregation order
  /// Wire ids that delivered an update this round (any verdict). The round
  /// completes when this covers round_order_; restored from a snapshot as
  /// the folded prefix so a crash re-collects exactly the unfolded tail.
  std::unordered_set<std::uint64_t> round_delivered_;
  /// Accepted updates awaiting their fold-order slot, keyed by wire id.
  /// A vector per id keeps tolerated duplicate deliveries adjacent, exactly
  /// like the batch path's assembled order.
  std::unordered_map<std::uint64_t, std::vector<fl::ClientUpdateMessage>>
      accepted_pending_;
  fl::UpdateScreen screen_;            // streaming validation context
  fl::FedAvgAccumulator agg_;          // the durable streamed aggregate
  /// INNER ids of the updates actually folded into agg_ — a strict subset of
  /// screen_.seen_ids whenever accepted updates are still parked behind the
  /// fold frontier. Snapshots serialize THIS set, not the screen's: an
  /// accepted-but-unfolded update is absent from the serialized partials, so
  /// its sender must be allowed to resend after a restore. Serializing the
  /// full screen set would make the duplicate screen reject that resend and
  /// silently shrink the round's aggregate.
  std::vector<std::uint64_t> folded_inner_;
  std::size_t fold_frontier_ = 0;      // round_order_ prefix already folded
  std::uint64_t round_accepted_ = 0;   // accepted updates folded this round
  std::uint64_t accepts_since_ckpt_ = 0;
  bool ckpt_degraded_ = false;
  std::uint64_t round_deadline_ms_ = 0;
  std::uint64_t round_started_ms_ = 0;
  std::uint64_t next_admission_ms_ = 0;
  std::uint64_t next_heartbeat_ms_ = 0;
  std::uint64_t served_ = 0;
  bool goodbye_sent_ = false;
  std::vector<double> latencies_ms_;
  EventHook event_hook_;
};

}  // namespace oasis::net
