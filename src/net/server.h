// net::FlServer — the socket-facing FL coordinator.
//
// A poll(2)-driven, non-blocking TCP front end over an existing fl::Server:
// the network layer owns connections, framing, admission, and deadlines;
// every protocol decision that touches the model (validation, FedAvg, SGD,
// quorum abort) goes through the same fl::Server entry points the in-process
// engine uses, so the PR 3 validation pipeline screens every byte arriving
// over TCP exactly as it screens in-process updates.
//
// Connection lifecycle:
//
//   accept → kHandshake (await hello) → kParked (admitted, awaiting a round)
//          → kInRound (model dispatched, awaiting update) → kReplied
//          → back to kParked after cutover … → kClosing (drain outbox)
//
// Backpressure and abuse bounds:
//   * hellos arriving while a round is open, or when the parked pool is
//     full, are answered with a retry-after frame and closed — the client
//     reconnects after the hinted backoff and joins a later round;
//   * every connection has a per-step read budget (a slow-drip peer cannot
//     monopolize the loop) and a no-progress idle deadline (slowloris);
//   * frame length prefixes are validated against a hard budget before any
//     allocation (see frame.h).
//
// Round cutover is graceful: once the cohort is dispatched, the server
// accepts in-flight updates until everyone replied or the round deadline
// expires, then aggregates in a deterministic order and notifies every
// surviving participant before admitting the next cohort.
//
// Determinism: with `selection` seeded, the aggregation order replays
// fl::Simulation's cohort permutation (common::Rng::sample_without_
// replacement over the sorted cohort), so a loopback federation with the
// same seeds produces a final model byte-identical to the in-process run —
// the serving path inherits the repo-wide bit-identity contract.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fl/server.h"
#include "net/frame.h"
#include "net/socket.h"

namespace oasis::net {

/// Millisecond clock used for all server deadlines. Defaults to
/// std::chrono::steady_clock; deterministic tests inject a counter they
/// advance by hand (the VirtualClock idiom of the round engine).
using TimeSource = std::function<std::uint64_t()>;

/// The default wall clock (steady, ms).
std::uint64_t steady_now_ms();

struct FlServerConfig {
  /// Clients admitted per round (the round admission bound M).
  index_t cohort_size = 4;
  /// Committed rounds to serve before draining and closing.
  std::uint64_t rounds = 1;
  /// Quorum over the cohort (fl::quorum_needed semantics). An aborted round
  /// rolls the model back bit-exactly and does not count as served.
  real quorum_fraction = 0.0;
  /// When set, replay fl::Simulation's per-round cohort permutation from
  /// this seed (requires every participant id in [0, cohort_size), i.e. the
  /// full-population cohort the equivalence contract is defined over).
  std::optional<std::uint64_t> selection_seed;
  /// Update-collection deadline after dispatch; members still silent at the
  /// deadline are stragglers and excluded from this round.
  std::uint64_t round_timeout_ms = 10'000;
  /// Per-connection no-progress deadline (slowloris defense; also bounds
  /// the handshake).
  std::uint64_t idle_timeout_ms = 10'000;
  /// Pause between cutover and the next admission, so reconnecting clients
  /// can rejoin before the cohort refills. 0 = admit immediately.
  std::uint64_t admission_window_ms = 0;
  /// Backoff hint carried by the retry-after frame.
  std::uint64_t retry_after_ms = 50;
  /// Hard ceiling on one frame body (see FrameDecoder).
  std::size_t max_frame_bytes = kDefaultMaxBodyBytes;
  /// Max bytes drained from one connection per step (fairness bound).
  std::size_t read_budget_bytes = 256 * 1024;
  /// Accepted sockets beyond this are closed immediately.
  index_t max_connections = 64;
  /// Handshaked clients parked awaiting a round; 0 → 2 × cohort_size.
  index_t max_parked = 0;
};

class FlServer {
 public:
  /// `core` must outlive the FlServer. `now` defaults to the steady clock.
  FlServer(fl::Server& core, FlServerConfig config, TimeSource now = {});
  ~FlServer();

  FlServer(const FlServer&) = delete;
  FlServer& operator=(const FlServer&) = delete;

  /// Binds and listens (numeric IPv4 host; port 0 → ephemeral, see port()).
  void listen(const std::string& host, std::uint16_t port);

  /// The bound port (resolves an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const;

  /// One event-loop iteration: poll up to `timeout_ms`, pump socket IO,
  /// enforce deadlines, start/finish rounds. Returns false once the serving
  /// schedule is complete and every connection has drained.
  bool step(int timeout_ms);

  /// Blocks in step() until the schedule completes.
  void serve();

  /// True once all configured rounds committed and connections drained.
  [[nodiscard]] bool finished() const;

  /// Committed (non-aborted) rounds served so far.
  [[nodiscard]] std::uint64_t rounds_served() const { return served_; }

  /// Wall-clock (TimeSource) dispatch→cutover latency of every finished
  /// round attempt, in order — the load bench derives p50/p99 from this.
  [[nodiscard]] const std::vector<double>& round_latencies_ms() const {
    return latencies_ms_;
  }

  /// Live connections (tests).
  [[nodiscard]] index_t connection_count() const;

  fl::Server& core() { return core_; }

 private:
  struct Conn;

  void pump_listener();
  void pump_read(Conn& conn, std::uint64_t now);
  void pump_write(Conn& conn);
  void handle_frame(Conn& conn, Frame frame, std::uint64_t now);
  void handle_hello(Conn& conn, const Hello& hello, std::uint64_t now);
  void enforce_deadlines(std::uint64_t now);
  void maybe_start_round(std::uint64_t now);
  void maybe_finish_round(std::uint64_t now);
  void cutover(std::uint64_t now);
  void send_frame(Conn& conn, tensor::ByteBuffer frame_bytes);
  void close_conn(Conn& conn, const char* why);
  void finish_serving();
  [[nodiscard]] index_t parked_count() const;
  [[nodiscard]] index_t max_parked() const;

  /// An update collected for the open round, keyed by the WIRE-level client
  /// id (the connection that delivered it) so cutover can assemble the
  /// deterministic aggregation order even after the sender disconnected.
  struct PendingUpdate {
    std::uint64_t client_id;
    fl::ClientUpdateMessage msg;
  };

  fl::Server& core_;
  FlServerConfig config_;
  TimeSource now_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::vector<Conn> conns_;
  std::optional<common::Rng> selection_;
  bool round_open_ = false;
  std::uint64_t round_id_ = 0;             // protocol round being collected
  std::vector<std::uint64_t> round_order_; // cohort ids, aggregation order
  std::vector<PendingUpdate> round_updates_;  // arrival order
  std::uint64_t round_deadline_ms_ = 0;
  std::uint64_t round_started_ms_ = 0;
  std::uint64_t next_admission_ms_ = 0;
  std::uint64_t served_ = 0;
  bool goodbye_sent_ = false;
  std::vector<double> latencies_ms_;
};

}  // namespace oasis::net
