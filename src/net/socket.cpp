#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/error.h"

// SIGPIPE discipline: writing into a peer-closed socket must surface as a
// typed NetError{kIo}, never as process death. Linux suppresses the signal
// per-send via MSG_NOSIGNAL; BSD/macOS lack that flag but offer the
// per-socket SO_NOSIGPIPE option. Cover both: define the flag away where it
// does not exist and arm the socket option where it does, so every
// write_some() path is signal-free on either platform.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace oasis::net {
namespace {

void set_no_sigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

[[noreturn]] void throw_io(const std::string& op) {
  const int err = errno;
  throw NetError(NetError::Reason::kIo,
                 op + ": " + std::strerror(err) + " (errno " +
                     std::to_string(err) + ")");
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_io("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError(NetError::Reason::kIo,
                   "not a numeric IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_io("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_io("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_io("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) < 0) throw_io("listen");
  set_nonblocking(sock.fd());
  return sock;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_io("socket");
  const sockaddr_in addr = make_addr(host, port);
  // Blocking connect: on loopback this completes as soon as the kernel
  // queues the connection on the listener's backlog — it does not wait for
  // the server to accept(), so even a single-threaded steppable test never
  // deadlocks here.
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_io("connect " + host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_no_sigpipe(sock.fd());
  set_nonblocking(sock.fd());
  return sock;
}

Socket tcp_accept(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket();
    }
    throw_io("accept");
  }
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_no_sigpipe(sock.fd());
  set_nonblocking(sock.fd());
  return sock;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_io("getsockname");
  }
  return ntohs(addr.sin_port);
}

long read_some(const Socket& socket, std::uint8_t* out, std::size_t n) {
  ssize_t got;
  do {
    got = ::recv(socket.fd(), out, n, 0);
  } while (got < 0 && errno == EINTR);
  if (got > 0) return static_cast<long>(got);
  if (got == 0) return -1;  // orderly peer shutdown
  if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
  throw_io("recv");
}

long write_some(const Socket& socket, const std::uint8_t* data,
                std::size_t n) {
  ssize_t put;
  do {
    put = ::send(socket.fd(), data, n, MSG_NOSIGNAL);
  } while (put < 0 && errno == EINTR);
  if (put >= 0) return static_cast<long>(put);
  if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
  throw_io("send");
}

}  // namespace oasis::net
