// Thin RAII layer over POSIX TCP sockets.
//
// Everything oasis::net touches a file descriptor through lives here:
// non-blocking listeners/connections, EINTR-safe read/write that report
// would-block as zero progress, and ephemeral-port discovery for tests
// (listen on port 0, ask the kernel what it picked). Only numeric IPv4
// addresses are accepted — name resolution is nondeterministic and the
// serving layer's tests demand reproducible behavior.
#pragma once

#include <cstdint>
#include <string>

namespace oasis::net {

/// Move-only owner of one socket fd. Closing is idempotent; a destructed
/// socket never leaks its descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens a non-blocking TCP socket on `host:port` (numeric IPv4;
/// port 0 asks the kernel for an ephemeral port — read it back with
/// local_port). Throws NetError{kIo} on any syscall failure.
Socket tcp_listen(const std::string& host, std::uint16_t port,
                  int backlog = 64);

/// Connects to `host:port` (numeric IPv4), returning a connected socket
/// already switched to non-blocking mode. Throws NetError{kIo} when the
/// connection is refused or any syscall fails.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Accepts one pending connection as a non-blocking socket. Returns an
/// invalid Socket when no connection is pending.
Socket tcp_accept(const Socket& listener);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(const Socket& socket);

/// Reads up to `n` bytes. Returns bytes read, 0 when the read would block,
/// and -1 when the peer closed the connection. Throws NetError{kIo} on
/// errno-level failure. EINTR is retried internally.
long read_some(const Socket& socket, std::uint8_t* out, std::size_t n);

/// Writes up to `n` bytes (MSG_NOSIGNAL — a dead peer yields an error, not
/// SIGPIPE). Returns bytes written, 0 when the write would block. Throws
/// NetError{kIo} on failure (including EPIPE/ECONNRESET).
long write_some(const Socket& socket, const std::uint8_t* data, std::size_t n);

}  // namespace oasis::net
