#include "nn/activations.h"

#include <cmath>

#include "tensor/ops.h"

namespace oasis::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& x, bool /*training*/) {
  cached_pre_ = x;
  return tensor::relu(x);
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_out) {
  return tensor::relu_backward(grad_out, cached_pre_);
}

tensor::Tensor Tanh::forward(const tensor::Tensor& x, bool /*training*/) {
  tensor::Tensor out = x;
  for (auto& v : out.data()) v = std::tanh(v);
  cached_out_ = out;
  return out;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_out) {
  tensor::check_same_shape(grad_out.shape(), cached_out_.shape(),
                           "Tanh backward");
  tensor::Tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto y = cached_out_.data();
  for (index_t i = 0; i < g.size(); ++i) g[i] *= 1.0 - y[i] * y[i];
  return grad_in;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& x, bool /*training*/) {
  tensor::Tensor out = x;
  for (auto& v : out.data()) v = 1.0 / (1.0 + std::exp(-v));
  cached_out_ = out;
  return out;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& grad_out) {
  tensor::check_same_shape(grad_out.shape(), cached_out_.shape(),
                           "Sigmoid backward");
  tensor::Tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto y = cached_out_.data();
  for (index_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0 - y[i]);
  return grad_in;
}

}  // namespace oasis::nn
