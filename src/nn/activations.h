// Stateless activation layers.
#pragma once

#include "nn/module.h"

namespace oasis::nn {

/// Rectified linear unit. The attacks in this repo specifically target
/// FC+ReLU blocks: a neuron "activates" on x iff its pre-activation is
/// positive, which is the condition Proposition 1 of the paper reasons about.
class ReLU : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor cached_pre_;
};

/// Hyperbolic tangent (used by some baseline models).
class Tanh : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_out_;
};

/// Sigmoid activation.
class Sigmoid : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  tensor::Tensor cached_out_;
};

}  // namespace oasis::nn
