#include "nn/batchnorm.h"

#include <cmath>

#include "tensor/ops.h"

namespace oasis::nn {

BatchNorm2d::BatchNorm2d(index_t channels, real momentum, real eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", tensor::Tensor::ones({channels})),
      beta_("bn.beta", tensor::Tensor({channels})),
      running_mean_({channels}),
      running_var_(tensor::Tensor::ones({channels})) {}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& x, bool training) {
  OASIS_CHECK_MSG(x.rank() == 4 && x.dim(1) == channels_,
                  "BatchNorm2d: bad input " << tensor::to_string(x.shape()));
  in_shape_ = x.shape();
  cached_training_ = training;
  const index_t b = x.dim(0), hw = x.dim(2) * x.dim(3);
  const real count = static_cast<real>(b * hw);

  tensor::Tensor mean({channels_}), var({channels_});
  if (training) {
    for (index_t c = 0; c < channels_; ++c) {
      real s = 0.0;
      for (index_t n = 0; n < b; ++n)
        for (index_t p = 0; p < hw; ++p)
          s += x.data()[(n * channels_ + c) * hw + p];
      mean[c] = s / count;
    }
    for (index_t c = 0; c < channels_; ++c) {
      real s = 0.0;
      for (index_t n = 0; n < b; ++n)
        for (index_t p = 0; p < hw; ++p) {
          const real d = x.data()[(n * channels_ + c) * hw + p] - mean[c];
          s += d * d;
        }
      var[c] = s / count;
    }
    for (index_t c = 0; c < channels_; ++c) {
      running_mean_[c] =
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0 - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  tensor::Tensor invstd({channels_});
  for (index_t c = 0; c < channels_; ++c)
    invstd[c] = 1.0 / std::sqrt(var[c] + eps_);

  tensor::Tensor y(x.shape());
  tensor::Tensor xhat(x.shape());
  for (index_t n = 0; n < b; ++n)
    for (index_t c = 0; c < channels_; ++c)
      for (index_t p = 0; p < hw; ++p) {
        const index_t i = (n * channels_ + c) * hw + p;
        const real h = (x.data()[i] - mean[c]) * invstd[c];
        xhat.data()[i] = h;
        y.data()[i] = gamma_.value[c] * h + beta_.value[c];
      }
  cached_xhat_ = std::move(xhat);
  cached_invstd_ = std::move(invstd);
  return y;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_out) {
  tensor::check_same_shape(grad_out.shape(), in_shape_, "BatchNorm2d backward");
  const index_t b = in_shape_[0], hw = in_shape_[2] * in_shape_[3];
  const real count = static_cast<real>(b * hw);

  tensor::Tensor grad_in(in_shape_);
  for (index_t c = 0; c < channels_; ++c) {
    real sum_g = 0.0, sum_gx = 0.0;
    for (index_t n = 0; n < b; ++n)
      for (index_t p = 0; p < hw; ++p) {
        const index_t i = (n * channels_ + c) * hw + p;
        sum_g += grad_out.data()[i];
        sum_gx += grad_out.data()[i] * cached_xhat_.data()[i];
      }
    gamma_.grad[c] += sum_gx;
    beta_.grad[c] += sum_g;

    if (cached_training_) {
      // d/dx of batch-statistic normalization (standard BN backward).
      const real scale = gamma_.value[c] * cached_invstd_[c];
      for (index_t n = 0; n < b; ++n)
        for (index_t p = 0; p < hw; ++p) {
          const index_t i = (n * channels_ + c) * hw + p;
          grad_in.data()[i] =
              scale * (grad_out.data()[i] - sum_g / count -
                       cached_xhat_.data()[i] * sum_gx / count);
        }
    } else {
      const real scale = gamma_.value[c] * cached_invstd_[c];
      for (index_t n = 0; n < b; ++n)
        for (index_t p = 0; p < hw; ++p) {
          const index_t i = (n * channels_ + c) * hw + p;
          grad_in.data()[i] = scale * grad_out.data()[i];
        }
    }
  }
  return grad_in;
}

}  // namespace oasis::nn
