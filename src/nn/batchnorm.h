// Per-channel batch normalization for [B, C, H, W] tensors.
#pragma once

#include "nn/module.h"

namespace oasis::nn {

/// BatchNorm2d with learnable scale/shift and running statistics.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates (exponential moving average); eval mode uses running stats.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(index_t channels, real momentum = 0.1,
                       real eps = 1e-5);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<tensor::Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

  /// Running statistics (non-trainable state that FL snapshots must carry).
  tensor::Tensor& running_mean() { return running_mean_; }
  tensor::Tensor& running_var() { return running_var_; }

 private:
  index_t channels_;
  real momentum_, eps_;
  Parameter gamma_;  // [C] scale
  Parameter beta_;   // [C] shift
  tensor::Tensor running_mean_;  // [C]
  tensor::Tensor running_var_;   // [C]
  // Backward cache (training mode).
  tensor::Tensor cached_xhat_;   // normalized input
  tensor::Tensor cached_invstd_; // [C]
  tensor::Shape in_shape_;
  bool cached_training_ = false;
};

}  // namespace oasis::nn
