#include "nn/conv2d.h"

#include "nn/init.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace oasis::nn {

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
               index_t stride, index_t pad, common::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight",
              init::kaiming_uniform({out_channels, in_channels * kernel * kernel},
                                    in_channels * kernel * kernel, rng)),
      bias_("conv.bias", tensor::Tensor({out_channels})) {
  OASIS_CHECK(kernel >= 1 && stride >= 1);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4 && x.dim(1) == in_ch_,
                  "Conv2d: bad input " << tensor::to_string(x.shape()));
  const index_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t oh = tensor::conv_out_extent(h, k_, stride_, pad_);
  const index_t ow = tensor::conv_out_extent(w, k_, stride_, pad_);
  cached_h_ = h;
  cached_w_ = w;
  cached_batch_ = batch;
  cached_cols_.assign(batch, tensor::Tensor());
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.conv2d.forward.calls");
    static obs::Counter& flops = obs::counter("kernel.conv2d.forward.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2 * batch * out_ch_ * in_ch_ * k_ *
                                         k_ * oh * ow));
  }

  tensor::Tensor y({batch, out_ch_, oh, ow});
  // Samples are independent: each writes its own output slice and im2col
  // cache slot, so the batch loop parallelizes with no ordering effects.
  runtime::parallel_for(0, batch, 1, [&](index_t n0, index_t n1) {
    for (index_t n = n0; n < n1; ++n) {
      tensor::Tensor cols = tensor::im2col(x.slice(n), k_, k_, stride_, pad_);
      tensor::Tensor out = tensor::matmul(weight_.value, cols);  // [out_ch, oh*ow]
      for (index_t c = 0; c < out_ch_; ++c) {
        const real b = bias_.value[c];
        for (index_t p = 0; p < oh * ow; ++p) {
          y.data()[((n * out_ch_ + c) * oh * ow) + p] = out.at2(c, p) + b;
        }
      }
      cached_cols_[n] = std::move(cols);
    }
  });
  return y;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.rank() == 4 && grad_out.dim(0) == cached_batch_ &&
                      grad_out.dim(1) == out_ch_,
                  "Conv2d backward: bad grad "
                      << tensor::to_string(grad_out.shape()));
  const index_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const index_t pix = oh * ow;
  const index_t cols_rows = in_ch_ * k_ * k_;
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.conv2d.backward.calls");
    static obs::Counter& flops = obs::counter("kernel.conv2d.backward.flops");
    calls.add(1);
    // Weight-gradient and input-gradient GEMMs, 2 flops per multiply-add.
    flops.add(static_cast<std::uint64_t>(4 * cached_batch_ * out_ch_ *
                                         cols_rows * pix));
  }
  const real* gy_base = grad_out.data().data();
  real* gw = weight_.grad.data().data();
  real* gb = bias_.grad.data().data();

  // Weight/bias gradients, parallel over output channels: row c of the
  // weight gradient only ever receives contributions computed in its own
  // chunk, accumulated over samples in ascending order — so the result is
  // bit-identical for any thread count (no shared accumulators, no partials).
  runtime::parallel_for(0, out_ch_, 1, [&](index_t c0, index_t c1) {
    for (index_t n = 0; n < cached_batch_; ++n) {
      const real* gy_n = gy_base + n * out_ch_ * pix;
      const real* cols = cached_cols_[n].data().data();  // [cols_rows, pix]
      for (index_t c = c0; c < c1; ++c) {
        const real* gy_row = gy_n + c * pix;
        real* gw_row = gw + c * cols_rows;
        for (index_t i = 0; i < cols_rows; ++i) {
          const real* col_row = cols + i * pix;
          real s = 0.0;
          for (index_t p = 0; p < pix; ++p) s += gy_row[p] * col_row[p];
          gw_row[i] += s;
        }
        real s = 0.0;
        for (index_t p = 0; p < pix; ++p) s += gy_row[p];
        gb[c] += s;
      }
    }
  });

  // Input gradient, parallel over samples: each writes its own slice.
  tensor::Tensor grad_x({cached_batch_, in_ch_, cached_h_, cached_w_});
  runtime::parallel_for(0, cached_batch_, 1, [&](index_t n0, index_t n1) {
    for (index_t n = n0; n < n1; ++n) {
      tensor::Tensor gy = grad_out.slice(n).reshaped({out_ch_, pix});
      tensor::Tensor gcols = tensor::matmul_tn(weight_.value, gy);
      tensor::Tensor gx = tensor::col2im(gcols, in_ch_, cached_h_, cached_w_,
                                         k_, k_, stride_, pad_);
      auto dst = grad_x.data();
      auto src = gx.data();
      const index_t sz = src.size();
      for (index_t i = 0; i < sz; ++i) dst[n * sz + i] = src[i];
    }
  });
  return grad_x;
}

}  // namespace oasis::nn
