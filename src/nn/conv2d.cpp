#include "nn/conv2d.h"

#include <cstring>

#include "nn/init.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "tensor/gemm/gemm.h"
#include "tensor/ops.h"

namespace oasis::nn {

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
               index_t stride, index_t pad, common::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight",
              init::kaiming_uniform({out_channels, in_channels * kernel * kernel},
                                    in_channels * kernel * kernel, rng)),
      bias_("conv.bias", tensor::Tensor({out_channels})) {
  OASIS_CHECK(kernel >= 1 && stride >= 1);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4 && x.dim(1) == in_ch_,
                  "Conv2d: bad input " << tensor::to_string(x.shape()));
  const index_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t oh = tensor::conv_out_extent(h, k_, stride_, pad_);
  const index_t ow = tensor::conv_out_extent(w, k_, stride_, pad_);
  const index_t pix = oh * ow;
  const index_t cols_rows = in_ch_ * k_ * k_;
  cached_h_ = h;
  cached_w_ = w;
  cached_batch_ = batch;
  // The column cache persists across rounds; steady-state training re-fills
  // it in place with zero allocations.
  if (cached_cols_.rank() != 3 || cached_cols_.dim(0) != batch ||
      cached_cols_.dim(1) != cols_rows || cached_cols_.dim(2) != pix) {
    cached_cols_ = tensor::Tensor({batch, cols_rows, pix});
  }
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.conv2d.forward.calls");
    static obs::Counter& flops = obs::counter("kernel.conv2d.forward.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2 * batch * out_ch_ * cols_rows *
                                         pix));
  }

  tensor::Tensor y({batch, out_ch_, oh, ow});
  const real* px = x.data().data();
  const real* pw = weight_.value.data().data();
  real* pcols = cached_cols_.data().data();
  real* py = y.data().data();
  // Samples are independent: each writes its own output slice and im2col
  // cache slot, so the batch loop parallelizes with no ordering effects.
  runtime::parallel_for(0, batch, 1, [&](index_t n0, index_t n1) {
    for (index_t n = n0; n < n1; ++n) {
      real* cols_n = pcols + n * cols_rows * pix;
      tensor::im2col_into(px + n * in_ch_ * h * w, in_ch_, h, w, k_, k_,
                          stride_, pad_, cols_n);
      // y slice is zero-initialized, so the accumulating GEMM leaves exactly
      // W·cols in it; the bias is then one add per output element.
      real* y_n = py + n * out_ch_ * pix;
      tensor::gemm::run(tensor::gemm::Variant::NN, out_ch_, cols_rows, pix, pw,
                        cols_n, y_n);
      for (index_t c = 0; c < out_ch_; ++c) {
        const real b = bias_.value[c];
        real* y_row = y_n + c * pix;
        for (index_t p = 0; p < pix; ++p) y_row[p] += b;
      }
    }
  });
  return y;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.rank() == 4 && grad_out.dim(0) == cached_batch_ &&
                      grad_out.dim(1) == out_ch_,
                  "Conv2d backward: bad grad "
                      << tensor::to_string(grad_out.shape()));
  const index_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const index_t pix = oh * ow;
  const index_t cols_rows = in_ch_ * k_ * k_;
  OASIS_CHECK_MSG(cached_cols_.rank() == 3 && cached_cols_.dim(2) == pix,
                  "Conv2d backward: grad spatial extent mismatch");
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.conv2d.backward.calls");
    static obs::Counter& flops = obs::counter("kernel.conv2d.backward.flops");
    calls.add(1);
    // Weight-gradient and input-gradient GEMMs, 2 flops per multiply-add.
    flops.add(static_cast<std::uint64_t>(4 * cached_batch_ * out_ch_ *
                                         cols_rows * pix));
  }
  const real* gy_base = grad_out.data().data();
  const real* pcols = cached_cols_.data().data();
  const real* pw = weight_.value.data().data();
  real* gw = weight_.grad.data().data();
  real* gb = bias_.grad.data().data();

  // Weight/bias gradients: per sample (ascending, so the accumulation order
  // is fixed) one NT GEMM — grad_W += gy_n · cols_nᵀ — into a zeroed
  // workspace tile that is then folded into the gradient. The GEMM
  // parallelizes internally over row panels of out_ch; every per-element
  // multiply-add chain matches the pre-blocking hand loop bit-for-bit.
  {
    runtime::Workspace& ws = runtime::Workspace::tls();
    runtime::Workspace::Scope scope(ws);
    real* tile = ws.alloc(out_ch_ * cols_rows);
    for (index_t n = 0; n < cached_batch_; ++n) {
      const real* gy_n = gy_base + n * out_ch_ * pix;
      const real* cols_n = pcols + n * cols_rows * pix;
      std::memset(tile, 0, sizeof(real) * out_ch_ * cols_rows);
      tensor::gemm::run(tensor::gemm::Variant::NT, out_ch_, pix, cols_rows,
                        gy_n, cols_n, tile);
      for (index_t i = 0; i < out_ch_ * cols_rows; ++i) gw[i] += tile[i];
      for (index_t c = 0; c < out_ch_; ++c) {
        const real* gy_row = gy_n + c * pix;
        real s = 0.0;
        for (index_t p = 0; p < pix; ++p) s += gy_row[p];
        gb[c] += s;
      }
    }
  }

  // Input gradient, parallel over samples: each writes its own slice of the
  // zero-initialized grad_x, via a per-thread workspace column buffer.
  tensor::Tensor grad_x({cached_batch_, in_ch_, cached_h_, cached_w_});
  real* gx_base = grad_x.data().data();
  const index_t x_size = in_ch_ * cached_h_ * cached_w_;
  runtime::parallel_for(0, cached_batch_, 1, [&](index_t n0, index_t n1) {
    runtime::Workspace& ws = runtime::Workspace::tls();
    runtime::Workspace::Scope scope(ws);
    real* gcols = ws.alloc(cols_rows * pix);
    for (index_t n = n0; n < n1; ++n) {
      const real* gy_n = gy_base + n * out_ch_ * pix;
      std::memset(gcols, 0, sizeof(real) * cols_rows * pix);
      tensor::gemm::run(tensor::gemm::Variant::TN, cols_rows, out_ch_, pix, pw,
                        gy_n, gcols);
      tensor::col2im_add(gcols, in_ch_, cached_h_, cached_w_, k_, k_, stride_,
                         pad_, gx_base + n * x_size);
    }
  });
  return grad_x;
}

}  // namespace oasis::nn
