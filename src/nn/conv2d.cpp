#include "nn/conv2d.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace oasis::nn {

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
               index_t stride, index_t pad, common::Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight",
              init::kaiming_uniform({out_channels, in_channels * kernel * kernel},
                                    in_channels * kernel * kernel, rng)),
      bias_("conv.bias", tensor::Tensor({out_channels})) {
  OASIS_CHECK(kernel >= 1 && stride >= 1);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4 && x.dim(1) == in_ch_,
                  "Conv2d: bad input " << tensor::to_string(x.shape()));
  const index_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t oh = tensor::conv_out_extent(h, k_, stride_, pad_);
  const index_t ow = tensor::conv_out_extent(w, k_, stride_, pad_);
  cached_h_ = h;
  cached_w_ = w;
  cached_batch_ = batch;
  cached_cols_.clear();
  cached_cols_.reserve(batch);

  tensor::Tensor y({batch, out_ch_, oh, ow});
  for (index_t n = 0; n < batch; ++n) {
    tensor::Tensor cols = tensor::im2col(x.slice(n), k_, k_, stride_, pad_);
    tensor::Tensor out = tensor::matmul(weight_.value, cols);  // [out_ch, oh*ow]
    for (index_t c = 0; c < out_ch_; ++c) {
      const real b = bias_.value[c];
      for (index_t p = 0; p < oh * ow; ++p) {
        y.data()[((n * out_ch_ + c) * oh * ow) + p] = out.at2(c, p) + b;
      }
    }
    cached_cols_.push_back(std::move(cols));
  }
  return y;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.rank() == 4 && grad_out.dim(0) == cached_batch_ &&
                      grad_out.dim(1) == out_ch_,
                  "Conv2d backward: bad grad "
                      << tensor::to_string(grad_out.shape()));
  const index_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  tensor::Tensor grad_x({cached_batch_, in_ch_, cached_h_, cached_w_});
  for (index_t n = 0; n < cached_batch_; ++n) {
    // [out_ch, oh*ow] view of this sample's output gradient.
    tensor::Tensor gy = grad_out.slice(n).reshaped({out_ch_, oh * ow});
    weight_.grad += tensor::matmul_nt(gy, cached_cols_[n]);
    for (index_t c = 0; c < out_ch_; ++c) {
      real s = 0.0;
      for (index_t p = 0; p < oh * ow; ++p) s += gy.at2(c, p);
      bias_.grad[c] += s;
    }
    tensor::Tensor gcols = tensor::matmul_tn(weight_.value, gy);
    tensor::Tensor gx = tensor::col2im(gcols, in_ch_, cached_h_, cached_w_,
                                       k_, k_, stride_, pad_);
    auto dst = grad_x.data();
    auto src = gx.data();
    const index_t sz = src.size();
    for (index_t i = 0; i < sz; ++i) dst[n * sz + i] = src[i];
  }
  return grad_x;
}

}  // namespace oasis::nn
