// 2-D convolution layer (im2col + blocked-GEMM implementation).
#pragma once

#include "nn/module.h"
#include "tensor/tensor.h"

namespace oasis::nn {

/// Conv2d over [B, C, H, W] inputs with square kernels, zero padding.
///
/// Weight stored as a [out_channels, in_channels*k*k] matrix so the forward
/// pass per sample is a single matmul against the im2col buffer.
class Conv2d : public Module {
 public:
  Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
         index_t stride, index_t pad, common::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  index_t in_ch_, out_ch_, k_, stride_, pad_;
  Parameter weight_;  // [out_ch, in_ch*k*k]
  Parameter bias_;    // [out_ch]
  // Cached im2col columns for backward, [batch, in_ch*k*k, oh*ow]. The
  // storage persists across forward calls (re-allocated only when the input
  // geometry changes), so the im2col hot loop is allocation-free.
  tensor::Tensor cached_cols_;
  index_t cached_h_ = 0, cached_w_ = 0, cached_batch_ = 0;
};

}  // namespace oasis::nn
