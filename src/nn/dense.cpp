#include "nn/dense.h"

#include <cstring>

#include "nn/init.h"
#include "runtime/workspace.h"
#include "tensor/gemm/gemm.h"
#include "tensor/ops.h"

namespace oasis::nn {

Dense::Dense(index_t in_features, index_t out_features, common::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight",
              init::kaiming_uniform({out_features, in_features}, in_features,
                                    rng)),
      bias_("dense.bias", tensor::Tensor({out_features})) {}

tensor::Tensor Dense::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_,
                  "Dense(" << in_ << "->" << out_ << "): bad input "
                           << tensor::to_string(x.shape()));
  cached_input_ = x;
  const index_t batch = x.dim(0);
  // y = x · Wᵀ directly from the NT kernel — W stays in its (out×in) layout,
  // no transpose copy.
  tensor::Tensor y({batch, out_});
  tensor::gemm::run(tensor::gemm::Variant::NT, batch, in_, out_,
                    x.data().data(), weight_.value.data().data(),
                    y.data().data());
  tensor::add_row_vector(y, bias_.value);
  return y;
}

tensor::Tensor Dense::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.rank() == 2 && grad_out.dim(1) == out_,
                  "Dense backward: bad grad "
                      << tensor::to_string(grad_out.shape()));
  OASIS_CHECK_MSG(grad_out.dim(0) == cached_input_.dim(0),
                  "Dense backward: batch mismatch");
  const index_t batch = grad_out.dim(0);
  // grad_W[o, i] = Σ_b grad_out[b, o] * x[b, i]  — the batch-summed gradient
  // the attacks invert. TN kernel: no transpose copy of grad_out, and the
  // temporary product lives in the per-thread workspace, not the heap.
  {
    runtime::Workspace& ws = runtime::Workspace::tls();
    runtime::Workspace::Scope scope(ws);
    real* tile = ws.alloc(out_ * in_);
    std::memset(tile, 0, sizeof(real) * out_ * in_);
    tensor::gemm::run(tensor::gemm::Variant::TN, out_, batch, in_,
                      grad_out.data().data(), cached_input_.data().data(),
                      tile);
    real* gw = weight_.grad.data().data();
    for (index_t i = 0; i < out_ * in_; ++i) gw[i] += tile[i];
  }
  bias_.grad += tensor::sum_rows(grad_out);
  // grad_x = grad_out · W.
  tensor::Tensor grad_x({batch, in_});
  tensor::gemm::run(tensor::gemm::Variant::NN, batch, out_, in_,
                    grad_out.data().data(), weight_.value.data().data(),
                    grad_x.data().data());
  return grad_x;
}

}  // namespace oasis::nn
