#include "nn/dense.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace oasis::nn {

Dense::Dense(index_t in_features, index_t out_features, common::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight",
              init::kaiming_uniform({out_features, in_features}, in_features,
                                    rng)),
      bias_("dense.bias", tensor::Tensor({out_features})) {}

tensor::Tensor Dense::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_,
                  "Dense(" << in_ << "->" << out_ << "): bad input "
                           << tensor::to_string(x.shape()));
  cached_input_ = x;
  tensor::Tensor y = tensor::matmul_nt(x, weight_.value);  // [B, out]
  tensor::add_row_vector(y, bias_.value);
  return y;
}

tensor::Tensor Dense::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.rank() == 2 && grad_out.dim(1) == out_,
                  "Dense backward: bad grad "
                      << tensor::to_string(grad_out.shape()));
  OASIS_CHECK_MSG(grad_out.dim(0) == cached_input_.dim(0),
                  "Dense backward: batch mismatch");
  // grad_W[o, i] = Σ_b grad_out[b, o] * x[b, i]  — the batch-summed gradient
  // the attacks invert.
  weight_.grad += tensor::matmul_tn(grad_out, cached_input_);
  bias_.grad += tensor::sum_rows(grad_out);
  // grad_x = grad_out · W.
  return tensor::matmul(grad_out, weight_.value);
}

}  // namespace oasis::nn
