// Fully-connected layer — the layer class the active attacks implant.
#pragma once

#include "nn/module.h"

namespace oasis::nn {

/// y = x · Wᵀ + b with W stored as [out_features, in_features].
///
/// The row-per-neuron weight layout matches the paper's notation
/// (W ∈ R^{n×d}): row i of `weight()` is the weight vector of neuron i, and
/// the reconstruction arithmetic (ΔW_i / Δb_i) indexes rows directly.
class Dense : public Module {
 public:
  /// Weights initialized with Kaiming-uniform; biases zero.
  Dense(index_t in_features, index_t out_features, common::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Dense"; }

  [[nodiscard]] index_t in_features() const { return in_; }
  [[nodiscard]] index_t out_features() const { return out_; }

  /// Direct parameter access — used by the dishonest server to implant
  /// malicious weights and by tests.
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  [[nodiscard]] const Parameter& weight() const { return weight_; }
  [[nodiscard]] const Parameter& bias() const { return bias_; }

 private:
  index_t in_;
  index_t out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  tensor::Tensor cached_input_;  // [B, in]
};

}  // namespace oasis::nn
