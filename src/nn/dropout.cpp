#include "nn/dropout.h"

namespace oasis::nn {

Dropout::Dropout(real p, common::Rng rng) : p_(p), rng_(rng) {
  OASIS_CHECK_MSG(p_ >= 0.0 && p_ < 1.0, "dropout p=" << p_);
}

tensor::Tensor Dropout::forward(const tensor::Tensor& x, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return x;
  const real keep_scale = 1.0 / (1.0 - p_);
  mask_.resize(x.size());
  tensor::Tensor out = x;
  auto v = out.data();
  for (index_t i = 0; i < v.size(); ++i) {
    mask_[i] = rng_.bernoulli(p_) ? 0.0 : keep_scale;
    v[i] *= mask_[i];
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_out) {
  if (!last_training_ || p_ == 0.0) return grad_out;
  OASIS_CHECK_MSG(grad_out.size() == mask_.size(),
                  "Dropout backward: size mismatch");
  tensor::Tensor grad_in = grad_out;
  auto g = grad_in.data();
  for (index_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return grad_in;
}

}  // namespace oasis::nn
