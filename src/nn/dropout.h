// Dropout layer (inverted scaling).
#pragma once

#include <vector>

#include "nn/module.h"

namespace oasis::nn {

/// Zeroes each activation independently with probability p during training
/// and scales survivors by 1/(1-p) ("inverted dropout", so eval mode is the
/// identity). The mask is drawn from the layer's own RNG stream at every
/// training forward pass and cached for backward.
class Dropout : public Module {
 public:
  explicit Dropout(real p, common::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

  [[nodiscard]] real p() const { return p_; }

 private:
  real p_;
  common::Rng rng_;
  std::vector<real> mask_;  // 0 or 1/(1-p) per element of the last forward
  bool last_training_ = false;
};

}  // namespace oasis::nn
