#include "nn/init.h"

#include <cmath>

namespace oasis::nn::init {

tensor::Tensor kaiming_uniform(tensor::Shape shape, index_t fan_in,
                               common::Rng& rng) {
  OASIS_CHECK(fan_in > 0);
  const real bound = std::sqrt(6.0 / static_cast<real>(fan_in));
  return tensor::Tensor::rand(std::move(shape), rng, -bound, bound);
}

tensor::Tensor xavier_uniform(tensor::Shape shape, index_t fan_in,
                              index_t fan_out, common::Rng& rng) {
  OASIS_CHECK(fan_in + fan_out > 0);
  const real bound = std::sqrt(6.0 / static_cast<real>(fan_in + fan_out));
  return tensor::Tensor::rand(std::move(shape), rng, -bound, bound);
}

tensor::Tensor kaiming_normal(tensor::Shape shape, index_t fan_in,
                              common::Rng& rng) {
  OASIS_CHECK(fan_in > 0);
  const real stddev = std::sqrt(2.0 / static_cast<real>(fan_in));
  return tensor::Tensor::randn(std::move(shape), rng, 0.0, stddev);
}

}  // namespace oasis::nn::init
