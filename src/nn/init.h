// Weight initialization schemes.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace oasis::nn::init {

/// Kaiming (He) uniform: U[-√(6/fan_in), +√(6/fan_in)] — default for layers
/// followed by ReLU.
tensor::Tensor kaiming_uniform(tensor::Shape shape, index_t fan_in,
                               common::Rng& rng);

/// Xavier/Glorot uniform: U[-√(6/(fan_in+fan_out)), +...].
tensor::Tensor xavier_uniform(tensor::Shape shape, index_t fan_in,
                              index_t fan_out, common::Rng& rng);

/// Kaiming normal: N(0, 2/fan_in).
tensor::Tensor kaiming_normal(tensor::Shape shape, index_t fan_in,
                              common::Rng& rng);

}  // namespace oasis::nn::init
