#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace oasis::nn {

LossResult SoftmaxCrossEntropy::compute(
    const tensor::Tensor& logits, std::span<const index_t> labels) const {
  OASIS_CHECK_MSG(logits.rank() == 2,
                  "SoftmaxCrossEntropy: logits "
                      << tensor::to_string(logits.shape()));
  const index_t batch = logits.dim(0), k = logits.dim(1);
  OASIS_CHECK_MSG(labels.size() == batch,
                  "SoftmaxCrossEntropy: " << labels.size() << " labels for batch "
                                          << batch);
  const tensor::Tensor log_p = tensor::log_softmax_rows(logits);

  LossResult result;
  result.grad_logits = tensor::softmax_rows(logits);
  real loss = 0.0;
  for (index_t i = 0; i < batch; ++i) {
    OASIS_CHECK_MSG(labels[i] < k, "label " << labels[i] << " >= " << k);
    loss -= log_p.at2(i, labels[i]);
    result.grad_logits.at2(i, labels[i]) -= 1.0;
  }
  if (reduction_ == Reduction::kMean) {
    loss /= static_cast<real>(batch);
    result.grad_logits *= 1.0 / static_cast<real>(batch);
  }
  result.loss = loss;
  return result;
}

LossResult SigmoidBce::compute(const tensor::Tensor& logits,
                               std::span<const index_t> labels) const {
  OASIS_CHECK_MSG(logits.rank() == 2,
                  "SigmoidBce: logits " << tensor::to_string(logits.shape()));
  const index_t batch = logits.dim(0), k = logits.dim(1);
  OASIS_CHECK_MSG(labels.size() == batch,
                  "SigmoidBce: " << labels.size() << " labels for batch "
                                 << batch);
  LossResult result;
  result.grad_logits = tensor::Tensor({batch, k});
  real loss = 0.0;
  for (index_t i = 0; i < batch; ++i) {
    OASIS_CHECK_MSG(labels[i] < k, "label " << labels[i] << " >= " << k);
    for (index_t j = 0; j < k; ++j) {
      const real z = logits.at2(i, j);
      const real y = labels[i] == j ? 1.0 : 0.0;
      // Numerically stable: log(1+e^z) = max(z,0) + log1p(e^{-|z|}).
      loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
      const real sigma = 1.0 / (1.0 + std::exp(-z));
      result.grad_logits.at2(i, j) = sigma - y;
    }
  }
  if (reduction_ == Reduction::kMean) {
    const real scale = 1.0 / static_cast<real>(batch * k);
    loss *= scale;
    result.grad_logits *= scale;
  }
  result.loss = loss;
  return result;
}

LossResult MseLoss::compute(const tensor::Tensor& prediction,
                            const tensor::Tensor& target) const {
  tensor::check_same_shape(prediction.shape(), target.shape(), "MseLoss");
  LossResult result;
  result.grad_logits = prediction;
  result.grad_logits -= target;
  real loss = 0.0;
  for (const auto v : result.grad_logits.data()) loss += v * v;
  const real scale =
      reduction_ == Reduction::kMean
          ? 1.0 / static_cast<real>(prediction.size())
          : 1.0;
  result.loss = loss * scale;
  result.grad_logits *= 2.0 * scale;
  return result;
}

}  // namespace oasis::nn
