// Loss functions.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace oasis::nn {

/// Loss value plus the gradient w.r.t. the logits, ready to feed into
/// Module::backward of the network's last layer.
struct LossResult {
  real loss = 0.0;
  tensor::Tensor grad_logits;
};

/// How per-sample losses combine into the batch loss. `kMean` matches the
/// usual training convention; `kSum` matches the summed-gradient formulation
/// in the paper's attack analysis. The two differ only by the constant 1/B,
/// which cancels in the reconstruction ratio ΔW_i / Δb_i, so attacks succeed
/// identically under either.
enum class Reduction { kMean, kSum };

/// Softmax + cross-entropy fused (numerically stable log-sum-exp form).
class SoftmaxCrossEntropy {
 public:
  explicit SoftmaxCrossEntropy(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}

  /// logits: [B, k]; labels: B class indices in [0, k).
  [[nodiscard]] LossResult compute(const tensor::Tensor& logits,
                                   std::span<const index_t> labels) const;

 private:
  Reduction reduction_;
};

/// One-vs-all logistic-regression loss: independent sigmoid + binary
/// cross-entropy per class, one-hot targets. This is the loss of the
/// Appendix D linear-model experiment — unlike softmax CE it is not
/// shift-invariant, so a confident (large-negative-bias) linear model has
/// per-class gradients that isolate the single sample carrying that label.
class SigmoidBce {
 public:
  explicit SigmoidBce(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}

  /// logits: [B, k]; labels: B class indices (one-hot targets).
  [[nodiscard]] LossResult compute(const tensor::Tensor& logits,
                                   std::span<const index_t> labels) const;

 private:
  Reduction reduction_;
};

/// Mean squared error against a target tensor of identical shape.
class MseLoss {
 public:
  explicit MseLoss(Reduction reduction = Reduction::kMean)
      : reduction_(reduction) {}

  [[nodiscard]] LossResult compute(const tensor::Tensor& prediction,
                                   const tensor::Tensor& target) const;

 private:
  Reduction reduction_;
};

}  // namespace oasis::nn
