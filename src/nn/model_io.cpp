#include "nn/model_io.h"

namespace oasis::nn {

std::vector<tensor::Tensor> snapshot_state(Module& model) {
  std::vector<tensor::Tensor> state;
  for (const auto* p : model.parameters()) state.push_back(p->value);
  for (const auto* b : model.buffers()) state.push_back(*b);
  return state;
}

void load_state(Module& model, const std::vector<tensor::Tensor>& state) {
  auto params = model.parameters();
  auto buffers = model.buffers();
  OASIS_CHECK_MSG(state.size() == params.size() + buffers.size(),
                  "load_state: " << state.size() << " tensors for "
                                 << params.size() << " params + "
                                 << buffers.size() << " buffers");
  std::size_t i = 0;
  for (auto* p : params) {
    tensor::check_same_shape(p->value.shape(), state[i].shape(), "load_state");
    p->value = state[i++];
  }
  for (auto* b : buffers) {
    tensor::check_same_shape(b->shape(), state[i].shape(), "load_state");
    *b = state[i++];
  }
}

std::vector<tensor::Tensor> snapshot_gradients(Module& model) {
  std::vector<tensor::Tensor> grads;
  for (const auto* p : model.parameters()) grads.push_back(p->grad);
  return grads;
}

tensor::ByteBuffer serialize_state(Module& model) {
  return tensor::serialize_tensors(snapshot_state(model));
}

void deserialize_state(Module& model, const tensor::ByteBuffer& bytes) {
  load_state(model, tensor::deserialize_tensors(bytes));
}

}  // namespace oasis::nn
