// Snapshot/restore of model state (parameters + buffers) as tensor lists and
// byte buffers — the payloads the FL protocol ships.
#pragma once

#include "nn/module.h"
#include "tensor/serialize.h"

namespace oasis::nn {

/// Copies all parameter values followed by all buffers, in module order.
std::vector<tensor::Tensor> snapshot_state(Module& model);

/// Loads a snapshot produced by snapshot_state into a structurally identical
/// model. Throws Error on count/shape mismatch.
void load_state(Module& model, const std::vector<tensor::Tensor>& state);

/// Copies all parameter *gradients*, in module order (an FL client update).
std::vector<tensor::Tensor> snapshot_gradients(Module& model);

/// Serialized forms (wire format of the FL simulator).
tensor::ByteBuffer serialize_state(Module& model);
void deserialize_state(Module& model, const tensor::ByteBuffer& bytes);

}  // namespace oasis::nn
