#include "nn/models.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "nn/residual.h"

namespace oasis::nn {

std::unique_ptr<Sequential> make_mlp(const ImageSpec& spec,
                                     const std::vector<index_t>& hidden,
                                     index_t classes, common::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  index_t in = spec.pixels();
  for (const auto h : hidden) {
    net->emplace<Dense>(in, h, rng);
    net->emplace<ReLU>();
    in = h;
  }
  net->emplace<Dense>(in, classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_mini_convnet(const ImageSpec& spec,
                                              index_t classes,
                                              common::Rng& rng,
                                              index_t width) {
  OASIS_CHECK_MSG(spec.height % 4 == 0 && spec.width % 4 == 0,
                  "make_mini_convnet: image extent must be divisible by 4");
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(spec.channels, width, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);
  net->emplace<Conv2d>(width, width * 2, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);
  net->emplace<Flatten>();
  const index_t feat = width * 2 * (spec.height / 4) * (spec.width / 4);
  net->emplace<Dense>(feat, 128, rng);
  net->emplace<ReLU>();
  net->emplace<Dense>(128, classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_mini_resnet(const ImageSpec& spec,
                                             index_t classes,
                                             common::Rng& rng,
                                             index_t width) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(spec.channels, width, 3, 1, 1, rng);
  net->emplace<BatchNorm2d>(width);
  net->emplace<ReLU>();
  net->emplace<ResidualBlock>(width, width, 1, rng);
  net->emplace<ResidualBlock>(width, width * 2, 2, rng);
  net->emplace<ResidualBlock>(width * 2, width * 4, 2, rng);
  net->emplace<GlobalAvgPool>();
  net->emplace<Dense>(width * 4, classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_linear_model(const ImageSpec& spec,
                                              index_t classes,
                                              common::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(spec.pixels(), classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_attack_host(const ImageSpec& spec,
                                             index_t attack_neurons,
                                             index_t classes,
                                             common::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(spec.pixels(), attack_neurons, rng);  // malicious slot
  net->emplace<ReLU>();
  net->emplace<Dense>(attack_neurons, 64, rng);
  net->emplace<ReLU>();
  net->emplace<Dense>(64, classes, rng);
  return net;
}

}  // namespace oasis::nn
