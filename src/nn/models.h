// Model factories used across experiments.
#pragma once

#include <memory>

#include "nn/sequential.h"

namespace oasis::nn {

/// Geometry of the image inputs a model consumes.
struct ImageSpec {
  index_t channels = 3;
  index_t height = 32;
  index_t width = 32;

  [[nodiscard]] index_t pixels() const { return channels * height * width; }
};

/// Multi-layer perceptron: Flatten → [Dense → ReLU]* → Dense(classes).
std::unique_ptr<Sequential> make_mlp(const ImageSpec& spec,
                                     const std::vector<index_t>& hidden,
                                     index_t classes, common::Rng& rng);

/// Compact CNN: 2×(Conv → ReLU → MaxPool) → Dense head. The default
/// classifier for Table 1 quick runs.
std::unique_ptr<Sequential> make_mini_convnet(const ImageSpec& spec,
                                              index_t classes,
                                              common::Rng& rng,
                                              index_t width = 12);

/// MiniResNet — the ResNet-18 stand-in: stem conv+BN+ReLU, three residual
/// stages (widths w, 2w, 4w; strides 1, 2, 2), global average pooling, and a
/// linear classifier. ~10 conv layers; same topology family as ResNet-18
/// scaled to CPU budgets.
std::unique_ptr<Sequential> make_mini_resnet(const ImageSpec& spec,
                                             index_t classes,
                                             common::Rng& rng,
                                             index_t width = 8);

/// Single Dense(d → classes) layer — the linear model of Appendix D's
/// gradient-inversion experiment (Fig. 13).
std::unique_ptr<Sequential> make_linear_model(const ImageSpec& spec,
                                              index_t classes,
                                              common::Rng& rng);

/// The host network the active attacks implant into: Flatten →
/// Dense(d→n_attack) + ReLU (the malicious block, layers 1-2) → Dense → ReLU
/// → Dense(classes). The attacker overwrites the first Dense's parameters;
/// indices of the malicious layer within the Sequential are fixed:
/// kMaliciousDenseIndex / kMaliciousReluIndex.
std::unique_ptr<Sequential> make_attack_host(const ImageSpec& spec,
                                             index_t attack_neurons,
                                             index_t classes,
                                             common::Rng& rng);

/// Position of the malicious Dense layer inside make_attack_host's result.
inline constexpr index_t kMaliciousDenseIndex = 1;

}  // namespace oasis::nn
