// Module: the layer abstraction of the OASIS NN library.
//
// Contract (classic layer-wise backprop):
//   1. forward(x, training) computes the output and caches whatever the
//      layer needs for its backward pass (inputs, masks, ...).
//   2. backward(grad_out) must follow the matching forward(); it accumulates
//      parameter gradients (+=) and returns the gradient w.r.t. the input.
//   3. Parameter gradients accumulate until zero_grad().
//
// Modules are deliberately stateful-per-pass rather than graph-based: the
// paper's attacks need nothing more than exact batch-summed gradients of a
// feed-forward network, and the explicit cache keeps the gradient arithmetic
// auditable (important when asserting bit-level reconstruction equalities).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace oasis::nn {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Computes the layer output; caches activations needed by backward().
  /// `training` toggles train-time behaviour (e.g. batch-norm statistics).
  virtual tensor::Tensor forward(const tensor::Tensor& x, bool training) = 0;

  /// Backpropagates: accumulates parameter grads, returns input grad.
  /// Must be called after the matching forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the module.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Non-trainable state tensors that must travel with model snapshots
  /// (e.g. batch-norm running statistics). Empty for most layers.
  virtual std::vector<tensor::Tensor*> buffers() { return {}; }

  /// Human-readable layer name for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Zeroes every parameter gradient.
  void zero_grad() {
    for (auto* p : parameters()) p->zero_grad();
  }
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace oasis::nn
