#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace oasis::nn {

void Optimizer::load_state_tensors(const std::vector<tensor::Tensor>& state) {
  OASIS_CHECK_MSG(state.empty(), "stateless optimizer got "
                                     << state.size() << " state tensors");
}

namespace {

void check_slot_shapes(const std::vector<tensor::Tensor>& state,
                       std::size_t offset,
                       const std::vector<tensor::Tensor>& slots,
                       const char* what) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    OASIS_CHECK_MSG(state[offset + i].shape() == slots[i].shape(),
                    what << " slot " << i << " shape mismatch");
  }
}

}  // namespace

Sgd::Sgd(std::vector<Parameter*> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  if (opts_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (const auto* p : params_) {
      velocity_.emplace_back(p->value.shape());
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    if (opts_.momentum != 0.0) {
      auto vel = velocity_[i].data();
      for (index_t j = 0; j < value.size(); ++j) {
        const real g = grad[j] + opts_.weight_decay * value[j];
        vel[j] = opts_.momentum * vel[j] + g;
        value[j] -= opts_.lr * vel[j];
      }
    } else {
      for (index_t j = 0; j < value.size(); ++j) {
        const real g = grad[j] + opts_.weight_decay * value[j];
        value[j] -= opts_.lr * g;
      }
    }
  }
}

std::vector<tensor::Tensor> Sgd::state_tensors() const { return velocity_; }

void Sgd::load_state_tensors(const std::vector<tensor::Tensor>& state) {
  OASIS_CHECK_MSG(state.size() == velocity_.size(),
                  "SGD state has " << state.size() << " tensors, expected "
                                   << velocity_.size());
  check_slot_shapes(state, 0, velocity_, "velocity");
  velocity_ = state;
}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const real bias1 = 1.0 - std::pow(opts_.beta1, static_cast<real>(t_));
  const real bias2 = 1.0 - std::pow(opts_.beta2, static_cast<real>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (index_t j = 0; j < value.size(); ++j) {
      const real g = grad[j] + opts_.weight_decay * value[j];
      m[j] = opts_.beta1 * m[j] + (1.0 - opts_.beta1) * g;
      v[j] = opts_.beta2 * v[j] + (1.0 - opts_.beta2) * g * g;
      const real mhat = m[j] / bias1;
      const real vhat = v[j] / bias2;
      value[j] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

std::vector<tensor::Tensor> Adam::state_tensors() const {
  std::vector<tensor::Tensor> state;
  state.reserve(m_.size() + v_.size() + 1);
  state.insert(state.end(), m_.begin(), m_.end());
  state.insert(state.end(), v_.begin(), v_.end());
  state.emplace_back(tensor::Shape{1},
                     std::vector<real>{static_cast<real>(t_)});
  return state;
}

void Adam::load_state_tensors(const std::vector<tensor::Tensor>& state) {
  OASIS_CHECK_MSG(state.size() == m_.size() + v_.size() + 1,
                  "Adam state has " << state.size() << " tensors, expected "
                                    << m_.size() + v_.size() + 1);
  check_slot_shapes(state, 0, m_, "m");
  check_slot_shapes(state, m_.size(), v_, "v");
  const tensor::Tensor& step = state.back();
  OASIS_CHECK_MSG(step.size() == 1, "Adam step tensor must be scalar-sized");
  std::copy(state.begin(),
            state.begin() + static_cast<std::ptrdiff_t>(m_.size()), m_.begin());
  std::copy(state.begin() + static_cast<std::ptrdiff_t>(m_.size()),
            state.begin() + static_cast<std::ptrdiff_t>(m_.size() + v_.size()),
            v_.begin());
  t_ = static_cast<index_t>(step.data()[0]);
}

}  // namespace oasis::nn
