#include "nn/optimizer.h"

#include <cmath>

namespace oasis::nn {

Sgd::Sgd(std::vector<Parameter*> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  if (opts_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (const auto* p : params_) {
      velocity_.emplace_back(p->value.shape());
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    if (opts_.momentum != 0.0) {
      auto vel = velocity_[i].data();
      for (index_t j = 0; j < value.size(); ++j) {
        const real g = grad[j] + opts_.weight_decay * value[j];
        vel[j] = opts_.momentum * vel[j] + g;
        value[j] -= opts_.lr * vel[j];
      }
    } else {
      for (index_t j = 0; j < value.size(); ++j) {
        const real g = grad[j] + opts_.weight_decay * value[j];
        value[j] -= opts_.lr * g;
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const real bias1 = 1.0 - std::pow(opts_.beta1, static_cast<real>(t_));
  const real bias2 = 1.0 - std::pow(opts_.beta2, static_cast<real>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (index_t j = 0; j < value.size(); ++j) {
      const real g = grad[j] + opts_.weight_decay * value[j];
      m[j] = opts_.beta1 * m[j] + (1.0 - opts_.beta1) * g;
      v[j] = opts_.beta2 * v[j] + (1.0 - opts_.beta2) * g * g;
      const real mhat = m[j] / bias1;
      const real vhat = v[j] / bias2;
      value[j] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

}  // namespace oasis::nn
