// First-order optimizers over a set of Parameters.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace oasis::nn {

/// Base optimizer: owns no parameters, only references them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Current learning rate (schedulers adjust it between epochs).
  [[nodiscard]] virtual real lr() const = 0;
  virtual void set_lr(real lr) = 0;

  /// Clears all parameter gradients.
  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

  /// Serializable optimizer state (momentum/moment slots, step counters) as
  /// a tensor list in a fixed per-optimizer order. Round-tripping through
  /// load_state_tensors resumes the optimizer bit-exactly — the trainer's
  /// checkpoint path relies on this. Default: stateless ({}).
  [[nodiscard]] virtual std::vector<tensor::Tensor> state_tensors() const {
    return {};
  }

  /// Inverse of state_tensors. Throws Error on count/shape mismatch (a
  /// snapshot from a differently configured optimizer).
  virtual void load_state_tensors(const std::vector<tensor::Tensor>& state);

 protected:
  std::vector<Parameter*> params_;
};

/// SGD with optional momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    real lr = 0.01;
    real momentum = 0.0;
    real weight_decay = 0.0;
  };

  Sgd(std::vector<Parameter*> params, Options opts);
  void step() override;
  [[nodiscard]] real lr() const override { return opts_.lr; }
  void set_lr(real lr) override { opts_.lr = lr; }

  /// Velocity slots, parameter order (empty when momentum == 0).
  [[nodiscard]] std::vector<tensor::Tensor> state_tensors() const override;
  void load_state_tensors(const std::vector<tensor::Tensor>& state) override;

 private:
  Options opts_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with L2 weight decay, as the paper's Table 1 setup
/// (Adam, lr 1e-3, weight decay 1e-5 / 1e-3).
class Adam : public Optimizer {
 public:
  struct Options {
    real lr = 1e-3;
    real beta1 = 0.9;
    real beta2 = 0.999;
    real eps = 1e-8;
    real weight_decay = 0.0;
  };

  Adam(std::vector<Parameter*> params, Options opts);
  void step() override;
  [[nodiscard]] real lr() const override { return opts_.lr; }
  void set_lr(real lr) override { opts_.lr = lr; }

  /// m slots, then v slots (parameter order), then the step count t as a
  /// one-element tensor.
  [[nodiscard]] std::vector<tensor::Tensor> state_tensors() const override;
  void load_state_tensors(const std::vector<tensor::Tensor>& state) override;

 private:
  Options opts_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  index_t t_ = 0;
};

}  // namespace oasis::nn
