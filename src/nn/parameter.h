// Trainable parameter: value + accumulated gradient.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace oasis::nn {

/// A named trainable tensor with its gradient accumulator.
///
/// Gradients ACCUMULATE across backward() calls until zero_grad(); this
/// mirrors the batch-summed semantics the reconstruction attacks rely on
/// (the FL client uploads exactly these accumulated tensors).
struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Parameter() = default;
  Parameter(std::string n, tensor::Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0); }
};

}  // namespace oasis::nn
