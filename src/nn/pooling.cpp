#include "nn/pooling.h"

#include <limits>

#include "tensor/ops.h"

namespace oasis::nn {

MaxPool2d::MaxPool2d(index_t kernel, index_t stride)
    : k_(kernel), stride_(stride) {
  OASIS_CHECK(kernel >= 1 && stride >= 1);
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4,
                  "MaxPool2d: bad input " << tensor::to_string(x.shape()));
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t oh = tensor::conv_out_extent(h, k_, stride_, 0);
  const index_t ow = tensor::conv_out_extent(w, k_, stride_, 0);
  tensor::Tensor y({b, c, oh, ow});
  argmax_.assign(b * c * oh * ow, 0);
  for (index_t n = 0; n < b; ++n) {
    for (index_t ch = 0; ch < c; ++ch) {
      for (index_t oi = 0; oi < oh; ++oi) {
        for (index_t oj = 0; oj < ow; ++oj) {
          real best = -std::numeric_limits<real>::infinity();
          index_t best_idx = 0;
          for (index_t ki = 0; ki < k_; ++ki) {
            for (index_t kj = 0; kj < k_; ++kj) {
              const index_t si = oi * stride_ + ki;
              const index_t sj = oj * stride_ + kj;
              const index_t flat = ((n * c + ch) * h + si) * w + sj;
              const real v = x.data()[flat];
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          const index_t out_flat = ((n * c + ch) * oh + oi) * ow + oj;
          y.data()[out_flat] = best;
          argmax_[out_flat] = best_idx;
        }
      }
    }
  }
  return y;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
  OASIS_CHECK_MSG(grad_out.size() == argmax_.size(),
                  "MaxPool2d backward: grad size mismatch");
  tensor::Tensor grad_in(in_shape_);
  for (index_t i = 0; i < argmax_.size(); ++i) {
    grad_in.data()[argmax_[i]] += grad_out.data()[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(index_t kernel, index_t stride)
    : k_(kernel), stride_(stride) {
  OASIS_CHECK(kernel >= 1 && stride >= 1);
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4,
                  "AvgPool2d: bad input " << tensor::to_string(x.shape()));
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t oh = tensor::conv_out_extent(h, k_, stride_, 0);
  const index_t ow = tensor::conv_out_extent(w, k_, stride_, 0);
  const real inv = 1.0 / static_cast<real>(k_ * k_);
  tensor::Tensor y({b, c, oh, ow});
  for (index_t n = 0; n < b; ++n)
    for (index_t ch = 0; ch < c; ++ch)
      for (index_t oi = 0; oi < oh; ++oi)
        for (index_t oj = 0; oj < ow; ++oj) {
          real s = 0.0;
          for (index_t ki = 0; ki < k_; ++ki)
            for (index_t kj = 0; kj < k_; ++kj)
              s += x.at4(n, ch, oi * stride_ + ki, oj * stride_ + kj);
          y.at4(n, ch, oi, oj) = s * inv;
        }
  return y;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_out) {
  const index_t b = in_shape_[0], c = in_shape_[1];
  const index_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const real inv = 1.0 / static_cast<real>(k_ * k_);
  tensor::Tensor grad_in(in_shape_);
  for (index_t n = 0; n < b; ++n)
    for (index_t ch = 0; ch < c; ++ch)
      for (index_t oi = 0; oi < oh; ++oi)
        for (index_t oj = 0; oj < ow; ++oj) {
          const real g = grad_out.at4(n, ch, oi, oj) * inv;
          for (index_t ki = 0; ki < k_; ++ki)
            for (index_t kj = 0; kj < k_; ++kj)
              grad_in.at4(n, ch, oi * stride_ + ki, oj * stride_ + kj) += g;
        }
  return grad_in;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& x,
                                      bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() == 4,
                  "GlobalAvgPool: bad input " << tensor::to_string(x.shape()));
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  const real inv = 1.0 / static_cast<real>(hw);
  tensor::Tensor y({b, c});
  for (index_t n = 0; n < b; ++n)
    for (index_t ch = 0; ch < c; ++ch) {
      real s = 0.0;
      for (index_t p = 0; p < hw; ++p) s += x.data()[(n * c + ch) * hw + p];
      y.at2(n, ch) = s * inv;
    }
  return y;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_out) {
  const index_t b = in_shape_[0], c = in_shape_[1];
  const index_t hw = in_shape_[2] * in_shape_[3];
  const real inv = 1.0 / static_cast<real>(hw);
  tensor::Tensor grad_in(in_shape_);
  for (index_t n = 0; n < b; ++n)
    for (index_t ch = 0; ch < c; ++ch) {
      const real g = grad_out.at2(n, ch) * inv;
      for (index_t p = 0; p < hw; ++p)
        grad_in.data()[(n * c + ch) * hw + p] = g;
    }
  return grad_in;
}

tensor::Tensor Flatten::forward(const tensor::Tensor& x, bool /*training*/) {
  OASIS_CHECK_MSG(x.rank() >= 2,
                  "Flatten: bad input " << tensor::to_string(x.shape()));
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace oasis::nn
