// Spatial pooling layers and Flatten.
#pragma once

#include <vector>

#include "nn/module.h"

namespace oasis::nn {

/// Max pooling over [B, C, H, W]; caches argmax positions for backward.
class MaxPool2d : public Module {
 public:
  MaxPool2d(index_t kernel, index_t stride);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  index_t k_, stride_;
  tensor::Shape in_shape_;
  std::vector<index_t> argmax_;  // flat input index per output element
};

/// Average pooling over [B, C, H, W].
class AvgPool2d : public Module {
 public:
  AvgPool2d(index_t kernel, index_t stride);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

 private:
  index_t k_, stride_;
  tensor::Shape in_shape_;
};

/// Global average pooling: [B, C, H, W] → [B, C].
class GlobalAvgPool : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape in_shape_;
};

/// Flattens [B, ...] → [B, prod(...)].
class Flatten : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape in_shape_;
};

}  // namespace oasis::nn
