#include "nn/residual.h"

#include "tensor/ops.h"

namespace oasis::nn {

ResidualBlock::ResidualBlock(index_t in_channels, index_t out_channels,
                             index_t stride, common::Rng& rng)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                      rng)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels)),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                      rng)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels)) {
  if (stride != 1 || in_channels != out_channels) {
    projection_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
  }
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& x, bool training) {
  tensor::Tensor h = bn1_->forward(conv1_->forward(x, training), training);
  cached_mid_pre_ = h;
  h = tensor::relu(h);
  h = bn2_->forward(conv2_->forward(h, training), training);
  tensor::Tensor shortcut =
      projection_ ? projection_->forward(x, training) : x;
  h += shortcut;
  cached_sum_pre_ = h;
  return tensor::relu(h);
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_out) {
  // Through the final ReLU.
  tensor::Tensor g = tensor::relu_backward(grad_out, cached_sum_pre_);
  // Shortcut branch.
  tensor::Tensor g_shortcut = projection_ ? projection_->backward(g) : g;
  // Main branch.
  tensor::Tensor g_main = conv2_->backward(bn2_->backward(g));
  g_main = tensor::relu_backward(g_main, cached_mid_pre_);
  g_main = conv1_->backward(bn1_->backward(g_main));
  g_main += g_shortcut;
  return g_main;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params;
  for (auto* m : std::initializer_list<Module*>{conv1_.get(), bn1_.get(),
                                                conv2_.get(), bn2_.get()}) {
    for (auto* p : m->parameters()) params.push_back(p);
  }
  if (projection_) {
    for (auto* p : projection_->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<tensor::Tensor*> ResidualBlock::buffers() {
  std::vector<tensor::Tensor*> bufs;
  for (auto* b : bn1_->buffers()) bufs.push_back(b);
  for (auto* b : bn2_->buffers()) bufs.push_back(b);
  return bufs;
}

}  // namespace oasis::nn
