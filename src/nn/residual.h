// Residual block (the building unit of MiniResNet, our ResNet-18 stand-in).
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace oasis::nn {

/// y = ReLU( BN(conv2(ReLU(BN(conv1(x))))) + shortcut(x) )
///
/// The shortcut is identity when shapes match, otherwise a stride-matched
/// 1×1 convolution (the classic ResNet "option B" projection).
class ResidualBlock : public Module {
 public:
  ResidualBlock(index_t in_channels, index_t out_channels, index_t stride,
                common::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<tensor::Tensor*> buffers() override;
  [[nodiscard]] std::string name() const override { return "ResidualBlock"; }

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> projection_;  // nullptr for identity shortcut
  // Caches for backward.
  tensor::Tensor cached_mid_pre_;   // pre-activation after bn1
  tensor::Tensor cached_sum_pre_;   // pre-activation of the final ReLU
};

}  // namespace oasis::nn
