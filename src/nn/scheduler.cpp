#include "nn/scheduler.h"

#include <cmath>

namespace oasis::nn {

StepDecayLr::StepDecayLr(real initial, index_t step_size, real gamma)
    : initial_(initial), step_size_(step_size), gamma_(gamma) {
  OASIS_CHECK(initial > 0.0 && step_size >= 1 && gamma > 0.0 && gamma <= 1.0);
}

real StepDecayLr::lr(index_t epoch) const {
  return initial_ * std::pow(gamma_, static_cast<real>(epoch / step_size_));
}

CosineAnnealingLr::CosineAnnealingLr(real initial, index_t total_epochs,
                                     real floor)
    : initial_(initial), total_epochs_(total_epochs), floor_(floor) {
  OASIS_CHECK(initial > 0.0 && total_epochs >= 1 && floor >= 0.0 &&
              floor <= initial);
}

real CosineAnnealingLr::lr(index_t epoch) const {
  constexpr real kPi = 3.14159265358979323846;
  const real t = std::min<real>(1.0, static_cast<real>(epoch) /
                                         static_cast<real>(total_epochs_));
  return floor_ + 0.5 * (initial_ - floor_) * (1.0 + std::cos(kPi * t));
}

}  // namespace oasis::nn
