// Learning-rate schedules.
#pragma once

#include <memory>

#include "common/error.h"
#include "common/types.h"

namespace oasis::nn {

/// Maps an epoch index to a learning rate.
class LrSchedule {
 public:
  LrSchedule() = default;
  LrSchedule(const LrSchedule&) = delete;
  LrSchedule& operator=(const LrSchedule&) = delete;
  virtual ~LrSchedule() = default;

  [[nodiscard]] virtual real lr(index_t epoch) const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(real lr) : lr_(lr) { OASIS_CHECK(lr > 0.0); }
  [[nodiscard]] real lr(index_t /*epoch*/) const override { return lr_; }

 private:
  real lr_;
};

/// Multiplies the rate by `gamma` every `step_size` epochs.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(real initial, index_t step_size, real gamma);
  [[nodiscard]] real lr(index_t epoch) const override;

 private:
  real initial_;
  index_t step_size_;
  real gamma_;
};

/// Cosine annealing from `initial` to `floor` over `total_epochs`.
class CosineAnnealingLr : public LrSchedule {
 public:
  CosineAnnealingLr(real initial, index_t total_epochs, real floor = 0.0);
  [[nodiscard]] real lr(index_t epoch) const override;

 private:
  real initial_;
  index_t total_epochs_;
  real floor_;
};

using LrSchedulePtr = std::shared_ptr<const LrSchedule>;

}  // namespace oasis::nn
