#include "nn/sequential.h"

namespace oasis::nn {

void Sequential::append(ModulePtr m) {
  OASIS_CHECK(m != nullptr);
  modules_.push_back(std::move(m));
}

void Sequential::insert(index_t index, ModulePtr m) {
  OASIS_CHECK(m != nullptr);
  OASIS_CHECK_MSG(index <= modules_.size(),
                  "insert at " << index << " of " << modules_.size());
  modules_.insert(modules_.begin() + static_cast<std::ptrdiff_t>(index),
                  std::move(m));
}

Module& Sequential::at(index_t index) {
  OASIS_CHECK_MSG(index < modules_.size(),
                  "module " << index << " of " << modules_.size());
  return *modules_[index];
}

const Module& Sequential::at(index_t index) const {
  OASIS_CHECK_MSG(index < modules_.size(),
                  "module " << index << " of " << modules_.size());
  return *modules_[index];
}

tensor::Tensor Sequential::forward(const tensor::Tensor& x, bool training) {
  tensor::Tensor h = x;
  for (auto& m : modules_) h = m->forward(h, training);
  return h;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor g = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& m : modules_) {
    for (auto* p : m->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<tensor::Tensor*> Sequential::buffers() {
  std::vector<tensor::Tensor*> bufs;
  for (auto& m : modules_) {
    for (auto* b : m->buffers()) bufs.push_back(b);
  }
  return bufs;
}

}  // namespace oasis::nn
