// Sequential container of modules.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace oasis::nn {

/// Runs child modules in order; backward in reverse order.
///
/// Exposes structural surgery (`insert`) because the dishonest server in the
/// threat model splices a malicious FC+ReLU block in front of the model it
/// dispatches to clients.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns a reference to the added module (typed).
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    modules_.push_back(std::move(m));
    return ref;
  }

  /// Appends an already-constructed module.
  void append(ModulePtr m);

  /// Inserts a module before position `index` (0 = front).
  void insert(index_t index, ModulePtr m);

  [[nodiscard]] index_t size() const { return modules_.size(); }
  Module& at(index_t index);
  [[nodiscard]] const Module& at(index_t index) const;

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<tensor::Tensor*> buffers() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace oasis::nn
