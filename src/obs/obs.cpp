#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.h"

namespace oasis::obs {

namespace detail {

std::atomic<int> g_kernel_metrics{-1};

index_t shard_index() {
  static std::atomic<index_t> next{0};
  thread_local index_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

int resolve_kernel_metrics() {
  int v = 0;
  if (const char* env = std::getenv("OASIS_OBS_KERNELS")) {
    v = (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0)
            ? 1
            : 0;
  }
  int expected = -1;
  g_kernel_metrics.compare_exchange_strong(expected, v,
                                           std::memory_order_relaxed);
  return g_kernel_metrics.load(std::memory_order_relaxed);
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

thread_local ScopedTimer* t_open_span = nullptr;

}  // namespace
}  // namespace detail

void set_kernel_metrics(bool on) {
  detail::g_kernel_metrics.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  OASIS_CHECK_MSG(std::is_sorted(boundaries_.begin(), boundaries_.end()),
                  "histogram boundaries must be ascending");
  for (auto& shard : shards_) {
    shard.buckets =
        std::vector<std::atomic<std::uint64_t>>(boundaries_.size() + 1);
  }
}

index_t Histogram::bucket_of(double v) const noexcept {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  return static_cast<index_t>(it - boundaries_.begin());
}

void Histogram::record(double v) noexcept {
  Shard& shard = shards_[detail::shard_index()];
  shard.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(shard.sum, v);
  if (!shard.touched.load(std::memory_order_relaxed)) {
    // First sample of this shard seeds min/max; exchange keeps one winner.
    bool expected = false;
    if (shard.touched.compare_exchange_strong(expected, true,
                                              std::memory_order_relaxed)) {
      shard.min.store(v, std::memory_order_relaxed);
      shard.max.store(v, std::memory_order_relaxed);
      return;
    }
  }
  detail::atomic_min_double(shard.min, v);
  detail::atomic_max_double(shard.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.boundaries = boundaries_;
  snap.buckets.assign(boundaries_.size() + 1, 0);
  bool any = false;
  for (const auto& shard : shards_) {
    const std::uint64_t c = shard.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    snap.count += c;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const double mn = shard.min.load(std::memory_order_relaxed);
    const double mx = shard.max.load(std::memory_order_relaxed);
    if (!any || mn < snap.min) snap.min = mn;
    if (!any || mx > snap.max) snap.max = mx;
    any = true;
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::restore(const HistogramSnapshot& snap) {
  if (snap.boundaries != boundaries_) {
    throw ConfigError("Histogram::restore: boundary mismatch");
  }
  if (snap.buckets.size() != boundaries_.size() + 1) {
    throw ConfigError("Histogram::restore: bucket count mismatch");
  }
  reset();
  Shard& shard = shards_[0];
  shard.count.store(snap.count, std::memory_order_relaxed);
  shard.sum.store(snap.sum, std::memory_order_relaxed);
  shard.min.store(snap.min, std::memory_order_relaxed);
  shard.max.store(snap.max, std::memory_order_relaxed);
  shard.touched.store(snap.count != 0, std::memory_order_relaxed);
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    shard.buckets[b].store(snap.buckets[b], std::memory_order_relaxed);
  }
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
    shard.touched.store(false, std::memory_order_relaxed);
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> exponential_boundaries(index_t count) {
  std::vector<double> b;
  b.reserve(count);
  double v = 1.0;
  for (index_t i = 0; i < count; ++i, v *= 2.0) b.push_back(v);
  return b;
}

// ---- Registry ---------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps iteration (and therefore every dump) name-sorted. Values
  // are heap-allocated and never freed before the registry itself dies, so
  // references handed out stay valid across reset().
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, SpanStats> spans;

  void check_unique(const std::string& name, const char* kind) const {
    const bool taken = (counters.count(name) != 0) + (gauges.count(name) != 0) +
                       (histograms.count(name) != 0);
    if (taken) {
      throw ConfigError("obs: instrument '" + name +
                        "' already registered with a different kind (wanted " +
                        kind + ")");
    }
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked on purpose: instruments may be touched from static destructors.
  static Registry* g = new Registry;
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    impl_->check_unique(name, "counter");
    it = impl_->counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    impl_->check_unique(name, "gauge");
    it = impl_->gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> boundaries) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    impl_->check_unique(name, "histogram");
    if (boundaries.empty()) boundaries = exponential_boundaries();
    it = impl_->histograms
             .emplace(name, std::make_unique<Histogram>(std::move(boundaries)))
             .first;
  }
  return *it->second;
}

void Registry::record_span(const std::string& path, std::uint64_t inclusive_ns,
                           std::uint64_t exclusive_ns) {
  std::lock_guard lock(impl_->mutex);
  SpanStats& s = impl_->spans[path];
  s.count += 1;
  s.inclusive_ns += inclusive_ns;
  s.exclusive_ns += exclusive_ns;
}

void Registry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
  impl_->spans.clear();
}

void Registry::restore_counter(const std::string& name, std::uint64_t value) {
  Counter& c = counter(name);
  c.reset();
  c.add(value);
}

void Registry::restore_gauge(const std::string& name, double value) {
  gauge(name).set(value);
}

void Registry::restore_histogram(const std::string& name,
                                 const HistogramSnapshot& snap) {
  histogram(name, snap.boundaries).restore(snap);
}

void Registry::restore_span(const std::string& path, std::uint64_t count) {
  std::lock_guard lock(impl_->mutex);
  SpanStats& s = impl_->spans[path];
  s.count = count;
  s.inclusive_ns = 0;
  s.exclusive_ns = 0;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, SpanStats>> Registry::spans() const {
  std::lock_guard lock(impl_->mutex);
  return {impl_->spans.begin(), impl_->spans.end()};
}

Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
Histogram& histogram(const std::string& name, std::vector<double> boundaries) {
  return Registry::global().histogram(name, std::move(boundaries));
}

// ---- ScopedTimer ------------------------------------------------------------

ScopedTimer::ScopedTimer(std::string_view name, Nesting nesting) {
  ScopedTimer* parent = detail::t_open_span;
  if (nesting == kInherit && parent != nullptr) {
    path_.reserve(parent->path_.size() + 1 + name.size());
    path_.append(parent->path_).append("/").append(name);
    parent_ = parent;
    attach_to_parent_ = true;
  } else {
    path_.assign(name);
    parent_ = parent;  // restored on close, but no time attribution
    attach_to_parent_ = false;
  }
  detail::t_open_span = this;
  start_ns_ = detail::now_ns();
}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t inclusive = detail::now_ns() - start_ns_;
  const std::uint64_t exclusive =
      inclusive >= child_ns_ ? inclusive - child_ns_ : 0;
  detail::t_open_span = parent_;
  if (attach_to_parent_ && parent_ != nullptr) {
    parent_->child_ns_ += inclusive;
  }
  Registry::global().record_span(path_, inclusive, exclusive);
}

// ---- Sinks ------------------------------------------------------------------

namespace {

// %.17g round-trips doubles and prints integers without an exponent for the
// common counter-sized magnitudes — a stable, locale-independent encoding.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string to_json(const Registry& registry, const DumpOptions& options) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"oasis.obs/v1\",\n";

  os << "  \"counters\": {";
  const auto counters = registry.counters();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << escape(counters[i].first)
       << "\": " << counters[i].second;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  const auto gauges = registry.gauges();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << escape(gauges[i].first)
       << "\": " << fmt_double(gauges[i].second);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  const auto histograms = registry.histograms();
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& [name, h] = histograms[i];
    os << (i ? "," : "") << "\n    \"" << escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << fmt_double(h.sum)
       << ", \"min\": " << fmt_double(h.min)
       << ", \"max\": " << fmt_double(h.max) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "{\"le\": "
         << (b < h.boundaries.size() ? fmt_double(h.boundaries[b])
                                     : std::string("\"inf\""))
         << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "},\n";

  os << "  \"spans\": {";
  const auto spans = registry.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& [path, s] = spans[i];
    os << (i ? "," : "") << "\n    \"" << escape(path)
       << "\": {\"count\": " << s.count;
    if (options.include_timings) {
      os << ", \"inclusive_ns\": " << s.inclusive_ns
         << ", \"exclusive_ns\": " << s.exclusive_ns;
    }
    os << "}";
  }
  os << (spans.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void dump(const std::string& path, const DumpOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("obs::dump: cannot open " + path);
  out << to_json(Registry::global(), options);
}

std::string summary() {
  const Registry& reg = Registry::global();
  std::ostringstream os;
  const auto counters = reg.counters();
  const auto gauges = reg.gauges();
  const auto histograms = reg.histograms();
  const auto spans = reg.spans();
  if (!counters.empty()) {
    os << "counters\n";
    for (const auto& [name, v] : counters) {
      os << "  " << name << " = " << v << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges\n";
    for (const auto& [name, v] : gauges) {
      os << "  " << name << " = " << fmt_double(v) << "\n";
    }
  }
  if (!histograms.empty()) {
    os << "histograms\n";
    for (const auto& [name, h] : histograms) {
      os << "  " << name << ": count=" << h.count
         << " sum=" << fmt_double(h.sum) << " min=" << fmt_double(h.min)
         << " max=" << fmt_double(h.max) << "\n";
    }
  }
  if (!spans.empty()) {
    os << "spans (count, inclusive ms, exclusive ms)\n";
    for (const auto& [path, s] : spans) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-40s %8llu %10.3f %10.3f\n",
                    path.c_str(), static_cast<unsigned long long>(s.count),
                    static_cast<double>(s.inclusive_ns) * 1e-6,
                    static_cast<double>(s.exclusive_ns) * 1e-6);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace oasis::obs
