// oasis::obs — metrics and tracing for the FL round loop and kernels.
//
// Three instrument kinds live in a process-global Registry:
//   Counter   — monotone uint64, lock-free per-thread shards. Integer
//               addition is order-independent, so combined values are
//               bit-identical at any thread count (the runtime's
//               determinism contract extends to metrics).
//   Gauge     — last-written double (loss, accuracy, config echoes).
//   Histogram — bucketed distribution with count/sum/min/max, sharded
//               like Counter. Bucket counts are deterministic; `sum` is
//               deterministic whenever the recorded values are exactly
//               representable (integers < 2^53) because double addition
//               is commutative and those sums are exact.
//
// ScopedTimer spans nest through a thread-local stack (round → client →
// train-step → kernel) and aggregate per dotted path: count, inclusive
// nanoseconds, and exclusive nanoseconds (inclusive minus same-thread
// children). Spans opened inside runtime::parallel_for bodies must use
// kRoot so their path does not depend on whether the chunk ran inline
// (threads=1) or on a worker — keeping the span *structure* identical at
// any thread count even though timings differ.
//
// obs::dump(path) writes a stable, schema-versioned JSON document
// ("oasis.obs/v1", keys sorted); obs::summary() renders a human table.
// Kernel-level instrumentation (GEMM/conv flop counters) is compiled in
// but gated behind OASIS_OBS_KERNELS / set_kernel_metrics() so the hot
// path pays one relaxed atomic load when disabled.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace oasis::obs {

/// Number of cache-line-padded slots a sharded instrument spreads its
/// updates over. Threads hash to a slot on first use; collisions only cost
/// contention, never correctness.
inline constexpr index_t kShards = 64;

namespace detail {
/// Slot index of the calling thread (assigned round-robin on first use).
index_t shard_index();

extern std::atomic<int> g_kernel_metrics;  // -1 unresolved, else 0/1
int resolve_kernel_metrics();
}  // namespace detail

/// True when kernel counters (GEMM/conv flops) should be recorded.
/// Resolution order: set_kernel_metrics() > OASIS_OBS_KERNELS env (1/on/true)
/// > off. The check is one relaxed atomic load — cheap enough for per-call
/// (not per-element) use in kernels.
inline bool kernel_metrics_enabled() {
  const int v = detail::g_kernel_metrics.load(std::memory_order_relaxed);
  return (v < 0 ? detail::resolve_kernel_metrics() : v) != 0;
}

/// Overrides the OASIS_OBS_KERNELS environment resolution.
void set_kernel_metrics(bool on);

/// Monotone counter. add() touches only the calling thread's shard.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Combined value over all shards (exact — integer addition commutes).
  [[nodiscard]] std::uint64_t value() const noexcept;

  void reset() noexcept;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins scalar. Intended for values produced at deterministic
/// points of serial code (per-round loss, final accuracy).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<double> v_{0.0};
};

/// Snapshot of a histogram's combined state.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<double> boundaries;       // ascending upper bounds
  std::vector<std::uint64_t> buckets;   // boundaries.size() + 1 (last = +inf)
};

/// Bucketed distribution. `boundaries` are ascending inclusive upper bounds;
/// value v lands in the first bucket with v <= boundary, else the overflow
/// bucket. All mutation is per-shard relaxed atomics (CAS loops for the
/// double-valued sum/min/max).
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void record(double v) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }
  /// Index of the bucket `v` falls into (exposed for the bucket-math tests).
  [[nodiscard]] index_t bucket_of(double v) const noexcept;

  void reset() noexcept;

  /// Overwrites the combined state with a captured snapshot (all of it lands
  /// in shard 0 — shard attribution is an implementation detail that no
  /// observable value depends on). `snap.boundaries` must match this
  /// histogram's; throws ConfigError otherwise. Checkpoint restore only.
  void restore(const HistogramSnapshot& snap);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<bool> touched{false};
    std::vector<std::atomic<std::uint64_t>> buckets;
  };
  std::vector<double> boundaries_;
  std::array<Shard, kShards> shards_;
};

/// Aggregated statistics of one span path.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
};

/// Default exponential bucket boundaries 1, 2, 4, ..., 2^29 (~0.5s in ns at
/// microsecond granularity, ~500M as a raw magnitude ladder).
std::vector<double> exponential_boundaries(index_t count = 30);

class Registry;

/// RAII span. Nests under the innermost open span on the same thread
/// (kInherit) or starts a fresh root path (kRoot — required inside parallel
/// regions, see file comment).
class ScopedTimer {
 public:
  enum Nesting { kInherit, kRoot };

  explicit ScopedTimer(std::string_view name, Nesting nesting = kInherit);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string path_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;   // accumulated by directly nested children
  ScopedTimer* parent_ = nullptr;
  bool attach_to_parent_ = false;
};

/// Span is the tracing vocabulary name; the implementation is the timer.
using Span = ScopedTimer;

/// Named-instrument registry. Instruments are created once and never
/// destroyed (references stay valid for the process lifetime; reset() zeroes
/// values without invalidating anything). Requesting an existing name as a
/// different kind throws ConfigError.
class Registry {
 public:
  /// The process-global registry every free-function helper uses.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `boundaries` applies on first creation only (defaults to
  /// exponential_boundaries()); later lookups ignore it.
  Histogram& histogram(const std::string& name,
                       std::vector<double> boundaries = {});

  /// Adds one finished span occurrence (called by ~ScopedTimer).
  void record_span(const std::string& path, std::uint64_t inclusive_ns,
                   std::uint64_t exclusive_ns);

  /// Zeroes every instrument and forgets span stats. Registered instruments
  /// survive (cached references stay valid).
  void reset();

  /// Checkpoint-restore hooks: each (re)creates the named instrument and
  /// overwrites its combined value with a previously captured one. Restored
  /// span stats carry counts only (nanosecond fields are wall-clock noise
  /// and excluded from the resume bit-identity contract).
  void restore_counter(const std::string& name, std::uint64_t value);
  void restore_gauge(const std::string& name, double value);
  void restore_histogram(const std::string& name,
                         const HistogramSnapshot& snap);
  void restore_span(const std::string& path, std::uint64_t count);

  /// Sorted snapshots for sinks/tests.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histograms() const;
  [[nodiscard]] std::vector<std::pair<std::string, SpanStats>> spans() const;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// Convenience lookups on the global registry. Hot paths should cache:
///   static obs::Counter& c = obs::counter("kernel.gemm.calls");
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::vector<double> boundaries = {});

/// Controls what dump()/to_json() emit. Excluding timings yields a document
/// that is byte-identical at any thread count for a deterministic workload
/// (span/histogram *counts* are kept; nanosecond fields are dropped).
struct DumpOptions {
  bool include_timings = true;
};

/// The stable JSON document ("oasis.obs/v1"): keys sorted, doubles printed
/// round-trippably. See DESIGN.md §Observability for the schema.
std::string to_json(const Registry& registry, const DumpOptions& options = {});

/// Writes to_json(global()) to `path` (creating parent dirs is the caller's
/// job; the path's directory must exist).
void dump(const std::string& path, const DumpOptions& options = {});

/// Human-readable table of the global registry's contents.
std::string summary();

}  // namespace oasis::obs
