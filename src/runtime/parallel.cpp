#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "common/cli.h"
#include "common/error.h"
#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace oasis::runtime {
namespace {

std::mutex g_config_mutex;
index_t g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

index_t resolve_default() {
  if (const char* env = std::getenv("OASIS_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<index_t>(v);
    OASIS_LOG_WARN << "ignoring invalid OASIS_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<index_t>(hw) : 1;
}

// Callers must hold g_config_mutex.
index_t threads_locked() {
  if (g_threads == 0) g_threads = resolve_default();
  return g_threads;
}

}  // namespace

index_t num_threads() {
  std::lock_guard lock(g_config_mutex);
  return threads_locked();
}

void set_num_threads(index_t n) {
  std::unique_ptr<ThreadPool> doomed;
  {
    std::lock_guard lock(g_config_mutex);
    doomed = std::move(g_pool);  // joined outside the lock
    g_threads = n == 0 ? resolve_default() : n;
  }
}

ThreadPool* global_pool() {
  std::lock_guard lock(g_config_mutex);
  const index_t n = threads_locked();
  if (n <= 1) return nullptr;
  // The caller of a parallel region always participates, so the pool holds
  // n-1 workers for a total concurrency of n.
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(n - 1);
  return g_pool.get();
}

void add_cli_flag(common::CliParser& cli) {
  cli.add_flag("threads", "worker threads (0 = OASIS_THREADS env or all cores)",
               "0");
}

void apply_cli_flag(const common::CliParser& cli) {
  const auto n = cli.get_int("threads");
  OASIS_CHECK_MSG(n >= 0, "--threads must be >= 0, got " << n);
  set_num_threads(static_cast<index_t>(n));
}

namespace {

struct ForState {
  index_t begin = 0, end = 0, grain = 1, nchunks = 0;
  std::function<void(index_t, index_t)> body;
  std::atomic<index_t> next{0};
  std::atomic<index_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mutex
  bool finished = false;     // guarded by mutex
};

// Claims chunks off the shared counter until none remain. Run by the caller
// and by up to num_workers helper tasks; which thread claims which chunk is
// scheduling noise, the chunk bounds themselves are fixed.
void run_chunks(const std::shared_ptr<ForState>& state) {
  while (true) {
    const index_t c = state->next.fetch_add(1);
    if (c >= state->nchunks) return;
    const index_t lo = state->begin + c * state->grain;
    const index_t hi =
        lo + state->grain < state->end ? lo + state->grain : state->end;
    try {
      state->body(lo, hi);
    } catch (...) {
      std::lock_guard lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->done.fetch_add(1) + 1 == state->nchunks) {
      std::lock_guard lock(state->mutex);
      state->finished = true;
      state->cv.notify_all();
    }
  }
}

}  // namespace

void parallel_for(index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const index_t n = end - begin;
  const index_t nchunks = (n + grain - 1) / grain;
  ThreadPool* pool = nchunks > 1 ? global_pool() : nullptr;
  if (pool == nullptr) {
    // Serial mode: same chunk partition, ascending order, no pool involved.
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t lo = begin + c * grain;
      body(lo, lo + grain < end ? lo + grain : end);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->nchunks = nchunks;
  state->body = body;

  const index_t helpers =
      std::min<index_t>(pool->num_workers(), nchunks - 1);
  for (index_t i = 0; i < helpers; ++i) {
    pool->submit([state] { run_chunks(state); });
  }
  run_chunks(state);  // the caller always helps — nesting cannot deadlock

  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->finished; });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t, index_t)>& body) {
  if (end <= begin) return;
  const index_t n = end - begin;
  // ~4 chunks per thread balances stealing freedom against chunk overhead.
  const index_t grain = std::max<index_t>(1, n / (num_threads() * 4));
  parallel_for(begin, end, grain, body);
}

}  // namespace oasis::runtime
