// Deterministic data-parallel primitives over the global thread pool.
//
// Determinism contract: the partitioning of [begin, end) into chunks depends
// ONLY on (begin, end, grain) — never on the thread count or on scheduling —
// and `parallel_reduce` combines per-chunk partials serially in ascending
// chunk order. A computation expressed through these primitives therefore
// produces bit-identical results whether it runs on 1 thread or 64, which is
// what lets the FL determinism tests compare serial and parallel gradients
// byte for byte.
//
// Thread count resolution order: set_num_threads() > OASIS_THREADS env var >
// std::thread::hardware_concurrency(). A count of 1 bypasses the pool
// entirely (no threads are ever created) and runs chunks inline, in order.
#pragma once

#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace oasis::common {
class CliParser;
}  // namespace oasis::common

namespace oasis::runtime {

class ThreadPool;

/// Currently configured worker count (>= 1). First call resolves the
/// OASIS_THREADS environment variable / hardware concurrency.
index_t num_threads();

/// Reconfigures the global pool; `n == 0` re-resolves the automatic default.
/// Tears down the old pool (joining its workers) and lazily builds the new
/// one on the next parallel call. Not safe to call concurrently with running
/// parallel regions — configure at startup or between them.
void set_num_threads(index_t n);

/// The shared pool, or nullptr when num_threads() == 1 (serial mode).
ThreadPool* global_pool();

/// Registers the standard `--threads` flag on a bench/example CLI.
void add_cli_flag(common::CliParser& cli);

/// Applies a parsed `--threads` value (after CliParser::parse).
void apply_cli_flag(const common::CliParser& cli);

/// Splits [begin, end) into ceil(n / grain) contiguous chunks of at most
/// `grain` indices and invokes `body(chunk_begin, chunk_end)` once per chunk,
/// in parallel. Every index is covered exactly once. Exceptions thrown by
/// `body` are captured and the first one is re-thrown here after all chunks
/// finish. Safe to call from inside another parallel_for (the caller helps
/// execute chunks instead of blocking, so nesting cannot deadlock).
void parallel_for(index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& body);

/// Convenience overload: grain chosen so each thread gets ~4 chunks.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t, index_t)>& body);

/// Deterministic tree-free reduction: folds each fixed chunk with `chunk_fn`
/// (starting from a copy of `identity`), then combines the per-chunk
/// partials serially in ascending chunk order. The float summation order is
/// therefore a pure function of (begin, end, grain) — independent of thread
/// count — at the cost of one `combine` per chunk.
///
///   chunk_fn(chunk_begin, chunk_end, T acc) -> T   folds a chunk
///   combine(T a, T b) -> T                         merges two partials
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(index_t begin, index_t end, index_t grain, T identity,
                  ChunkFn&& chunk_fn, CombineFn&& combine) {
  if (end <= begin) return identity;
  if (grain < 1) grain = 1;
  const index_t n = end - begin;
  const index_t nchunks = (n + grain - 1) / grain;
  if (nchunks == 1) {
    return chunk_fn(begin, end, std::move(identity));
  }
  std::vector<T> partials(nchunks, identity);
  parallel_for(0, nchunks, 1, [&](index_t c0, index_t c1) {
    for (index_t c = c0; c < c1; ++c) {
      const index_t lo = begin + c * grain;
      const index_t hi = lo + grain < end ? lo + grain : end;
      partials[c] = chunk_fn(lo, hi, std::move(partials[c]));
    }
  });
  T result = std::move(partials[0]);
  for (index_t c = 1; c < nchunks; ++c) {
    result = combine(std::move(result), std::move(partials[c]));
  }
  return result;
}

}  // namespace oasis::runtime
