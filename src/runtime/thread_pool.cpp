#include "runtime/thread_pool.h"

#include "common/error.h"

namespace oasis::runtime {
namespace {

// Identifies the pool (and slot) the calling thread belongs to, so submits
// from inside a task go depth-first onto the worker's own deque.
thread_local const ThreadPool* t_pool = nullptr;
thread_local std::size_t t_worker_id = 0;

}  // namespace

ThreadPool::ThreadPool(index_t num_workers) {
  OASIS_CHECK_MSG(num_workers >= 1, "ThreadPool needs >= 1 worker");
  queues_.reserve(num_workers);
  for (index_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (index_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_pool == this; }

void ThreadPool::submit(Task task) {
  std::size_t target;
  if (t_pool == this) {
    target = t_worker_id;
  } else {
    std::lock_guard lock(sleep_mutex_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard lock(sleep_mutex_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker_id, Task& out) {
  auto& q = *queues_[worker_id];
  std::lock_guard lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());  // own work: newest first (cache-warm)
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t worker_id, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    auto& q = *queues_[(worker_id + off) % n];
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());  // stolen work: oldest first
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  t_pool = this;
  t_worker_id = worker_id;
  while (true) {
    Task task;
    if (try_pop(worker_id, task) || try_steal(worker_id, task)) {
      {
        std::lock_guard lock(sleep_mutex_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    if (stopping_ && pending_ == 0) return;
    wake_cv_.wait(lock, [this] { return pending_ > 0 || stopping_; });
    if (stopping_ && pending_ == 0) return;
  }
}

}  // namespace oasis::runtime
