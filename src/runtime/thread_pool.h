// Fixed-size work-stealing thread pool.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from siblings when idle (oldest work first, the classic
// Blumofe–Leiserson discipline). The pool never makes scheduling decisions
// that affect numeric results — `parallel_for`/`parallel_reduce` (parallel.h)
// partition work deterministically and only use the pool for execution, so
// WHERE a chunk runs is nondeterministic but WHAT it computes never is.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace oasis::runtime {

/// A pool of `num_workers` long-lived threads executing submitted tasks.
///
/// Tasks are type-erased `void()` closures. Exceptions must not escape a
/// task (the higher-level primitives in parallel.h capture and re-throw
/// them in the submitting thread); a throwing raw task terminates.
class ThreadPool {
 public:
  explicit ThreadPool(index_t num_workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  using Task = std::function<void()>;

  /// Enqueues a task. Called from a worker of THIS pool it pushes onto the
  /// worker's own deque (depth-first, stealable by siblings); from any other
  /// thread it round-robins across workers.
  void submit(Task task);

  [[nodiscard]] index_t num_workers() const { return workers_.size(); }

  /// True when the calling thread is a worker of this pool. Used by
  /// parallel_for to decide between helping inline and sleeping.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t worker_id);
  bool try_pop(std::size_t worker_id, Task& out);
  bool try_steal(std::size_t worker_id, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  // Queued-but-unclaimed tasks; guarded by sleep_mutex_ so sleepers never
  // miss a submit between their emptiness check and the wait.
  index_t pending_ = 0;
  bool stopping_ = false;
  std::size_t next_queue_ = 0;  // round-robin cursor for external submits
};

}  // namespace oasis::runtime
