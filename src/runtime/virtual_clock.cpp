#include "runtime/virtual_clock.h"

namespace oasis::runtime {

std::string VirtualClock::to_string() const {
  return "t=" + std::to_string(now_);
}

}  // namespace oasis::runtime
