// Deterministic virtual time for simulated distributed-systems behaviour.
//
// The FL round engine needs a notion of time to express deadlines, straggler
// delays, and retry backoff — but wall-clock time would make every run (and
// every thread count) observe different timings. A VirtualClock is a plain
// logical tick counter: it only moves when the owning simulation explicitly
// advances it from serial sections of the round loop, so "time" is a pure
// function of the seeded schedule and the determinism contract of
// runtime::parallel_for (see parallel.h) extends to all timeout/retry
// decisions. One tick has no physical unit; configs pick a scale (e.g.
// ~1 tick ≈ 1 simulated millisecond) and stay internally consistent.
#pragma once

#include <cstdint>
#include <string>

namespace oasis::runtime {

/// Monotone logical clock. Not thread-safe by design: advance it only from
/// serial code (parallel regions may read a tick value captured before the
/// fan-out, never the live clock).
class VirtualClock {
 public:
  using ticks = std::uint64_t;

  [[nodiscard]] ticks now() const noexcept { return now_; }

  /// Moves time forward by `dt` ticks.
  void advance(ticks dt) noexcept { now_ += dt; }

  /// Moves time forward to `t` if `t` is in the future; never rewinds.
  void advance_to(ticks t) noexcept {
    if (t > now_) now_ = t;
  }

  void reset() noexcept { now_ = 0; }

  /// Sets the clock to an absolute tick value. Checkpoint restore only:
  /// unlike advance_to this may rewind, because a snapshot is authoritative.
  void restore(ticks t) noexcept { now_ = t; }

  /// "t=<ticks>" — for logs and error messages.
  [[nodiscard]] std::string to_string() const;

 private:
  ticks now_ = 0;
};

}  // namespace oasis::runtime
