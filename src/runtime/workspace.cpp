#include "runtime/workspace.h"

#include <algorithm>
#include <new>

#include "common/error.h"

namespace oasis::runtime {
namespace {

constexpr std::size_t kAlign = 64;  // cache line / widest SIMD vector

real* aligned_new(std::size_t count) {
  return static_cast<real*>(
      ::operator new(count * sizeof(real), std::align_val_t{kAlign}));
}

void aligned_delete(real* p) {
  ::operator delete(p, std::align_val_t{kAlign});
}

// Round block sizes up so steady-state arenas settle after few growths.
std::size_t round_up(std::size_t n) {
  constexpr std::size_t kQuantum = 4096 / sizeof(real);
  return (n + kQuantum - 1) / kQuantum * kQuantum;
}

}  // namespace

Workspace::Scope::Scope(Workspace& ws) : ws_(ws) {
  block_ = ws_.cur_;
  used_ = ws_.blocks_.empty() ? 0 : ws_.blocks_[ws_.cur_].used;
  ++ws_.depth_;
}

Workspace::Scope::~Scope() {
  --ws_.depth_;
  ws_.rewind(block_, used_);
}

Workspace::~Workspace() {
  for (auto& b : blocks_) aligned_delete(b.data);
}

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

real* Workspace::alloc(index_t count) {
  OASIS_CHECK_MSG(depth_ > 0, "Workspace::alloc outside a Scope");
  const auto n = static_cast<std::size_t>(count);
  // Find room in the current or any later block (later blocks are empty or
  // partially used only by this same scope chain).
  constexpr std::size_t kAlignReals = kAlign / sizeof(real);
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    // Bump from the next 64-byte boundary so every returned pointer keeps
    // the alignment contract, not just the first one in a block.
    const std::size_t start =
        (b.used + kAlignReals - 1) / kAlignReals * kAlignReals;
    if (start + n <= b.cap) {
      real* p = b.data + start;
      b.used = start + n;
      return p;
    }
    if (cur_ + 1 == blocks_.size()) break;
    ++cur_;
  }
  // Grow: one block sized to cover the request plus everything we already
  // hold (so the post-warm-up coalesce converges to a single block).
  std::size_t total = reserve_;
  for (const auto& b : blocks_) total += b.cap;
  Block nb;
  nb.cap = round_up(std::max({n, total, std::size_t{512}}));
  nb.data = aligned_new(nb.cap);
  nb.used = n;
  blocks_.push_back(nb);
  cur_ = blocks_.size() - 1;
  reserve_ = 0;
  return nb.data;
}

index_t Workspace::capacity() const {
  std::size_t total = reserve_;
  for (const auto& b : blocks_) total += b.cap;
  return static_cast<index_t>(total);
}

void Workspace::rewind(std::size_t block, std::size_t used) {
  if (blocks_.empty()) return;
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  blocks_[block].used = used;
  cur_ = block;
  if (depth_ == 0 && blocks_.size() > 1) {
    // Outermost scope ended while fragmented: release the blocks and let the
    // next alloc() rebuild a single block of the combined capacity.
    std::size_t total = reserve_;
    for (auto& b : blocks_) {
      total += b.cap;
      aligned_delete(b.data);
    }
    blocks_.clear();
    cur_ = 0;
    reserve_ = total;
  }
}

}  // namespace oasis::runtime
