// Per-thread scratch arenas for the hot numeric kernels.
//
// A Workspace is a bump allocator whose capacity persists for the lifetime
// of its thread: the blocked GEMM pack panels and the Conv2d im2col /
// col2im scratch buffers are carved out of it on every call, but the
// backing storage is only ever allocated while the arena is still growing
// toward its steady-state high-water mark. After warm-up a training loop
// performs zero allocations inside the kernel hot paths.
//
// Usage is strictly scoped:
//
//   auto& ws = runtime::Workspace::tls();
//   runtime::Workspace::Scope scope(ws);
//   real* panel = ws.alloc(kc * nr);   // valid until `scope` is destroyed
//
// Scopes nest (a Conv2d scope encloses the GEMM scopes of the kernels it
// calls); destroying a scope rewinds the arena to where it stood at
// construction. Each thread — pool workers included, which live as long as
// the pool — owns exactly one arena via tls(), so no synchronization is
// needed and buffers persist across parallel_for chunks executed on the
// same worker.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace oasis::runtime {

class Workspace {
 public:
  /// Rewinds the arena to the construction-time mark on destruction.
  class Scope {
   public:
    explicit Scope(Workspace& ws);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// This thread's arena. Pool workers keep theirs alive across calls, so
  /// capacity reached once is never re-allocated.
  static Workspace& tls();

  /// `count` doubles, 64-byte aligned, uninitialized. Valid until the
  /// innermost live Scope is destroyed. Must be called inside a Scope.
  real* alloc(index_t count);

  /// `count` elements of scalar type T (the float pack panels of the fp32
  /// GEMM path use this), 64-byte aligned, same lifetime rules as alloc().
  /// Storage is carved from the same double-granular arena, rounded up.
  template <typename T>
  T* alloc_as(index_t count) {
    static_assert(alignof(T) <= alignof(real),
                  "arena blocks are only real-aligned between 64B marks");
    const auto reals = static_cast<index_t>(
        (count * sizeof(T) + sizeof(real) - 1) / sizeof(real));
    return reinterpret_cast<T*>(alloc(reals));
  }

  /// Total capacity across blocks, in doubles (diagnostics/tests).
  [[nodiscard]] index_t capacity() const;
  /// Number of backing blocks (1 once the arena has settled).
  [[nodiscard]] index_t block_count() const {
    return static_cast<index_t>(blocks_.size());
  }

 private:
  struct Block {
    real* data = nullptr;
    std::size_t cap = 0;   // doubles
    std::size_t used = 0;  // doubles
  };

  void rewind(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;     // index of the block alloc() bumps
  int depth_ = 0;           // live Scope nesting depth
  std::size_t reserve_ = 0; // capacity to restore after a coalesce
};

}  // namespace oasis::runtime
