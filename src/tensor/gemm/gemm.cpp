#include "tensor/gemm/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"

namespace oasis::tensor::gemm {
namespace {

// Below this many flops (2·m·k·n) a GEMM runs its chunks inline: the
// parallel_for dispatch costs more than the arithmetic it would split.
constexpr index_t kParallelGemmFlops = index_t{1} << 15;

index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

// ---- Register-tiled microkernel ---------------------------------------------
//
// Computes a single MR×NR tile of C += Ap·Bp from packed panels:
//   ap[kk*kMR + r]  — op(A) panel, k-major, MR rows interleaved
//   bp[kk*kNR + j]  — op(B) micro-panel, k-major, NR columns interleaved
// The accumulator tile is loaded from C first and the k-loop continues the
// same multiply-add chain the naive kernels run, so a store/reload at a KC
// boundary is exact and the final bits match the single naive sweep.
// Rows r >= mr / columns j >= nr read packed zero padding and are simply
// never stored.
void micro_kernel(index_t kc, const real* __restrict ap,
                  const real* __restrict bp, real* __restrict c, index_t ldc,
                  index_t mr, index_t nr) {
  real acc[kMR][kNR];
  const bool full = (mr == kMR) & (nr == kNR);
  if (full) {
    for (index_t r = 0; r < kMR; ++r)
      for (index_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  } else {
    for (index_t r = 0; r < kMR; ++r)
      for (index_t j = 0; j < kNR; ++j)
        acc[r][j] = (r < mr && j < nr) ? c[r * ldc + j] : 0.0;
  }
  // Each acc[r][j] advances one fused multiply-add per k step, in ascending
  // k order. The `+=` form is deliberate: under -ffp-contract=fast (pinned
  // in src/tensor/CMakeLists.txt) it contracts to a single-rounded FMA,
  // exactly the operation the naive kernels execute per element, AND it
  // vectorizes to broadcast+vfmadd across the NR lanes. Writing std::fma
  // explicitly here de-vectorizes the loop (~4.5x slower), and manual
  // unrolling makes it fall back to scalar shuffles (~5x slower) — keep the
  // plain triple loop.
  for (index_t kk = 0; kk < kc; ++kk) {
    const real* __restrict arow = ap + kk * kMR;
    const real* __restrict brow = bp + kk * kNR;
    for (index_t r = 0; r < kMR; ++r) {
      const real av = arow[r];
      for (index_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (full) {
    for (index_t r = 0; r < kMR; ++r)
      for (index_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (index_t r = 0; r < mr; ++r)
      for (index_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// ---- Packing ----------------------------------------------------------------

/// Packs op(B)[pc..pc+kc, jc..jc+nc) into NR-wide k-major micro-panels,
/// zero-padding the ragged last panel to NR columns.
void pack_b(Variant v, const real* __restrict b, index_t k, index_t n,
            index_t pc, index_t kc, index_t jc, index_t nc,
            real* __restrict bp) {
  const index_t panels = ceil_div(nc, kNR);
  for (index_t p = 0; p < panels; ++p) {
    const index_t j0 = p * kNR;
    const index_t w = std::min(kNR, nc - j0);
    real* __restrict dst = bp + p * kc * kNR;
    if (v == Variant::NT) {
      // op(B)[kk, j] = B[jc+j, pc+kk] with B stored n×k.
      for (index_t j = 0; j < w; ++j) {
        const real* __restrict src = b + (jc + j0 + j) * k + pc;
        for (index_t kk = 0; kk < kc; ++kk) dst[kk * kNR + j] = src[kk];
      }
      if (w < kNR) {
        for (index_t kk = 0; kk < kc; ++kk)
          for (index_t j = w; j < kNR; ++j) dst[kk * kNR + j] = 0.0;
      }
    } else {
      // op(B)[kk, j] = B[pc+kk, jc+j] with B stored k×n (NN and TN share B).
      for (index_t kk = 0; kk < kc; ++kk) {
        const real* __restrict src = b + (pc + kk) * n + jc + j0;
        real* __restrict row = dst + kk * kNR;
        for (index_t j = 0; j < w; ++j) row[j] = src[j];
        for (index_t j = w; j < kNR; ++j) row[j] = 0.0;
      }
    }
  }
}

/// Packs op(A)[i0..i0+mr, pc..pc+kc) k-major with MR rows interleaved,
/// zero-padding ragged rows to MR.
void pack_a(Variant v, const real* __restrict a, index_t m, index_t k,
            index_t i0, index_t mr, index_t pc, index_t kc,
            real* __restrict ap) {
  if (v == Variant::TN) {
    // op(A)[i, kk] = A[pc+kk, i0+i] with A stored k×m.
    for (index_t kk = 0; kk < kc; ++kk) {
      const real* __restrict src = a + (pc + kk) * m + i0;
      real* __restrict dst = ap + kk * kMR;
      for (index_t r = 0; r < mr; ++r) dst[r] = src[r];
      for (index_t r = mr; r < kMR; ++r) dst[r] = 0.0;
    }
  } else {
    // op(A)[i, kk] = A[i0+i, pc+kk] with A stored m×k (NN and NT share A).
    for (index_t kk = 0; kk < kc; ++kk) {
      real* __restrict dst = ap + kk * kMR;
      for (index_t r = 0; r < mr; ++r) dst[r] = a[(i0 + r) * k + pc + kk];
      for (index_t r = mr; r < kMR; ++r) dst[r] = 0.0;
    }
  }
}

// ---- Naive oracle kernels (the pre-blocking triple loops, verbatim) ---------

// Output rows are written disjointly and each row's k-accumulation order is
// fixed, so row-parallel GEMMs are bit-identical at any thread count.
void for_each_output_row(index_t rows, index_t flops,
                         const std::function<void(index_t, index_t)>& body) {
  if (flops < kParallelGemmFlops) {
    body(0, rows);
    return;
  }
  runtime::parallel_for(0, rows, body);
}

void naive_nn(index_t m, index_t k, index_t n, const real* a, const real* b,
              real* c) {
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const real* arow = a + i * k;
      real* crow = c + i * n;
      for (index_t kk = 0; kk < k; ++kk) {
        const real av = arow[kk];
        if (av == 0.0) continue;
        const real* brow = b + kk * n;
        for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void naive_tn(index_t m, index_t k, index_t n, const real* a, const real* b,
              real* c) {
  // c[i,j] += Σ_kk a[kk,i] * b[kk,j]; iterate kk outermost so both reads are
  // row-contiguous. Each parallel chunk owns output rows [i0, i1) and runs
  // the full kk sweep over them, so per-element accumulation order is the
  // serial one.
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t kk = 0; kk < k; ++kk) {
      const real* arow = a + kk * m;
      const real* brow = b + kk * n;
      for (index_t i = i0; i < i1; ++i) {
        const real av = arow[i];
        if (av == 0.0) continue;
        real* crow = c + i * n;
        for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void naive_nt(index_t m, index_t k, index_t n, const real* a, const real* b,
              real* c) {
  // c[i,j] += Σ_kk a[i,kk] * b[j,kk]: dot of two contiguous rows. Two
  // deliberate choices keep this bit-identical to the blocked path:
  //  * the chain is seeded from c[i,j] (not summed into 0 and added at the
  //    end), so every output element advances through the same
  //    ascending-k multiply-add sequence as the microkernel;
  //  * the fma is EXPLICIT. For an in-order dot-product reduction the
  //    vectorizer refuses to contract (it emits vector multiplies plus a
  //    serial add chain — two roundings per step), so the `+=` spelling
  //    used by the row-sweeping kernels above would diverge by ulps here.
  //    The scalar fma chain cannot vectorize anyway; this is the oracle,
  //    not the fast path.
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const real* arow = a + i * k;
      real* crow = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        const real* brow = b + j * k;
        real s = crow[j];
        for (index_t kk = 0; kk < k; ++kk)
          s = std::fma(arow[kk], brow[kk], s);
        crow[j] = s;
      }
    }
  });
}

// ---- Dispatch state ---------------------------------------------------------

bool env_naive() {
  const char* env = std::getenv("OASIS_NAIVE_GEMM");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::atomic<bool>& naive_flag() {
  static std::atomic<bool> flag{env_naive()};
  return flag;
}

void count_gemm(index_t flops) {
  if (!obs::kernel_metrics_enabled()) return;
  static obs::Counter& calls = obs::counter("kernel.gemm.calls");
  static obs::Counter& total = obs::counter("kernel.gemm.flops");
  calls.add(1);
  total.add(static_cast<std::uint64_t>(flops));
}

}  // namespace

bool naive_active() { return naive_flag().load(std::memory_order_relaxed); }

void set_naive(bool on) {
  naive_flag().store(on, std::memory_order_relaxed);
}

void blocked(Variant v, index_t m, index_t k, index_t n, const real* a,
             const real* b, real* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // C += empty product
  const index_t row_panels = ceil_div(m, kMR);
  // Shape-derived chunking: aim for ~8 chunks, at most 32 MR-panels (128
  // rows) per chunk so large GEMMs expose enough parallelism while a chunk's
  // packed A traffic stays L2-friendly. Never depends on the thread count.
  const index_t grain = std::max<index_t>(
      1, std::min<index_t>(row_panels / 8, index_t{32}));
  const bool parallel = 2 * m * k * n >= kParallelGemmFlops && row_panels > 1;

  runtime::Workspace& ws = runtime::Workspace::tls();
  runtime::Workspace::Scope scope(ws);
  const index_t nc_max = std::min(n, kNC);
  real* bpack = ws.alloc(kKC * ceil_div(nc_max, kNR) * kNR);

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t b_panels = ceil_div(nc, kNR);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      // B panel packed once, serially, then read-shared by every chunk.
      pack_b(v, b, k, n, pc, kc, jc, nc, bpack);
      const auto body = [&](index_t p0, index_t p1) {
        runtime::Workspace& tws = runtime::Workspace::tls();
        runtime::Workspace::Scope tscope(tws);
        real* apack = tws.alloc(kKC * kMR);
        for (index_t ip = p0; ip < p1; ++ip) {
          const index_t i0 = ip * kMR;
          const index_t mr = std::min(kMR, m - i0);
          pack_a(v, a, m, k, i0, mr, pc, kc, apack);
          for (index_t p = 0; p < b_panels; ++p) {
            const index_t j0 = jc + p * kNR;
            const index_t nr = std::min(kNR, jc + nc - j0);
            micro_kernel(kc, apack, bpack + p * kc * kNR, c + i0 * n + j0, n,
                         mr, nr);
          }
        }
      };
      if (parallel) {
        runtime::parallel_for(0, row_panels, grain, body);
      } else {
        body(0, row_panels);
      }
    }
  }
}

void naive(Variant v, index_t m, index_t k, index_t n, const real* a,
           const real* b, real* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  switch (v) {
    case Variant::NN: naive_nn(m, k, n, a, b, c); break;
    case Variant::TN: naive_tn(m, k, n, a, b, c); break;
    case Variant::NT: naive_nt(m, k, n, a, b, c); break;
  }
}

void run(Variant v, index_t m, index_t k, index_t n, const real* a,
         const real* b, real* c) {
  count_gemm(2 * m * k * n);
  if (naive_active()) {
    naive(v, m, k, n, a, b, c);
  } else {
    blocked(v, m, k, n, a, b, c);
  }
}

}  // namespace oasis::tensor::gemm
