#include "tensor/gemm/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/error.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "tensor/gemm/kernels.h"

namespace oasis::tensor::gemm {
namespace {

using detail::MicroKernel;

// Below this many flops (2·m·k·n) a GEMM runs its chunks inline: the
// parallel_for dispatch costs more than the arithmetic it would split.
constexpr index_t kParallelGemmFlops = index_t{1} << 15;

index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

// ---- Packing ----------------------------------------------------------------
//
// Pack strides follow the ACTIVE kernel's register tile (nr/mr below), so a
// wider AVX2/NEON tile packs wider panels than the scalar fallback. Packing
// only copies — it never touches the arithmetic — so the tile geometry is
// invisible in the output bits.

/// Packs op(B)[pc..pc+kc, jc..jc+nc) into nr-wide k-major micro-panels,
/// zero-padding the ragged last panel to nr columns.
template <typename T>
void pack_b(Variant v, const T* __restrict b, index_t k, index_t n, index_t pc,
            index_t kc, index_t jc, index_t nc, index_t nr,
            T* __restrict bp) {
  const index_t panels = ceil_div(nc, nr);
  for (index_t p = 0; p < panels; ++p) {
    const index_t j0 = p * nr;
    const index_t w = std::min(nr, nc - j0);
    T* __restrict dst = bp + p * kc * nr;
    if (v == Variant::NT) {
      // op(B)[kk, j] = B[jc+j, pc+kk] with B stored n×k.
      for (index_t j = 0; j < w; ++j) {
        const T* __restrict src = b + (jc + j0 + j) * k + pc;
        for (index_t kk = 0; kk < kc; ++kk) dst[kk * nr + j] = src[kk];
      }
      if (w < nr) {
        for (index_t kk = 0; kk < kc; ++kk)
          for (index_t j = w; j < nr; ++j) dst[kk * nr + j] = T(0);
      }
    } else {
      // op(B)[kk, j] = B[pc+kk, jc+j] with B stored k×n (NN and TN share B).
      for (index_t kk = 0; kk < kc; ++kk) {
        const T* __restrict src = b + (pc + kk) * n + jc + j0;
        T* __restrict row = dst + kk * nr;
        for (index_t j = 0; j < w; ++j) row[j] = src[j];
        for (index_t j = w; j < nr; ++j) row[j] = T(0);
      }
    }
  }
}

/// Packs op(A)[i0..i0+mr, pc..pc+kc) k-major with mr_pack rows interleaved,
/// zero-padding ragged rows to mr_pack.
template <typename T>
void pack_a(Variant v, const T* __restrict a, index_t m, index_t k, index_t i0,
            index_t mr, index_t pc, index_t kc, index_t mr_pack,
            T* __restrict ap) {
  if (v == Variant::TN) {
    // op(A)[i, kk] = A[pc+kk, i0+i] with A stored k×m.
    for (index_t kk = 0; kk < kc; ++kk) {
      const T* __restrict src = a + (pc + kk) * m + i0;
      T* __restrict dst = ap + kk * mr_pack;
      for (index_t r = 0; r < mr; ++r) dst[r] = src[r];
      for (index_t r = mr; r < mr_pack; ++r) dst[r] = T(0);
    }
  } else {
    // op(A)[i, kk] = A[i0+i, pc+kk] with A stored m×k (NN and NT share A).
    for (index_t kk = 0; kk < kc; ++kk) {
      T* __restrict dst = ap + kk * mr_pack;
      for (index_t r = 0; r < mr; ++r) dst[r] = a[(i0 + r) * k + pc + kk];
      for (index_t r = mr; r < mr_pack; ++r) dst[r] = T(0);
    }
  }
}

// ---- Naive oracle kernels (the pre-blocking triple loops, per dtype) --------

// Output rows are written disjointly and each row's k-accumulation order is
// fixed, so row-parallel GEMMs are bit-identical at any thread count.
void for_each_output_row(index_t rows, index_t flops,
                         const std::function<void(index_t, index_t)>& body) {
  if (flops < kParallelGemmFlops) {
    body(0, rows);
    return;
  }
  runtime::parallel_for(0, rows, body);
}

template <typename T>
void naive_nn(index_t m, index_t k, index_t n, const T* a, const T* b, T* c) {
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const T* arow = a + i * k;
      T* crow = c + i * n;
      for (index_t kk = 0; kk < k; ++kk) {
        const T av = arow[kk];
        if (av == T(0)) continue;
        const T* brow = b + kk * n;
        for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

template <typename T>
void naive_tn(index_t m, index_t k, index_t n, const T* a, const T* b, T* c) {
  // c[i,j] += Σ_kk a[kk,i] * b[kk,j]; iterate kk outermost so both reads are
  // row-contiguous. Each parallel chunk owns output rows [i0, i1) and runs
  // the full kk sweep over them, so per-element accumulation order is the
  // serial one.
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t kk = 0; kk < k; ++kk) {
      const T* arow = a + kk * m;
      const T* brow = b + kk * n;
      for (index_t i = i0; i < i1; ++i) {
        const T av = arow[i];
        if (av == T(0)) continue;
        T* crow = c + i * n;
        for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

template <typename T>
void naive_nt(index_t m, index_t k, index_t n, const T* a, const T* b, T* c) {
  // c[i,j] += Σ_kk a[i,kk] * b[j,kk]: dot of two contiguous rows. Two
  // deliberate choices keep this bit-identical to the blocked path:
  //  * the chain is seeded from c[i,j] (not summed into 0 and added at the
  //    end), so every output element advances through the same
  //    ascending-k multiply-add sequence as the microkernel;
  //  * the fma is EXPLICIT. For an in-order dot-product reduction the
  //    vectorizer refuses to contract (it emits vector multiplies plus a
  //    serial add chain — two roundings per step), so the `+=` spelling
  //    used by the row-sweeping kernels above would diverge by ulps here.
  //    The scalar fma chain cannot vectorize anyway; this is the oracle,
  //    not the fast path.
  for_each_output_row(m, m * k * n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const T* arow = a + i * k;
      T* crow = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        const T* brow = b + j * k;
        T s = crow[j];
        for (index_t kk = 0; kk < k; ++kk) s = std::fma(arow[kk], brow[kk], s);
        crow[j] = s;
      }
    }
  });
}

template <typename T>
void naive_impl(Variant v, index_t m, index_t k, index_t n, const T* a,
                const T* b, T* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  switch (v) {
    case Variant::NN: naive_nn(m, k, n, a, b, c); break;
    case Variant::TN: naive_tn(m, k, n, a, b, c); break;
    case Variant::NT: naive_nt(m, k, n, a, b, c); break;
  }
}

// ---- Dispatch state ---------------------------------------------------------

bool env_naive() {
  const char* env = std::getenv("OASIS_NAIVE_GEMM");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::atomic<bool>& naive_flag() {
  static std::atomic<bool> flag{env_naive()};
  return flag;
}

Isa best_isa() {
  if (detail::avx2_compiled() && detail::avx2_supported()) return Isa::kAvx2;
  if (detail::neon_compiled()) return Isa::kNeon;
  return Isa::kScalar;
}

/// OASIS_GEMM_ISA, resolved once. An unset variable means "best available";
/// an unknown or unavailable value falls back to that with a one-time note
/// (aborting a training run over a bench knob would be worse).
Isa resolve_env_isa() {
  const char* env = std::getenv("OASIS_GEMM_ISA");
  if (env == nullptr || env[0] == '\0') return best_isa();
  const std::optional<Isa> parsed = parse_isa(env);
  if (parsed.has_value() && isa_available(*parsed)) return *parsed;
  std::fprintf(stderr, "[oasis::gemm] OASIS_GEMM_ISA=%s %s; using %s\n", env,
               parsed.has_value() ? "is not available on this host"
                                  : "is not a known ISA",
               isa_name(best_isa()));
  return best_isa();
}

std::atomic<int>& isa_flag() {
  static std::atomic<int> flag{static_cast<int>(resolve_env_isa())};
  return flag;
}

template <typename T>
MicroKernel<T> isa_kernel(Isa isa) {
  constexpr bool f64 = sizeof(T) == sizeof(double);
  switch (isa) {
    case Isa::kAvx2:
      if constexpr (f64) return detail::avx2_kernel_f64();
      else return detail::avx2_kernel_f32();
    case Isa::kNeon:
      if constexpr (f64) return detail::neon_kernel_f64();
      else return detail::neon_kernel_f32();
    case Isa::kScalar: break;
  }
  return detail::scalar_kernel<T>();
}

void count_gemm(index_t flops) {
  if (!obs::kernel_metrics_enabled()) return;
  static obs::Counter& calls = obs::counter("kernel.gemm.calls");
  static obs::Counter& total = obs::counter("kernel.gemm.flops");
  calls.add(1);
  total.add(static_cast<std::uint64_t>(flops));
}

// ---- Blocked driver ---------------------------------------------------------

template <typename T>
void blocked_impl(Variant v, index_t m, index_t k, index_t n, const T* a,
                  const T* b, T* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // C += empty product
  const MicroKernel<T> mk = isa_kernel<T>(active_isa());
  const index_t row_panels = ceil_div(m, mk.mr);
  // Shape-derived chunking: aim for ~8 chunks, at most 32 MR-panels per
  // chunk so large GEMMs expose enough parallelism while a chunk's packed A
  // traffic stays L2-friendly. Never depends on the thread count, so the
  // row partition — and with it the output bits — is fixed per (dtype, ISA).
  const index_t grain = std::max<index_t>(
      1, std::min<index_t>(row_panels / 8, index_t{32}));
  const bool parallel = 2 * m * k * n >= kParallelGemmFlops && row_panels > 1;

  runtime::Workspace& ws = runtime::Workspace::tls();
  runtime::Workspace::Scope scope(ws);
  const index_t nc_max = std::min(n, kNC);
  T* bpack = ws.alloc_as<T>(kKC * ceil_div(nc_max, mk.nr) * mk.nr);

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t b_panels = ceil_div(nc, mk.nr);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      // B panel packed once, serially, then read-shared by every chunk.
      pack_b(v, b, k, n, pc, kc, jc, nc, mk.nr, bpack);
      const auto body = [&](index_t p0, index_t p1) {
        runtime::Workspace& tws = runtime::Workspace::tls();
        runtime::Workspace::Scope tscope(tws);
        T* apack = tws.alloc_as<T>(kKC * mk.mr);
        for (index_t ip = p0; ip < p1; ++ip) {
          const index_t i0 = ip * mk.mr;
          const index_t mr = std::min(mk.mr, m - i0);
          pack_a(v, a, m, k, i0, mr, pc, kc, mk.mr, apack);
          for (index_t p = 0; p < b_panels; ++p) {
            const index_t j0 = jc + p * mk.nr;
            const index_t nr = std::min(mk.nr, jc + nc - j0);
            T* ctile = c + i0 * n + j0;
            if (mr == mk.mr && nr == mk.nr) {
              mk.full(kc, apack, bpack + p * kc * mk.nr, ctile, n);
            } else {
              mk.edge(kc, apack, bpack + p * kc * mk.nr, ctile, n, mr, nr);
            }
          }
        }
      };
      if (parallel) {
        runtime::parallel_for(0, row_panels, grain, body);
      } else {
        body(0, row_panels);
      }
    }
  }
}

template <typename T>
void run_impl(Variant v, index_t m, index_t k, index_t n, const T* a,
              const T* b, T* c) {
  count_gemm(2 * m * k * n);
  if (naive_active()) {
    naive_impl(v, m, k, n, a, b, c);
  } else {
    blocked_impl(v, m, k, n, a, b, c);
  }
}

}  // namespace

namespace detail {

template <>
MicroKernel<double> scalar_kernel<double>() {
  return {generic_full<double, 4, 8>, generic_tile<double, 4, 8>, 4, 8};
}

template <>
MicroKernel<float> scalar_kernel<float>() {
  return {generic_full<float, 4, 32>, generic_tile<float, 4, 32>, 4, 32};
}

}  // namespace detail

// ---- Dispatch surface -------------------------------------------------------

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

std::optional<Isa> parse_isa(std::string_view name) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    if (name == isa_name(isa)) return isa;
  }
  return std::nullopt;
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return detail::avx2_compiled();
    case Isa::kNeon: return detail::neon_compiled();
  }
  return false;
}

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return detail::avx2_compiled() && detail::avx2_supported();
    case Isa::kNeon: return detail::neon_compiled();
  }
  return false;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    if (isa_available(isa)) out.push_back(isa);
  }
  return out;
}

Isa active_isa() {
  return static_cast<Isa>(isa_flag().load(std::memory_order_relaxed));
}

void set_isa(Isa isa) {
  OASIS_CHECK_MSG(isa_available(isa),
                  "gemm::set_isa: " << isa_name(isa)
                                    << " is not available on this host");
  isa_flag().store(static_cast<int>(isa), std::memory_order_relaxed);
}

bool naive_active() { return naive_flag().load(std::memory_order_relaxed); }

void set_naive(bool on) {
  naive_flag().store(on, std::memory_order_relaxed);
}

// ---- Entry points -----------------------------------------------------------

void blocked(Variant v, index_t m, index_t k, index_t n, const real* a,
             const real* b, real* c) {
  blocked_impl(v, m, k, n, a, b, c);
}

void blocked(Variant v, index_t m, index_t k, index_t n, const real32* a,
             const real32* b, real32* c) {
  blocked_impl(v, m, k, n, a, b, c);
}

void naive(Variant v, index_t m, index_t k, index_t n, const real* a,
           const real* b, real* c) {
  naive_impl(v, m, k, n, a, b, c);
}

void naive(Variant v, index_t m, index_t k, index_t n, const real32* a,
           const real32* b, real32* c) {
  naive_impl(v, m, k, n, a, b, c);
}

void run(Variant v, index_t m, index_t k, index_t n, const real* a,
         const real* b, real* c) {
  run_impl(v, m, k, n, a, b, c);
}

void run(Variant v, index_t m, index_t k, index_t n, const real32* a,
         const real32* b, real32* c) {
  run_impl(v, m, k, n, a, b, c);
}

}  // namespace oasis::tensor::gemm
