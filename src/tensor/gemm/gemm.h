// Blocked + packed GEMM kernel family (the hot path of every bench and
// training loop), dtype-templated (double fidelity path, float scale path)
// and dispatched across a runtime-selected SIMD microkernel family, with the
// old naive triple-loop kernels retained per dtype as the differential-test
// oracle.
//
// All entry points compute C += op(A)·op(B) on dense row-major buffers (the
// accumulate convention every call site relies on: wrappers hand in
// zero-initialized C, Conv2d hands in zeroed workspace tiles). Every entry
// exists for both `double` (`real`, the attack/PSNR fidelity dtype — the
// 130–145 dB verbatim-copy signature needs ~1e-15 relative error, see
// common/types.h) and `float` (`real32`, the training/serving scale dtype:
// half the bandwidth, twice the SIMD lanes).
//
// Determinism contract (DESIGN.md §5f/§5k): per (dtype, ISA), for every
// output element the k-accumulation runs in ascending k order through a
// single chain of single-rounded fused multiply-adds — the blocked path's
// register tiles load the partial result from C and continue the same FMA
// chain the naive kernels execute, and memory round-trips are exact — so
// blocked and naive results are bit-identical, at any thread count and any
// register-tile geometry, and the golden fixture is preserved byte-for-byte.
// Because a vector FMA lane performs the identical IEEE operation the scalar
// contraction does, the contract in fact holds ACROSS ISAs too; the tests
// pin it per (dtype, ISA) since that is what the dispatch guarantees. The
// one documented exception is the sign of zero when an entire op(A) column
// is exactly 0.0 (the naive kernels skip those terms): +0.0 vs -0.0 compare
// equal and cannot arise from continuous data.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace oasis::tensor::gemm {

/// Which operand is logically transposed. Row-major storage throughout:
///   NN: A is m×k, B is k×n.
///   TN: A is k×m (op(A)=Aᵀ), B is k×n — weight gradients, no transpose copy.
///   NT: A is m×k, B is n×k (op(B)=Bᵀ) — input gradients, no transpose copy.
enum class Variant { NN, TN, NT };

// Cache blocking parameters, shared by every (dtype, ISA) kernel: k blocked
// by KC (one packed B micro-panel stays L1-resident: 256·8 doubles·8 B =
// 16 KiB, half that for floats), n blocked by NC (the full packed B block,
// ≤ 1 MiB of doubles, L2-resident on the target Xeon with its 2 MiB L2).
// The register-tile geometry (MR×NR) is per-(dtype, ISA) — see
// kernels.h / DESIGN.md §5k — chosen so the accumulator tile fills the
// ISA's vector register file; packing pads ragged edges to the active
// kernel's tile.
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 512;

// ---- SIMD microkernel dispatch ----------------------------------------------

/// Instruction-set families the microkernels are specialized for. kScalar is
/// the portable fallback (plain C++, auto-vectorized under the build's
/// -march flags) and is always compiled; kAvx2 (AVX2+FMA ymm kernels) is
/// compiled on x86-64 and selected when the CPU reports the features; kNeon
/// is compiled on AArch64 where it is baseline.
enum class Isa { kScalar, kAvx2, kNeon };

/// Lower-case stable name ("scalar" | "avx2" | "neon") — the vocabulary of
/// the OASIS_GEMM_ISA environment variable and the bench/CI output.
const char* isa_name(Isa isa);

/// Parses an isa_name (case-sensitive); nullopt for unknown strings.
std::optional<Isa> parse_isa(std::string_view name);

/// True when the kernels for `isa` were compiled into this binary.
bool isa_compiled(Isa isa);

/// True when `isa` was compiled AND the running CPU supports it — i.e.
/// set_isa(isa) would succeed. kScalar is always available.
bool isa_available(Isa isa);

/// Every ISA usable on this host, kScalar first — the sweep axis the
/// differential tests and benches iterate so each compiled kernel variant is
/// exercised on one machine.
std::vector<Isa> available_isas();

/// The ISA the blocked kernels currently dispatch to. First call resolves
/// the OASIS_GEMM_ISA environment variable (scalar|avx2|neon; read once) and
/// falls back — with a one-time stderr note — to the best available ISA when
/// the variable is unset, unknown, or names an ISA this host cannot run.
Isa active_isa();

/// Forces dispatch to `isa` for subsequent GEMMs (tests/benches sweeping the
/// kernel family). Throws Error when !isa_available(isa). Toggle only
/// between parallel regions.
void set_isa(Isa isa);

// ---- Oracle switch ----------------------------------------------------------

/// True when the naive oracle kernels are active — either forced via the
/// OASIS_NAIVE_GEMM=1 environment variable (read once) or toggled with
/// set_naive(). Toggle only between parallel regions.
bool naive_active();
void set_naive(bool on);

// ---- Entry points (double fidelity path / float scale path) -----------------

/// C(m×n) += op(A)·op(B). Dispatches naive/blocked per naive_active() and
/// bumps the kernel.gemm.* flop counters (when kernel metrics are enabled).
/// Parallelizes over row panels of C via runtime::parallel_for with
/// shape-derived chunking; small products run inline.
void run(Variant v, index_t m, index_t k, index_t n, const real* a,
         const real* b, real* c);
void run(Variant v, index_t m, index_t k, index_t n, const real32* a,
         const real32* b, real32* c);

/// Direct entries (no naive/blocked dispatch, no metrics) for the
/// differential tests and benches. `blocked` still honors active_isa().
void blocked(Variant v, index_t m, index_t k, index_t n, const real* a,
             const real* b, real* c);
void blocked(Variant v, index_t m, index_t k, index_t n, const real32* a,
             const real32* b, real32* c);
void naive(Variant v, index_t m, index_t k, index_t n, const real* a,
           const real* b, real* c);
void naive(Variant v, index_t m, index_t k, index_t n, const real32* a,
           const real32* b, real32* c);

}  // namespace oasis::tensor::gemm
