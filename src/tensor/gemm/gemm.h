// Blocked + packed GEMM kernel family (the hot path of every bench and
// training loop), with the old naive triple-loop kernels retained as the
// differential-test oracle.
//
// All entry points compute C += op(A)·op(B) on dense row-major double
// buffers (the accumulate convention every call site relies on: wrappers
// hand in zero-initialized C, Conv2d hands in zeroed workspace tiles).
//
// Determinism contract (see DESIGN.md §5f): for every output element the
// k-accumulation runs in ascending k order through a single chain — the
// blocked path's register tiles load the partial result from C and continue
// the same fused-multiply-add chain the naive kernels execute, and memory
// round-trips of doubles are exact — so blocked and naive results are
// bit-identical, at any thread count, and the golden fixture is preserved
// byte-for-byte. The one documented exception is the sign of zero when an
// entire op(A) column is exactly 0.0 (the naive kernels skip those terms):
// +0.0 vs -0.0 compare equal and cannot arise from continuous data.
#pragma once

#include "common/types.h"

namespace oasis::tensor::gemm {

/// Which operand is logically transposed. Row-major storage throughout:
///   NN: A is m×k, B is k×n.
///   TN: A is k×m (op(A)=Aᵀ), B is k×n — weight gradients, no transpose copy.
///   NT: A is m×k, B is n×k (op(B)=Bᵀ) — input gradients, no transpose copy.
enum class Variant { NN, TN, NT };

// Blocking parameters (doubles). The microkernel holds an MR×NR accumulator
// tile in registers (4×8 doubles = four 512-bit vectors) over an unrolled
// k-loop; B is packed into NR-wide column panels of at most KC×NC (≤ 1 MiB,
// L2-resident on the target Xeon with its 2 MiB L2; one KC×NR micro-panel is
// 16 KiB, L1-resident); A is packed per MR-row panel (KC×MR = 8 KiB).
inline constexpr index_t kMR = 4;
inline constexpr index_t kNR = 8;
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 512;

/// True when the naive oracle kernels are active — either forced via the
/// OASIS_NAIVE_GEMM=1 environment variable (read once) or toggled with
/// set_naive(). Toggle only between parallel regions.
bool naive_active();
void set_naive(bool on);

/// C(m×n) += op(A)·op(B). Dispatches naive/blocked per naive_active() and
/// bumps the kernel.gemm.* flop counters (when kernel metrics are enabled).
/// Parallelizes over row panels of C via runtime::parallel_for with
/// shape-derived chunking; small products run inline.
void run(Variant v, index_t m, index_t k, index_t n, const real* a,
         const real* b, real* c);

/// Direct entries (no dispatch, no metrics) for the differential tests.
void blocked(Variant v, index_t m, index_t k, index_t n, const real* a,
             const real* b, real* c);
void naive(Variant v, index_t m, index_t k, index_t n, const real* a,
           const real* b, real* c);

}  // namespace oasis::tensor::gemm
