// AVX2+FMA microkernels (x86-64). This TU is compiled with -mavx2 -mfma
// regardless of the build's baseline -march (see src/tensor/CMakeLists.txt);
// nothing here runs unless the cpuid check in avx2_supported() passed, so a
// non-AVX2 host never executes these instructions.
//
// Tile geometry: 6×8 doubles / 6×16 floats — twelve ymm accumulators plus
// two packed-B vectors and one broadcast, 15 of the 16 ymm registers, the
// widest tile that leaves the register allocator a scratch register. The
// k-loop body is one broadcast + two vfmadd231 per row: every output element
// advances through exactly the single-rounded FMA chain the scalar kernels
// contract to, so the bits match the naive oracle (kernels.h).
//
// Ragged edges route to the shared generic_tile with the same 6-wide packed
// strides; compiled here (with AVX2 enabled) it may auto-vectorize, which is
// bit-harmless for the same reason the hand-written kernels are.
#include "tensor/gemm/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace oasis::tensor::gemm::detail {
namespace {

constexpr index_t kAvxMRF64 = 6, kAvxNRF64 = 8;
constexpr index_t kAvxMRF32 = 6, kAvxNRF32 = 16;

void avx2_full_f64(index_t kc, const double* __restrict ap,
                   const double* __restrict bp, double* __restrict c,
                   index_t ldc) {
  __m256d acc[kAvxMRF64][2];
  for (index_t r = 0; r < kAvxMRF64; ++r) {
    acc[r][0] = _mm256_loadu_pd(c + r * ldc);
    acc[r][1] = _mm256_loadu_pd(c + r * ldc + 4);
  }
  for (index_t kk = 0; kk < kc; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + kk * kAvxNRF64);
    const __m256d b1 = _mm256_loadu_pd(bp + kk * kAvxNRF64 + 4);
    const double* __restrict arow = ap + kk * kAvxMRF64;
    for (index_t r = 0; r < kAvxMRF64; ++r) {
      const __m256d av = _mm256_set1_pd(arow[r]);
      acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
    }
  }
  for (index_t r = 0; r < kAvxMRF64; ++r) {
    _mm256_storeu_pd(c + r * ldc, acc[r][0]);
    _mm256_storeu_pd(c + r * ldc + 4, acc[r][1]);
  }
}

void avx2_full_f32(index_t kc, const float* __restrict ap,
                   const float* __restrict bp, float* __restrict c,
                   index_t ldc) {
  __m256 acc[kAvxMRF32][2];
  for (index_t r = 0; r < kAvxMRF32; ++r) {
    acc[r][0] = _mm256_loadu_ps(c + r * ldc);
    acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (index_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kAvxNRF32);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kAvxNRF32 + 8);
    const float* __restrict arow = ap + kk * kAvxMRF32;
    for (index_t r = 0; r < kAvxMRF32; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (index_t r = 0; r < kAvxMRF32; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

}  // namespace

bool avx2_compiled() { return true; }

bool avx2_supported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

MicroKernel<double> avx2_kernel_f64() {
  return {avx2_full_f64, generic_tile<double, kAvxMRF64, kAvxNRF64>,
          kAvxMRF64, kAvxNRF64};
}

MicroKernel<float> avx2_kernel_f32() {
  return {avx2_full_f32, generic_tile<float, kAvxMRF32, kAvxNRF32>,
          kAvxMRF32, kAvxNRF32};
}

}  // namespace oasis::tensor::gemm::detail

#else  // non-x86: stubs so the dispatch table links everywhere.

namespace oasis::tensor::gemm::detail {

bool avx2_compiled() { return false; }
bool avx2_supported() { return false; }
MicroKernel<double> avx2_kernel_f64() { return {nullptr, nullptr, 0, 0}; }
MicroKernel<float> avx2_kernel_f32() { return {nullptr, nullptr, 0, 0}; }

}  // namespace oasis::tensor::gemm::detail

#endif
