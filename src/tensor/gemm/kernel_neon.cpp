// NEON microkernels (AArch64, where Advanced SIMD is baseline — no extra
// compile flags or runtime feature check needed; neon_compiled() doubles as
// neon-supported).
//
// Tile geometry mirrors the AVX2 family at the same MR so the packed-A
// layout math is identical per dtype: 6×8 doubles (24 of the 32 128-bit
// vector registers as accumulators, 4 packed-B vectors, 1 broadcast) and
// 6×16 floats. vfmaq_n_* is a single-rounded fused multiply-add per lane —
// the same IEEE operation the scalar kernels contract to — so the bits
// match the naive oracle (kernels.h).
#include "tensor/gemm/kernels.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace oasis::tensor::gemm::detail {
namespace {

constexpr index_t kNeonMRF64 = 6, kNeonNRF64 = 8;
constexpr index_t kNeonMRF32 = 6, kNeonNRF32 = 16;

void neon_full_f64(index_t kc, const double* __restrict ap,
                   const double* __restrict bp, double* __restrict c,
                   index_t ldc) {
  float64x2_t acc[kNeonMRF64][4];
  for (index_t r = 0; r < kNeonMRF64; ++r)
    for (index_t v = 0; v < 4; ++v) acc[r][v] = vld1q_f64(c + r * ldc + 2 * v);
  for (index_t kk = 0; kk < kc; ++kk) {
    float64x2_t b[4];
    for (index_t v = 0; v < 4; ++v) b[v] = vld1q_f64(bp + kk * kNeonNRF64 + 2 * v);
    const double* __restrict arow = ap + kk * kNeonMRF64;
    for (index_t r = 0; r < kNeonMRF64; ++r) {
      const double av = arow[r];
      for (index_t v = 0; v < 4; ++v) acc[r][v] = vfmaq_n_f64(acc[r][v], b[v], av);
    }
  }
  for (index_t r = 0; r < kNeonMRF64; ++r)
    for (index_t v = 0; v < 4; ++v) vst1q_f64(c + r * ldc + 2 * v, acc[r][v]);
}

void neon_full_f32(index_t kc, const float* __restrict ap,
                   const float* __restrict bp, float* __restrict c,
                   index_t ldc) {
  float32x4_t acc[kNeonMRF32][4];
  for (index_t r = 0; r < kNeonMRF32; ++r)
    for (index_t v = 0; v < 4; ++v) acc[r][v] = vld1q_f32(c + r * ldc + 4 * v);
  for (index_t kk = 0; kk < kc; ++kk) {
    float32x4_t b[4];
    for (index_t v = 0; v < 4; ++v) b[v] = vld1q_f32(bp + kk * kNeonNRF32 + 4 * v);
    const float* __restrict arow = ap + kk * kNeonMRF32;
    for (index_t r = 0; r < kNeonMRF32; ++r) {
      const float av = arow[r];
      for (index_t v = 0; v < 4; ++v) acc[r][v] = vfmaq_n_f32(acc[r][v], b[v], av);
    }
  }
  for (index_t r = 0; r < kNeonMRF32; ++r)
    for (index_t v = 0; v < 4; ++v) vst1q_f32(c + r * ldc + 4 * v, acc[r][v]);
}

}  // namespace

bool neon_compiled() { return true; }

MicroKernel<double> neon_kernel_f64() {
  return {neon_full_f64, generic_tile<double, kNeonMRF64, kNeonNRF64>,
          kNeonMRF64, kNeonNRF64};
}

MicroKernel<float> neon_kernel_f32() {
  return {neon_full_f32, generic_tile<float, kNeonMRF32, kNeonNRF32>,
          kNeonMRF32, kNeonNRF32};
}

}  // namespace oasis::tensor::gemm::detail

#else  // non-ARM: stubs so the dispatch table links everywhere.

namespace oasis::tensor::gemm::detail {

bool neon_compiled() { return false; }
MicroKernel<double> neon_kernel_f64() { return {nullptr, nullptr, 0, 0}; }
MicroKernel<float> neon_kernel_f32() { return {nullptr, nullptr, 0, 0}; }

}  // namespace oasis::tensor::gemm::detail

#endif
