// Internal microkernel family for the blocked GEMM driver (gemm.cpp).
//
// A MicroKernel<T> bundles one (dtype, ISA) register-tiled kernel: `full`
// computes a complete MR×NR tile of C += Ap·Bp from packed panels, `edge`
// the ragged clip of one (padded packs, full-tile arithmetic in registers,
// clipped store), and (mr, nr) the tile geometry the driver packs for.
//
// Bit-identity across the family rests on one invariant every kernel obeys:
// each output element advances through an ascending-k chain of
// single-rounded fused multiply-adds seeded from the C tile. The scalar
// kernels get the FMA from -ffp-contract=fast (pinned in
// src/tensor/CMakeLists.txt; the independent-accumulator loop shape below is
// exactly the one GCC contracts — see the comment in generic_tile); the SIMD
// kernels spell vfmadd explicitly. A vector FMA lane and a contracted scalar
// FMA are the same IEEE operation, so tile geometry, ISA, and full-vs-edge
// routing never change the bits.
#pragma once

#include "common/types.h"

namespace oasis::tensor::gemm::detail {

template <typename T>
struct MicroKernel {
  /// Full MR×NR tile: C[0..mr)×[0..nr) += Ap·Bp with packed strides mr/nr.
  void (*full)(index_t kc, const T* ap, const T* bp, T* c, index_t ldc);
  /// Ragged tile: same arithmetic over the zero-padded pack, storing only
  /// the live mr×nr corner.
  void (*edge)(index_t kc, const T* ap, const T* bp, T* c, index_t ldc,
               index_t mr, index_t nr);
  index_t mr, nr;
};

// ---- Generic (scalar / auto-vectorized) tiles -------------------------------
//
// The portable kernel, and the edge handler the SIMD kernels share. Each
// acc[r][j] advances one fused multiply-add per k step, in ascending k
// order. The `+=` form is deliberate: under -ffp-contract=fast it contracts
// to a single-rounded FMA, exactly the operation the naive kernels execute
// per element, AND it vectorizes to broadcast+vfmadd across the NR lanes.
// Writing std::fma explicitly here de-vectorizes the loop (~4.5x slower),
// and manual unrolling makes it fall back to scalar shuffles (~5x slower) —
// keep the plain triple loop.

template <typename T, index_t MR, index_t NR>
void generic_tile(index_t kc, const T* __restrict ap, const T* __restrict bp,
                  T* __restrict c, index_t ldc, index_t mr, index_t nr) {
  T acc[MR][NR];
  const bool full = (mr == MR) & (nr == NR);
  if (full) {
    for (index_t r = 0; r < MR; ++r)
      for (index_t j = 0; j < NR; ++j) acc[r][j] = c[r * ldc + j];
  } else {
    for (index_t r = 0; r < MR; ++r)
      for (index_t j = 0; j < NR; ++j)
        acc[r][j] = (r < mr && j < nr) ? c[r * ldc + j] : T(0);
  }
  for (index_t kk = 0; kk < kc; ++kk) {
    const T* __restrict arow = ap + kk * MR;
    const T* __restrict brow = bp + kk * NR;
    for (index_t r = 0; r < MR; ++r) {
      const T av = arow[r];
      for (index_t j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (full) {
    for (index_t r = 0; r < MR; ++r)
      for (index_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (index_t r = 0; r < mr; ++r)
      for (index_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <typename T, index_t MR, index_t NR>
void generic_full(index_t kc, const T* ap, const T* bp, T* c, index_t ldc) {
  generic_tile<T, MR, NR>(kc, ap, bp, c, ldc, MR, NR);
}

/// The scalar-ISA kernel for T. The double tile is the pre-dispatch 4×8
/// (the geometry the golden fixture was recorded under — not that geometry
/// matters for the bits, but it keeps the scalar path's cache behavior
/// unchanged); the float tile is 4×32, the NR at which GCC's vectorizer
/// emits clean broadcast+FMA rows for float (4×8 through 8×16 all trip its
/// SLP pass into shuffle-transpose code an order of magnitude slower —
/// measured, not theorized; re-check the disassembly before changing it).
template <typename T>
MicroKernel<T> scalar_kernel();

// ---- AVX2+FMA kernels (kernel_avx2.cpp, compiled with -mavx2 -mfma) ---------
//
// Always declared; on non-x86 builds the TU compiles stubs with
// avx2_compiled() == false and null kernels. avx2_supported() performs the
// runtime cpuid feature check (AVX2 and FMA).
bool avx2_compiled();
bool avx2_supported();
MicroKernel<double> avx2_kernel_f64();
MicroKernel<float> avx2_kernel_f32();

// ---- NEON kernels (kernel_neon.cpp, baseline on AArch64) --------------------
bool neon_compiled();
MicroKernel<double> neon_kernel_f64();
MicroKernel<float> neon_kernel_f32();

}  // namespace oasis::tensor::gemm::detail
