#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "tensor/gemm/gemm.h"

namespace oasis::tensor {
namespace {

void check_rank2(const Tensor& t, const char* op) {
  if (t.rank() != 2) {
    throw ShapeError(std::string(op) + ": expected rank-2, got " +
                     to_string(t.shape()));
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  OASIS_CHECK_MSG(b.dim(0) == k, "matmul: " << to_string(a.shape()) << " · "
                                            << to_string(b.shape()));
  Tensor c({m, n});
  gemm::run(gemm::Variant::NN, m, k, n, a.data().data(), b.data().data(),
            c.data().data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  OASIS_CHECK_MSG(b.dim(0) == k, "matmul_tn: " << to_string(a.shape()) << "ᵀ · "
                                               << to_string(b.shape()));
  Tensor c({m, n});
  gemm::run(gemm::Variant::TN, m, k, n, a.data().data(), b.data().data(),
            c.data().data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  OASIS_CHECK_MSG(b.dim(1) == k, "matmul_nt: " << to_string(a.shape()) << " · "
                                               << to_string(b.shape()) << "ᵀ");
  Tensor c({m, n});
  gemm::run(gemm::Variant::NT, m, k, n, a.data().data(), b.data().data(),
            c.data().data());
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const index_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) t.at2(j, i) = a.at2(i, j);
  return t;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  check_rank2(a, "matvec");
  OASIS_CHECK_MSG(x.rank() == 1 && x.dim(0) == a.dim(1),
                  "matvec: " << to_string(a.shape()) << " · "
                             << to_string(x.shape()));
  const index_t m = a.dim(0), n = a.dim(1);
  Tensor y({m});
  for (index_t i = 0; i < m; ++i) {
    real s = 0.0;
    for (index_t j = 0; j < n; ++j) s += a.at2(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Tensor outer(const Tensor& a, const Tensor& b) {
  OASIS_CHECK_MSG(a.rank() == 1 && b.rank() == 1,
                  "outer: " << to_string(a.shape()) << " ⊗ "
                            << to_string(b.shape()));
  const index_t m = a.dim(0), n = b.dim(0);
  Tensor c({m, n});
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) c.at2(i, j) = a[i] * b[j];
  return c;
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  const index_t m = a.dim(0), n = a.dim(1);
  Tensor s({n});
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) s[j] += a.at2(i, j);
  return s;
}

void add_row_vector(Tensor& a, const Tensor& bias) {
  check_rank2(a, "add_row_vector");
  OASIS_CHECK_MSG(bias.rank() == 1 && bias.dim(0) == a.dim(1),
                  "add_row_vector: " << to_string(a.shape()) << " + "
                                     << to_string(bias.shape()));
  const index_t m = a.dim(0), n = a.dim(1);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) a.at2(i, j) += bias[j];
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  for (auto& v : out.data()) v = std::max(v, 0.0);
  return out;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& pre_activation) {
  check_same_shape(grad_out.shape(), pre_activation.shape(), "relu_backward");
  Tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto z = pre_activation.data();
  for (index_t i = 0; i < g.size(); ++i) {
    if (z[i] <= 0.0) g[i] = 0.0;
  }
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  check_rank2(logits, "softmax_rows");
  const index_t m = logits.dim(0), n = logits.dim(1);
  Tensor p = logits;
  for (index_t i = 0; i < m; ++i) {
    real mx = p.at2(i, 0);
    for (index_t j = 1; j < n; ++j) mx = std::max(mx, p.at2(i, j));
    real sum = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const real e = std::exp(p.at2(i, j) - mx);
      p.at2(i, j) = e;
      sum += e;
    }
    for (index_t j = 0; j < n; ++j) p.at2(i, j) /= sum;
  }
  return p;
}

Tensor log_softmax_rows(const Tensor& logits) {
  check_rank2(logits, "log_softmax_rows");
  const index_t m = logits.dim(0), n = logits.dim(1);
  Tensor out = logits;
  for (index_t i = 0; i < m; ++i) {
    real mx = out.at2(i, 0);
    for (index_t j = 1; j < n; ++j) mx = std::max(mx, out.at2(i, j));
    real sum = 0.0;
    for (index_t j = 0; j < n; ++j) sum += std::exp(out.at2(i, j) - mx);
    const real lse = mx + std::log(sum);
    for (index_t j = 0; j < n; ++j) out.at2(i, j) -= lse;
  }
  return out;
}

index_t conv_out_extent(index_t in, index_t k, index_t stride, index_t pad) {
  OASIS_CHECK_MSG(in + 2 * pad >= k,
                  "conv: kernel " << k << " larger than padded input "
                                  << in + 2 * pad);
  return (in + 2 * pad - k) / stride + 1;
}

Tensor im2col(const Tensor& image, index_t kh, index_t kw, index_t stride,
              index_t pad) {
  OASIS_CHECK_MSG(image.rank() == 3,
                  "im2col: expected [C,H,W], got " << to_string(image.shape()));
  OASIS_CHECK(stride >= 1);
  const index_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  const index_t oh = conv_out_extent(h, kh, stride, pad);
  const index_t ow = conv_out_extent(w, kw, stride, pad);
  Tensor cols({c * kh * kw, oh * ow});
  im2col_into(image.data().data(), c, h, w, kh, kw, stride, pad,
              cols.data().data());
  return cols;
}

void im2col_into(const real* src, index_t c, index_t h, index_t w, index_t kh,
                 index_t kw, index_t stride, index_t pad, real* dst) {
  const index_t oh = conv_out_extent(h, kh, stride, pad);
  const index_t ow = conv_out_extent(w, kw, stride, pad);
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.im2col.calls");
    calls.add(1);
  }
  const index_t out_cols = oh * ow;
  for (index_t ch = 0; ch < c; ++ch) {
    for (index_t ki = 0; ki < kh; ++ki) {
      for (index_t kj = 0; kj < kw; ++kj) {
        real* drow = dst + ((ch * kh + ki) * kw + kj) * out_cols;
        for (index_t oi = 0; oi < oh; ++oi) {
          // Source row index may be out of bounds when padding is in effect.
          const std::ptrdiff_t si =
              static_cast<std::ptrdiff_t>(oi * stride + ki) -
              static_cast<std::ptrdiff_t>(pad);
          for (index_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t sj =
                static_cast<std::ptrdiff_t>(oj * stride + kj) -
                static_cast<std::ptrdiff_t>(pad);
            real v = 0.0;
            if (si >= 0 && si < static_cast<std::ptrdiff_t>(h) && sj >= 0 &&
                sj < static_cast<std::ptrdiff_t>(w)) {
              v = src[(ch * h + static_cast<index_t>(si)) * w +
                      static_cast<index_t>(sj)];
            }
            drow[oi * ow + oj] = v;
          }
        }
      }
    }
  }
}

Tensor col2im(const Tensor& cols, index_t channels, index_t height,
              index_t width, index_t kh, index_t kw, index_t stride,
              index_t pad) {
  const index_t oh = conv_out_extent(height, kh, stride, pad);
  const index_t ow = conv_out_extent(width, kw, stride, pad);
  OASIS_CHECK_MSG(cols.rank() == 2 && cols.dim(0) == channels * kh * kw &&
                      cols.dim(1) == oh * ow,
                  "col2im: bad cols shape " << to_string(cols.shape()));
  Tensor image({channels, height, width});
  col2im_add(cols.data().data(), channels, height, width, kh, kw, stride, pad,
             image.data().data());
  return image;
}

void col2im_add(const real* src, index_t channels, index_t height,
                index_t width, index_t kh, index_t kw, index_t stride,
                index_t pad, real* dst) {
  const index_t oh = conv_out_extent(height, kh, stride, pad);
  const index_t ow = conv_out_extent(width, kw, stride, pad);
  if (obs::kernel_metrics_enabled()) {
    static obs::Counter& calls = obs::counter("kernel.col2im.calls");
    calls.add(1);
  }
  const index_t out_cols = oh * ow;
  for (index_t ch = 0; ch < channels; ++ch) {
    for (index_t ki = 0; ki < kh; ++ki) {
      for (index_t kj = 0; kj < kw; ++kj) {
        const real* srow = src + ((ch * kh + ki) * kw + kj) * out_cols;
        for (index_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t si =
              static_cast<std::ptrdiff_t>(oi * stride + ki) -
              static_cast<std::ptrdiff_t>(pad);
          if (si < 0 || si >= static_cast<std::ptrdiff_t>(height)) continue;
          for (index_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t sj =
                static_cast<std::ptrdiff_t>(oj * stride + kj) -
                static_cast<std::ptrdiff_t>(pad);
            if (sj < 0 || sj >= static_cast<std::ptrdiff_t>(width)) continue;
            dst[(ch * height + static_cast<index_t>(si)) * width +
                static_cast<index_t>(sj)] += srow[oi * ow + oj];
          }
        }
      }
    }
  }
}

real max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "max_abs_diff");
  real m = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (index_t i = 0; i < pa.size(); ++i)
    m = std::max(m, std::abs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, real rtol, real atol) {
  if (a.shape() != b.shape()) return false;
  auto pa = a.data();
  auto pb = b.data();
  for (index_t i = 0; i < pa.size(); ++i) {
    if (std::abs(pa[i] - pb[i]) > atol + rtol * std::abs(pb[i])) return false;
  }
  return true;
}

}  // namespace oasis::tensor
