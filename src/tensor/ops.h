// Linear-algebra and NN-support kernels on Tensor.
//
// All matrix kernels operate on rank-2 tensors with row-major layout. The
// matmul family dispatches into the blocked+packed kernel unit in
// tensor/gemm/ (SIMD-dispatched register-tiled microkernels — scalar, AVX2,
// NEON, forced via OASIS_GEMM_ISA — L2-sized packed panels, workspace
// arenas); the pre-blocking naive triple loops are retained there behind
// OASIS_NAIVE_GEMM as the differential-test oracle, bit-identical by
// construction per (dtype, ISA) (DESIGN.md §5f/§5k). Tensor is fp64 — the
// fidelity dtype — so these shims always take the `real` entry points; the
// fp32 scale path is reached through gemm.h directly. This is the single
// hot spot of training and of the attack's reconstruction arithmetic.
#pragma once

#include "tensor/tensor.h"

namespace oasis::tensor {

/// C = A(m×k) · B(k×n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ(k×m becomes m×k input) · B — computes A.T @ B without materializing
/// the transpose. A is (k×m), B is (k×n), result (m×n). Used for weight
/// gradients (xᵀ · δ).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A(m×k) · Bᵀ where B is (n×k), result (m×n). Used for input gradients
/// (δ · Wᵀ with W stored (out×in)).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Explicit transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// y = A(m×n) · x(n).
Tensor matvec(const Tensor& a, const Tensor& x);

/// Outer product a(m) ⊗ b(n) → (m×n).
Tensor outer(const Tensor& a, const Tensor& b);

/// Sum of a rank-2 tensor over rows: result[j] = Σ_i a[i,j]. This is exactly
/// the batch-summed bias gradient the reconstruction attacks invert.
Tensor sum_rows(const Tensor& a);

/// Adds a rank-1 bias to every row of a rank-2 tensor in place.
void add_row_vector(Tensor& a, const Tensor& bias);

/// Element-wise max(v, 0).
Tensor relu(const Tensor& a);

/// ReLU backward: grad masked by (pre_activation > 0).
Tensor relu_backward(const Tensor& grad_out, const Tensor& pre_activation);

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a rank-2 tensor (numerically stabilized).
Tensor log_softmax_rows(const Tensor& logits);

/// im2col for 2-D convolution.
///
/// Input [C, H, W] is unrolled into a matrix of shape
/// [C*kh*kw, out_h*out_w] so convolution becomes a single matmul with the
/// (out_channels × C*kh*kw) filter matrix. Zero padding, stride >= 1.
Tensor im2col(const Tensor& image, index_t kh, index_t kw, index_t stride,
              index_t pad);

/// Raw-buffer im2col: unrolls a [C, H, W] image at `src` into the
/// [C*kh*kw, out_h*out_w] matrix at `dst` (every element written, padding
/// included). The allocation-free hot-loop form Conv2d uses with its
/// persistent column cache.
void im2col_into(const real* src, index_t channels, index_t height,
                 index_t width, index_t kh, index_t kw, index_t stride,
                 index_t pad, real* dst);

/// Adjoint of im2col: folds a [C*kh*kw, out_h*out_w] column matrix back into
/// a [C, H, W] image, summing overlapping contributions.
Tensor col2im(const Tensor& cols, index_t channels, index_t height,
              index_t width, index_t kh, index_t kw, index_t stride,
              index_t pad);

/// Raw-buffer col2im: accumulates (`+=`) the folded image into `dst`, which
/// the caller must have zeroed (or hold a partial image to add onto).
void col2im_add(const real* cols, index_t channels, index_t height,
                index_t width, index_t kh, index_t kw, index_t stride,
                index_t pad, real* dst);

/// Output spatial extent of a convolution/pool along one axis.
index_t conv_out_extent(index_t in, index_t k, index_t stride, index_t pad);

/// Max-absolute-difference between two same-shaped tensors.
real max_abs_diff(const Tensor& a, const Tensor& b);

/// True iff all |a-b| <= atol + rtol*|b| element-wise (same shape required).
bool allclose(const Tensor& a, const Tensor& b, real rtol = 1e-9,
              real atol = 1e-12);

}  // namespace oasis::tensor
