#include "tensor/serialize.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/crc32c.h"

namespace oasis::tensor {
namespace {

constexpr std::size_t kCrcBytes = sizeof(std::uint32_t);

void write_u64(std::uint64_t v, ByteBuffer& out) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

// All read helpers walk the logical payload [0, end); `end` excludes the
// CRC trailer when the buffer carries one, so a hostile length can never
// steer the cursor into (or past) the checksum bytes.
std::uint64_t read_u64(const ByteBuffer& in, std::size_t& offset,
                       std::size_t end) {
  if (offset > end || end - offset < sizeof(std::uint64_t)) {
    throw SerializationError("truncated buffer reading u64");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

/// Reads a tensor header (rank + extents) and returns its shape together
/// with the validated element count. Every check happens BEFORE allocation
/// and is written so no intermediate product/sum can wrap: a hostile header
/// claiming 2^62 × 2^62 elements throws instead of overflowing to a small
/// count that would desynchronise the read cursor.
Shape read_header(const ByteBuffer& in, std::size_t& offset, std::size_t end,
                  index_t& out_numel) {
  const auto rank = read_u64(in, offset, end);
  if (rank > 8) {
    throw SerializationError("implausible tensor rank " +
                             std::to_string(rank));
  }
  Shape shape(rank);
  index_t n = 1;
  for (auto& d : shape) {
    d = read_u64(in, offset, end);
    if (d != 0 && n > std::numeric_limits<index_t>::max() / d) {
      throw SerializationError("tensor extent product overflows");
    }
    n *= d;
  }
  // Overflow-safe payload bound: compare element count against the bytes
  // actually remaining rather than forming n * sizeof(real).
  if (offset > end || n > (end - offset) / sizeof(real)) {
    throw SerializationError("truncated buffer reading tensor payload");
  }
  out_numel = n;
  return shape;
}

/// Verifies the CRC32C trailer of a serialize_tensors() message and returns
/// the logical payload size (everything before the trailer). Runs BEFORE any
/// structural parsing so damaged bytes are reported as checksum damage even
/// when the structure still happens to decode.
std::size_t verify_trailer(const ByteBuffer& in) {
  if (in.size() < sizeof(std::uint64_t) + kCrcBytes) {
    throw ChecksumError("buffer too small for count header + CRC trailer");
  }
  const std::size_t payload = in.size() - kCrcBytes;
  std::uint32_t stored = 0;
  std::memcpy(&stored, in.data() + payload, kCrcBytes);
  const std::uint32_t actual = oasis::common::crc32c(in.data(), payload);
  if (stored != actual) {
    throw ChecksumError("payload CRC32C mismatch");
  }
  return payload;
}

}  // namespace

void write_tensor(const Tensor& t, ByteBuffer& out) {
  write_u64(t.rank(), out);
  for (const auto d : t.shape()) write_u64(d, out);
  const auto values = t.data();
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), p, p + values.size() * sizeof(real));
}

Tensor read_tensor(const ByteBuffer& in, std::size_t& offset) {
  index_t n = 0;
  Shape shape = read_header(in, offset, in.size(), n);
  std::vector<real> values(n);
  std::memcpy(values.data(), in.data() + offset, n * sizeof(real));
  offset += n * sizeof(real);
  return Tensor(std::move(shape), std::move(values));
}

ByteBuffer serialize_tensors(const std::vector<Tensor>& tensors) {
  ByteBuffer out;
  write_u64(tensors.size(), out);
  for (const auto& t : tensors) write_tensor(t, out);
  const std::uint32_t crc = oasis::common::crc32c(out.data(), out.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(&crc);
  out.insert(out.end(), p, p + kCrcBytes);
  return out;
}

void reseal_tensors(ByteBuffer& buf) {
  if (buf.size() < kCrcBytes) return;
  const std::size_t payload = buf.size() - kCrcBytes;
  const std::uint32_t crc = oasis::common::crc32c(buf.data(), payload);
  std::memcpy(buf.data() + payload, &crc, kCrcBytes);
}

std::vector<Tensor> deserialize_tensors(const ByteBuffer& in) {
  const std::size_t end = verify_trailer(in);
  std::size_t offset = 0;
  const auto count = read_u64(in, offset, end);
  if (count > (1u << 20)) {
    throw SerializationError("implausible tensor count " +
                             std::to_string(count));
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    index_t n = 0;
    Shape shape = read_header(in, offset, end, n);
    std::vector<real> values(n);
    std::memcpy(values.data(), in.data() + offset, n * sizeof(real));
    offset += n * sizeof(real);
    tensors.emplace_back(std::move(shape), std::move(values));
  }
  if (offset != end) {
    throw SerializationError("trailing bytes after tensor list");
  }
  return tensors;
}

TensorScan scan_tensors(const ByteBuffer& in) {
  const std::size_t end = verify_trailer(in);
  std::size_t offset = 0;
  const auto count = read_u64(in, offset, end);
  if (count > (1u << 20)) {
    throw SerializationError("implausible tensor count " +
                             std::to_string(count));
  }
  TensorScan scan;
  scan.tensors = count;
  scan.shapes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    index_t n = 0;
    scan.shapes.push_back(read_header(in, offset, end, n));
    // Stream the values through a small stack buffer: the payload bytes are
    // not guaranteed to be double-aligned inside the message.
    constexpr index_t kChunk = 128;
    real buf[kChunk];
    index_t done = 0;
    while (done < n) {
      const index_t take = std::min(kChunk, n - done);
      std::memcpy(buf, in.data() + offset + done * sizeof(real),
                  take * sizeof(real));
      for (index_t k = 0; k < take; ++k) {
        if (!std::isfinite(buf[k])) scan.all_finite = false;
        scan.sum_squares += buf[k] * buf[k];
      }
      done += take;
    }
    offset += n * sizeof(real);
    scan.values += n;
  }
  if (offset != end) {
    throw SerializationError("trailing bytes after tensor list");
  }
  return scan;
}

}  // namespace oasis::tensor
