#include "tensor/serialize.h"

#include <cstring>

namespace oasis::tensor {
namespace {

void write_u64(std::uint64_t v, ByteBuffer& out) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint64_t read_u64(const ByteBuffer& in, std::size_t& offset) {
  if (offset + sizeof(std::uint64_t) > in.size()) {
    throw SerializationError("truncated buffer reading u64");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

}  // namespace

void write_tensor(const Tensor& t, ByteBuffer& out) {
  write_u64(t.rank(), out);
  for (const auto d : t.shape()) write_u64(d, out);
  const auto values = t.data();
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), p, p + values.size() * sizeof(real));
}

Tensor read_tensor(const ByteBuffer& in, std::size_t& offset) {
  const auto rank = read_u64(in, offset);
  if (rank > 8) {
    throw SerializationError("implausible tensor rank " +
                             std::to_string(rank));
  }
  Shape shape(rank);
  for (auto& d : shape) d = read_u64(in, offset);
  const index_t n = numel(shape);
  if (offset + n * sizeof(real) > in.size()) {
    throw SerializationError("truncated buffer reading tensor payload");
  }
  std::vector<real> values(n);
  std::memcpy(values.data(), in.data() + offset, n * sizeof(real));
  offset += n * sizeof(real);
  return Tensor(std::move(shape), std::move(values));
}

ByteBuffer serialize_tensors(const std::vector<Tensor>& tensors) {
  ByteBuffer out;
  write_u64(tensors.size(), out);
  for (const auto& t : tensors) write_tensor(t, out);
  return out;
}

std::vector<Tensor> deserialize_tensors(const ByteBuffer& in) {
  std::size_t offset = 0;
  const auto count = read_u64(in, offset);
  if (count > (1u << 20)) {
    throw SerializationError("implausible tensor count " +
                             std::to_string(count));
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    tensors.push_back(read_tensor(in, offset));
  }
  if (offset != in.size()) {
    throw SerializationError("trailing bytes after tensor list");
  }
  return tensors;
}

}  // namespace oasis::tensor
