#include "tensor/serialize.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace oasis::tensor {
namespace {

void write_u64(std::uint64_t v, ByteBuffer& out) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint64_t read_u64(const ByteBuffer& in, std::size_t& offset) {
  if (offset > in.size() || in.size() - offset < sizeof(std::uint64_t)) {
    throw SerializationError("truncated buffer reading u64");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

/// Reads a tensor header (rank + extents) and returns its shape together
/// with the validated element count. Every check happens BEFORE allocation
/// and is written so no intermediate product/sum can wrap: a hostile header
/// claiming 2^62 × 2^62 elements throws instead of overflowing to a small
/// count that would desynchronise the read cursor.
Shape read_header(const ByteBuffer& in, std::size_t& offset,
                  index_t& out_numel) {
  const auto rank = read_u64(in, offset);
  if (rank > 8) {
    throw SerializationError("implausible tensor rank " +
                             std::to_string(rank));
  }
  Shape shape(rank);
  index_t n = 1;
  for (auto& d : shape) {
    d = read_u64(in, offset);
    if (d != 0 && n > std::numeric_limits<index_t>::max() / d) {
      throw SerializationError("tensor extent product overflows");
    }
    n *= d;
  }
  // Overflow-safe payload bound: compare element count against the bytes
  // actually remaining rather than forming n * sizeof(real).
  if (offset > in.size() ||
      n > (in.size() - offset) / sizeof(real)) {
    throw SerializationError("truncated buffer reading tensor payload");
  }
  out_numel = n;
  return shape;
}

}  // namespace

void write_tensor(const Tensor& t, ByteBuffer& out) {
  write_u64(t.rank(), out);
  for (const auto d : t.shape()) write_u64(d, out);
  const auto values = t.data();
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), p, p + values.size() * sizeof(real));
}

Tensor read_tensor(const ByteBuffer& in, std::size_t& offset) {
  index_t n = 0;
  Shape shape = read_header(in, offset, n);
  std::vector<real> values(n);
  std::memcpy(values.data(), in.data() + offset, n * sizeof(real));
  offset += n * sizeof(real);
  return Tensor(std::move(shape), std::move(values));
}

ByteBuffer serialize_tensors(const std::vector<Tensor>& tensors) {
  ByteBuffer out;
  write_u64(tensors.size(), out);
  for (const auto& t : tensors) write_tensor(t, out);
  return out;
}

std::vector<Tensor> deserialize_tensors(const ByteBuffer& in) {
  std::size_t offset = 0;
  const auto count = read_u64(in, offset);
  if (count > (1u << 20)) {
    throw SerializationError("implausible tensor count " +
                             std::to_string(count));
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    tensors.push_back(read_tensor(in, offset));
  }
  if (offset != in.size()) {
    throw SerializationError("trailing bytes after tensor list");
  }
  return tensors;
}

TensorScan scan_tensors(const ByteBuffer& in) {
  std::size_t offset = 0;
  const auto count = read_u64(in, offset);
  if (count > (1u << 20)) {
    throw SerializationError("implausible tensor count " +
                             std::to_string(count));
  }
  TensorScan scan;
  scan.tensors = count;
  scan.shapes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    index_t n = 0;
    scan.shapes.push_back(read_header(in, offset, n));
    // Stream the values through a small stack buffer: the payload bytes are
    // not guaranteed to be double-aligned inside the message.
    constexpr index_t kChunk = 128;
    real buf[kChunk];
    index_t done = 0;
    while (done < n) {
      const index_t take = std::min(kChunk, n - done);
      std::memcpy(buf, in.data() + offset + done * sizeof(real),
                  take * sizeof(real));
      for (index_t k = 0; k < take; ++k) {
        if (!std::isfinite(buf[k])) scan.all_finite = false;
        scan.sum_squares += buf[k] * buf[k];
      }
      done += take;
    }
    offset += n * sizeof(real);
    scan.values += n;
  }
  if (offset != in.size()) {
    throw SerializationError("trailing bytes after tensor list");
  }
  return scan;
}

}  // namespace oasis::tensor
