// Binary (de)serialization of tensors.
//
// The FL layer ships model snapshots and gradient updates between server and
// clients as byte buffers; this module defines that wire format. Layout per
// tensor: u64 rank, u64 extents..., f64 values... (little-endian host order —
// the simulator runs in one process, so no byte swapping is performed, but
// the format is versioned for forward compatibility).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace oasis::tensor {

using ByteBuffer = std::vector<std::uint8_t>;

/// Appends a serialized tensor to `out`.
void write_tensor(const Tensor& t, ByteBuffer& out);

/// Reads one tensor starting at `offset`, advancing `offset` past it.
/// Throws SerializationError on truncated/malformed input.
Tensor read_tensor(const ByteBuffer& in, std::size_t& offset);

/// Serializes a list of tensors with a count header.
ByteBuffer serialize_tensors(const std::vector<Tensor>& tensors);

/// Inverse of serialize_tensors. Throws SerializationError on malformed input.
std::vector<Tensor> deserialize_tensors(const ByteBuffer& in);

}  // namespace oasis::tensor
