// Binary (de)serialization of tensors.
//
// The FL layer ships model snapshots and gradient updates between server and
// clients as byte buffers; this module defines that wire format. Layout per
// tensor: u64 rank, u64 extents..., f64 values... (little-endian host order —
// the simulator runs in one process, so no byte swapping is performed, but
// the format is versioned for forward compatibility).
//
// Deserialization is hardened against hostile payloads: every length/extent
// is bounds-checked (overflow-safely) against the bytes actually present
// BEFORE any allocation, so a truncated, bit-flipped, or oversized buffer
// throws SerializationError instead of reading past the end or attempting a
// multi-exabyte allocation. The FL server's update-validation pipeline relies
// on this boundary.
//
// serialize_tensors additionally appends a 4-byte CRC32C over the message; it
// is verified FIRST on read (ChecksumError on mismatch), so damage that
// happens to preserve structure — a bit flip inside a value — is still
// caught. write_tensor/read_tensor remain the raw, trailer-free primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace oasis::tensor {

using ByteBuffer = std::vector<std::uint8_t>;

/// Appends a serialized tensor to `out`.
void write_tensor(const Tensor& t, ByteBuffer& out);

/// Reads one tensor starting at `offset`, advancing `offset` past it.
/// Throws SerializationError on truncated/malformed input.
Tensor read_tensor(const ByteBuffer& in, std::size_t& offset);

/// Serializes a list of tensors with a count header and a trailing CRC32C.
ByteBuffer serialize_tensors(const std::vector<Tensor>& tensors);

/// Inverse of serialize_tensors. Throws ChecksumError when the CRC32C
/// trailer does not match the payload, SerializationError on malformed input.
std::vector<Tensor> deserialize_tensors(const ByteBuffer& in);

/// Recomputes and overwrites the CRC32C trailer of a serialize_tensors()
/// buffer in place. Test/fault-injection helper: lets a mutated payload keep
/// a valid checksum so the structural validation paths stay reachable.
void reseal_tensors(ByteBuffer& buf);

/// Summary of a serialized tensor list produced without materialising any
/// tensor (no allocation proportional to the payload). Used by the FL
/// server's cheap screening pass over client updates.
struct TensorScan {
  std::uint64_t tensors = 0;    // list length from the count header
  std::uint64_t values = 0;     // total scalar count across all tensors
  double sum_squares = 0.0;     // Σ v²  (may be inf when values overflow)
  bool all_finite = true;       // no NaN/Inf anywhere in the payload
  std::vector<Shape> shapes;    // per-tensor shapes, list order
};

/// Walks a serialize_tensors() buffer, validating the same structural
/// invariants as deserialize_tensors (throws SerializationError on malformed
/// input), and returns value statistics for plausibility screening.
TensorScan scan_tensors(const ByteBuffer& in);

}  // namespace oasis::tensor
