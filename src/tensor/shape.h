// Shape type and helpers for the dense tensor engine.
#pragma once

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace oasis::tensor {

/// Tensor shape: a list of dimension extents, outermost first (row-major).
using Shape = std::vector<index_t>;

/// Total number of elements in a shape (1 for a scalar / empty shape).
inline index_t numel(const Shape& shape) {
  index_t n = 1;
  for (const auto d : shape) n *= d;
  return n;
}

/// "[2, 3, 4]" — for error messages and logs.
inline std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (index_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

/// Throws ShapeError unless the two shapes are identical.
inline void check_same_shape(const Shape& a, const Shape& b,
                             const char* op) {
  if (a != b) {
    throw ShapeError(std::string(op) + ": shape mismatch " + to_string(a) +
                     " vs " + to_string(b));
  }
}

}  // namespace oasis::tensor
