#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace oasis::tensor {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(numel(shape_), 0.0) {}

Tensor::Tensor(Shape shape, std::vector<real> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  OASIS_CHECK_MSG(data_.size() == numel(shape_),
                  "Tensor: " << data_.size() << " values for shape "
                             << to_string(shape_));
}

Tensor Tensor::full(Shape shape, real value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, common::Rng& rng, real mean, real stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, common::Rng& rng, real lo, real hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

index_t Tensor::dim(index_t d) const {
  OASIS_CHECK_MSG(d < shape_.size(),
                  "dim " << d << " out of range for " << to_string(shape_));
  return shape_[d];
}

namespace {

index_t checked_flat_index(const Shape& shape,
                           std::initializer_list<index_t> idx) {
  OASIS_CHECK_MSG(idx.size() == shape.size(),
                  "at(): rank " << idx.size() << " index into "
                                << to_string(shape));
  index_t flat = 0;
  index_t d = 0;
  for (const auto i : idx) {
    OASIS_CHECK_MSG(i < shape[d], "at(): index " << i << " out of range in dim "
                                                 << d << " of "
                                                 << to_string(shape));
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}

}  // namespace

real& Tensor::at(std::initializer_list<index_t> idx) {
  return data_[checked_flat_index(shape_, idx)];
}

real Tensor::at(std::initializer_list<index_t> idx) const {
  return data_[checked_flat_index(shape_, idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  OASIS_CHECK_MSG(numel(new_shape) == data_.size(),
                  "reshape " << to_string(shape_) << " -> "
                             << to_string(new_shape));
  shape_ = std::move(new_shape);
}

Tensor Tensor::row(index_t i) const {
  OASIS_CHECK_MSG(rank() == 2, "row(): tensor is rank " << rank());
  OASIS_CHECK_MSG(i < shape_[0], "row " << i << " out of range");
  const index_t cols = shape_[1];
  std::vector<real> values(data_.begin() + static_cast<std::ptrdiff_t>(i * cols),
                           data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols));
  return Tensor({cols}, std::move(values));
}

Tensor Tensor::slice(index_t n) const {
  OASIS_CHECK_MSG(rank() >= 1, "slice(): rank-0 tensor");
  OASIS_CHECK_MSG(n < shape_[0], "slice " << n << " out of range");
  Shape inner(shape_.begin() + 1, shape_.end());
  const index_t stride = numel(inner);
  std::vector<real> values(
      data_.begin() + static_cast<std::ptrdiff_t>(n * stride),
      data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * stride));
  return Tensor(std::move(inner), std::move(values));
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(shape_, rhs.shape_, "operator+=");
  for (index_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(shape_, rhs.shape_, "operator-=");
  for (index_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(real s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::operator/=(real s) {
  OASIS_CHECK_MSG(s != 0.0, "division by zero");
  return *this *= (1.0 / s);
}

Tensor& Tensor::mul_(const Tensor& rhs) {
  check_same_shape(shape_, rhs.shape_, "mul_");
  for (index_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& rhs, real alpha) {
  check_same_shape(shape_, rhs.shape_, "add_scaled_");
  for (index_t i = 0; i < data_.size(); ++i) data_[i] += alpha * rhs.data_[i];
  return *this;
}

void Tensor::fill(real value) {
  std::fill(data_.begin(), data_.end(), value);
}

real Tensor::sum() const {
  real s = 0.0;
  for (const auto v : data_) s += v;
  return s;
}

real Tensor::mean() const {
  OASIS_CHECK(!data_.empty());
  return sum() / static_cast<real>(data_.size());
}

real Tensor::min() const {
  OASIS_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

real Tensor::max() const {
  OASIS_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

index_t Tensor::argmax() const {
  OASIS_CHECK(!data_.empty());
  return static_cast<index_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

real Tensor::norm() const {
  real s = 0.0;
  for (const auto v : data_) s += v * v;
  return std::sqrt(s);
}

Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
Tensor operator*(Tensor lhs, real s) { return lhs *= s; }
Tensor operator*(real s, Tensor rhs) { return rhs *= s; }

}  // namespace oasis::tensor
