// Dense row-major tensor of `real` (double) values.
//
// This is the numeric workhorse beneath the NN library, the augmentation
// engine, and the attacks. It deliberately has value semantics (copyable,
// movable) and owns its storage in a contiguous std::vector — no views or
// reference counting, which keeps aliasing reasoning trivial throughout the
// gradient-inversion code where exactness matters.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "tensor/shape.h"

namespace oasis::tensor {

class Tensor {
 public:
  /// Empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape initialized from `values` (size must match).
  Tensor(Shape shape, std::vector<real> values);

  // ---- Factories -----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0); }
  static Tensor full(Shape shape, real value);
  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, common::Rng& rng, real mean = 0.0,
                      real stddev = 1.0);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand(Shape shape, common::Rng& rng, real lo = 0.0,
                     real hi = 1.0);

  // ---- Introspection -------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] index_t rank() const { return shape_.size(); }
  [[nodiscard]] index_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  /// Extent of dimension `d` (bounds-checked).
  [[nodiscard]] index_t dim(index_t d) const;

  [[nodiscard]] std::span<real> data() { return data_; }
  [[nodiscard]] std::span<const real> data() const { return data_; }

  // ---- Element access ------------------------------------------------------

  /// Flat (row-major) access, bounds-checked in debug via at().
  real& operator[](index_t i) { return data_[i]; }
  real operator[](index_t i) const { return data_[i]; }

  /// Multi-index access (rank must match argument count). Bounds-checked.
  real& at(std::initializer_list<index_t> idx);
  [[nodiscard]] real at(std::initializer_list<index_t> idx) const;

  /// Unchecked 2-D accessors for hot loops (rank-2 tensors only by contract).
  real& at2(index_t i, index_t j) { return data_[i * shape_[1] + j]; }
  [[nodiscard]] real at2(index_t i, index_t j) const {
    return data_[i * shape_[1] + j];
  }

  /// Unchecked 3-D accessor ([C, H, W] image layouts).
  real& at3(index_t c, index_t h, index_t w) {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  [[nodiscard]] real at3(index_t c, index_t h, index_t w) const {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  /// Unchecked 4-D accessor ([N, C, H, W] layouts in the CNN).
  real& at4(index_t n, index_t c, index_t h, index_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  [[nodiscard]] real at4(index_t n, index_t c, index_t h, index_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  // ---- Shape manipulation --------------------------------------------------

  /// Returns a copy with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (element count must be preserved).
  void reshape(Shape new_shape);

  /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
  [[nodiscard]] Tensor row(index_t i) const;

  /// Extracts the `n`-th outermost slice (e.g. one image from [N,C,H,W]).
  [[nodiscard]] Tensor slice(index_t n) const;

  // ---- In-place arithmetic -------------------------------------------------

  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(real s);
  Tensor& operator/=(real s);
  /// Hadamard (element-wise) product.
  Tensor& mul_(const Tensor& rhs);
  /// this += alpha * rhs  (axpy).
  Tensor& add_scaled_(const Tensor& rhs, real alpha);
  /// Sets every element to `value`.
  void fill(real value);

  // ---- Reductions ----------------------------------------------------------

  [[nodiscard]] real sum() const;
  [[nodiscard]] real mean() const;
  [[nodiscard]] real min() const;
  [[nodiscard]] real max() const;
  /// Index of the maximum element (first on ties). Requires non-empty.
  [[nodiscard]] index_t argmax() const;
  /// Euclidean norm.
  [[nodiscard]] real norm() const;

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<real> data_;
};

// ---- Out-of-place arithmetic -----------------------------------------------

Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, real s);
Tensor operator*(real s, Tensor rhs);

}  // namespace oasis::tensor
